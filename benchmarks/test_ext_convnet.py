"""Extension bench: ENLD on a genuine convolutional backbone.

The paper's models are CNNs; the bench presets use MLP analogs for CPU
speed (DESIGN.md substitution table).  This extension runs ENLD with
the real ``Conv2d``-based :class:`SmallConvNet` on the image-shaped
EMNIST analog, confirming that the detection pipeline is agnostic to
the backbone family — logits and features are all it needs.
"""

import numpy as np
from _common import emit, run_once

from repro.datalake import ArrivalStream
from repro.datasets import (emnist_like, generate, paper_shard_plan,
                            split_inventory_incremental)
from repro.core.enld import ENLD
from repro.eval import run_detector
from repro.eval.reporting import format_table
from repro.experiments import bench_preset
from repro.noise import corrupt_labels, pair_asymmetric

ETA = 0.2
SHARDS = 2


def _sweep():
    spec = emnist_like("bench")
    data = generate(spec, seed=7)
    rng = np.random.default_rng(8)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(spec.num_classes, ETA)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool, paper_shard_plan("emnist_like"),
                             transition=transition, seed=9
                             ).arrivals()[:SHARDS]

    preset = bench_preset("emnist_like")
    out = {}
    for model_name, kwargs, lr, mixup in (
            # The conv stack has no normalisation layers, so it needs a
            # gentler rate and plain (non-Mixup) training to stay stable.
            ("smallconv", {"in_shape": spec.image_shape, "channels": 8},
             0.02, None),
            ("tinyresnet", {}, 0.05, 0.2)):
        config = preset.enld_config(model_name=model_name,
                                    model_kwargs=kwargs,
                                    init_epochs=10, init_lr=lr,
                                    mixup_alpha=mixup)
        enld = ENLD(config).initialize(inventory,
                                       num_classes=spec.num_classes)
        report = run_detector(enld, arrivals, model_name,
                              setup_seconds=enld.setup_seconds)
        out[model_name] = {
            "f1": report.mean_f1,
            "setup_seconds": report.cost.setup_seconds,
            "mean_process_seconds": report.cost.mean_process_seconds,
        }
    return out


def test_ext_convnet(benchmark):
    result = run_once(benchmark, _sweep)

    rows = [[name, stats["f1"], stats["setup_seconds"],
             stats["mean_process_seconds"]]
            for name, stats in result.items()]
    emit("ext_convnet",
         format_table(["backbone", "f1", "setup_s", "process_s"], rows,
                      title=f"Extension: convolutional backbone (eta={ETA})"),
         payload=result)

    # The conv pipeline must work end-to-end and stay in the same
    # quality band as the MLP analog.
    assert result["smallconv"]["f1"] > 0.5
    assert abs(result["smallconv"]["f1"] - result["tinyresnet"]["f1"]) < 0.35
