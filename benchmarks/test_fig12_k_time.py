"""Fig. 12 — process time and F1 vs contrastive-sample size k.

Paper shape: process time generally grows with k (bigger contrastive
sets per fine-tuning epoch), but not strictly — the paper observes
k=3 sometimes *cheaper* than k=2 because richer contrastive sets
converge (shrink the ambiguous set) faster.
"""

from _common import emit, run_once

from repro.eval.reporting import series_table
from repro.experiments import bench_preset, fig11_12_k_sweep

KS = (1, 2, 3, 4)


def test_fig12_k_time(benchmark):
    # Reuses the k-sweep driver; this bench reports the cost view.
    preset = bench_preset("cifar100_like").with_overrides(
        noise_rates=(0.2, 0.4))
    result = run_once(benchmark, lambda: fig11_12_k_sweep(preset, ks=KS))

    mean = result["mean"]
    emit("fig12_k_time",
         series_table("k", list(KS), {
             "mean_f1": [mean[f"k={k}"]["f1"] for k in KS],
             "process_s": [mean[f"k={k}"]["mean_process_seconds"]
                           for k in KS],
         }, title="Fig.12: process time and F1 vs k"),
         payload=result)

    # Coarse shape: the largest k costs at least as much as the smallest.
    assert mean["k=4"]["mean_process_seconds"] \
        >= 0.8 * mean["k=1"]["mean_process_seconds"]
