"""Fig. 3 — contribution of sample-addition strategies (§IV-D).

Paper shape: after one epoch of fine-tuning with true-labelled added
samples, Nearest-Related < Nearest-Only < Origin in evaluation loss,
with Random giving little to no improvement over Origin.
"""

from _common import emit, run_once

from repro.eval.reporting import series_table
from repro.experiments import bench_preset, fig3_contribution


def test_fig03_contribution(benchmark):
    preset = bench_preset("cifar100_like")
    result = run_once(benchmark, lambda: fig3_contribution(preset))

    etas = list(result)
    columns = {strategy: [result[e][strategy] for e in etas]
               for strategy in ("origin", "random", "nearest_only",
                                "nearest_related")}
    emit("fig03_contribution",
         series_table("noise_rate", etas, columns,
                      title="Fig.3: eval loss on D_test after one epoch"),
         payload=result)

    def mean_of(strategy):
        return sum(result[e][strategy] for e in etas) / len(etas)

    # The paper's Fig. 3 shape, asserted on the across-noise means
    # (individual rates are noisy at bench scale): nearest-related
    # additions yield the lowest loss, below both random additions and
    # doing nothing.
    assert mean_of("nearest_related") < mean_of("random")
    assert mean_of("nearest_related") < mean_of("origin")
    assert mean_of("nearest_related") <= mean_of("nearest_only") + 0.02
    # Per-rate sanity: nearest-related never blows the loss up.
    for eta in etas:
        assert result[eta]["nearest_related"] \
            <= result[eta]["origin"] * 1.1, eta
