"""Extension bench: ENLD robustness across noise models.

The paper evaluates pair-asymmetric noise only ("more realistic than
symmetric noise", §V-A2).  This extension sweeps ENLD and the Default
baseline over symmetric and block-asymmetric noise at η = 0.2 to check
that ENLD's advantage is not an artefact of the pair structure.
"""

import numpy as np
from _common import emit, run_once

from repro.datalake import ArrivalStream
from repro.datasets import (generate, get_preset, paper_shard_plan,
                            split_inventory_incremental)
from repro.baselines import DefaultDetector
from repro.core.enld import ENLD
from repro.eval import run_detector
from repro.eval.reporting import format_table
from repro.experiments import bench_preset
from repro.noise import block_asymmetric, corrupt_labels, pair_asymmetric, symmetric

ETA = 0.2


def _world(transition_fn, preset):
    spec = get_preset(preset.dataset_preset, scale=preset.scale)
    data = generate(spec, seed=preset.seed)
    rng = np.random.default_rng(preset.seed + 1)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = transition_fn(spec.num_classes)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool, paper_shard_plan(preset.dataset_preset),
                             transition=transition,
                             num_classes=spec.num_classes,
                             seed=preset.seed + 2).arrivals()
    return inventory, arrivals[:preset.shard_limit], spec.num_classes


def _sweep():
    preset = bench_preset("cifar100_like")
    models = {
        "pair": lambda n: pair_asymmetric(n, ETA),
        "symmetric": lambda n: symmetric(n, ETA),
        "block": lambda n: block_asymmetric(
            n, ETA, block_size=5, rng=np.random.default_rng(0)),
    }
    out = {}
    for name, fn in models.items():
        inventory, arrivals, num_classes = _world(fn, preset)
        enld = ENLD(preset.enld_config()).initialize(
            inventory, num_classes=num_classes)
        enld_rep = run_detector(enld, arrivals, "enld")
        default_rep = run_detector(DefaultDetector(enld.model), arrivals,
                                   "default")
        out[name] = {"enld_f1": enld_rep.mean_f1,
                     "default_f1": default_rep.mean_f1}
    return out


def test_ext_noise_models(benchmark):
    result = run_once(benchmark, _sweep)

    rows = [[name, stats["enld_f1"], stats["default_f1"]]
            for name, stats in result.items()]
    emit("ext_noise_models",
         format_table(["noise_model", "enld_f1", "default_f1"], rows,
                      title=f"Extension: noise-model robustness (eta={ETA})"),
         payload=result)

    for name, stats in result.items():
        assert stats["enld_f1"] > stats["default_f1"], name
        assert stats["enld_f1"] > 0.5, name
