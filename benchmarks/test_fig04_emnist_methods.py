"""Fig. 4 — method comparison on the EMNIST analog (26 classes).

Paper shape: training-based methods (ENLD, Topofilter) beat
confidence-only methods (Default, CL-1, CL-2); ENLD leads on mean F1.
Paper numbers: ENLD 0.9191 vs Topofilter 0.9021 mean F1.
"""

from _common import (assert_paper_ordering, emit, method_comparison_text,
                     run_once)

from repro.experiments import bench_preset, method_comparison


def test_fig04_emnist_methods(benchmark):
    preset = bench_preset("emnist_like")
    result = run_once(benchmark, lambda: method_comparison(preset))
    emit("fig04_emnist_methods", method_comparison_text(result),
         payload=result)
    assert_paper_ordering(result)
