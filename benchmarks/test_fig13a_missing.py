"""Fig. 13a — missing labels as a special case of noisy labels (§V-H).

Paper shape: both the pseudo-label F1 and the noisy-label-detection F1
degrade monotonically as the missing fraction rises from 25% to 75%
(at η = 0.2 on the CIFAR100 analog).
"""

from _common import emit, run_once

from repro.eval.reporting import series_table
from repro.experiments import bench_preset, fig13a_missing_labels

FRACTIONS = (0.25, 0.5, 0.75)


def test_fig13a_missing(benchmark):
    preset = bench_preset("cifar100_like")
    result = run_once(
        benchmark,
        lambda: fig13a_missing_labels(preset, missing_fractions=FRACTIONS))

    pseudo = [result[f"missing={f}"]["pseudo_f1"] for f in FRACTIONS]
    detect = [result[f"missing={f}"]["detection_f1"] for f in FRACTIONS]
    emit("fig13a_missing",
         series_table("missing_fraction", list(FRACTIONS),
                      {"pseudo_f1": pseudo, "detection_f1": detect},
                      title="Fig.13a: missing labels (eta=0.2)"),
         payload=result)

    # More missing labels → weaker pseudo labels (monotone, small slack).
    assert pseudo[0] >= pseudo[-1] - 0.02
    assert all(p > 0.1 for p in pseudo)
