"""Fig. 7 — method comparison on the Tiny-ImageNet analog (200 classes).

Paper shape: on the hardest task the gap widens — ENLD 0.7297 mean F1
vs Topofilter 0.6171, with confidence-only methods far behind.
"""

from _common import (assert_paper_ordering, emit, method_comparison_text,
                     run_once)

from repro.experiments import bench_preset, method_comparison


def test_fig07_tiny_methods(benchmark):
    preset = bench_preset("tiny_imagenet_like")
    result = run_once(benchmark, lambda: method_comparison(preset))
    emit("fig07_tiny_methods", method_comparison_text(result),
         payload=result)
    assert_paper_ordering(result)
