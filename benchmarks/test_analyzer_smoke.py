"""Analyzer perf smoke: cold vs warm incremental-cache full-tree runs.

The whole-program analysis layer (REP6xx imports/layering/RNG plus the
REP7xx concurrency family) re-runs on every ``repro lint`` invocation;
what the incremental cache promises is that a warm run skips the
expensive part — ``ast.parse`` plus the per-file rule pass — for every
unchanged file.  This smoke proves the contract on the live ``src``
tree:

- the cold run misses on every file, the warm run hits on every file;
- warm and cold runs report byte-identical findings;
- the warm run is no slower than the cold one (generous margin — the
  gate is the hit/miss ledger, wall-clock only sanity-checks that the
  cache is not pure overhead);
- one absolute bound so a pathological slowdown fails loudly even if
  both runs degrade together.

Gated like the trace-smoke job: deterministic counters first,
wall-clock second.
"""

import os
import time

from _common import emit

from repro.analysis import GRAPH_RULES, analyze_paths

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")

#: A full cold analysis of the live tree (~85 small modules) takes
#: well under a second on any modern machine; 30s means something is
#: catastrophically wrong (accidental quadratic pass, runaway IO).
COLD_BUDGET_SECONDS = 30.0


def _timed(cache_dir):
    start = time.perf_counter()
    result = analyze_paths([SRC], cache_dir=cache_dir)
    return result, time.perf_counter() - start


def _snapshot(result):
    return [(f.rule, f.key, f.line, f.col, f.fingerprint)
            for f in result.findings]


def test_analyzer_cold_vs_warm(tmp_path):
    cache_dir = str(tmp_path / "analysis-cache")
    cold, cold_seconds = _timed(cache_dir)
    warm, warm_seconds = _timed(cache_dir)

    # The smoke runs under the full whole-program catalog: all three
    # graph families must be registered, so the warm-replay identity
    # below covers the REP7xx concurrency rules and the REP8xx
    # determinism rules, not just REP6xx.
    assert {"REP601", "REP701", "REP702", "REP703", "REP704",
            "REP705", "REP801", "REP802", "REP803", "REP804",
            "REP805"} <= set(GRAPH_RULES)

    assert cold.files_scanned > 0
    assert cold.cache_hits == 0
    assert cold.cache_misses == cold.files_scanned
    assert warm.files_scanned == cold.files_scanned
    assert warm.cache_hits == warm.files_scanned
    assert warm.cache_misses == 0
    assert _snapshot(warm) == _snapshot(cold)

    assert cold_seconds < COLD_BUDGET_SECONDS, (
        f"cold full-tree analysis took {cold_seconds:.2f}s")
    # The warm run re-reads bytes and re-runs the graph rules, so it
    # is not free — but it must never cost materially more than cold.
    assert warm_seconds <= cold_seconds * 1.5 + 0.25, (
        f"warm={warm_seconds:.3f}s vs cold={cold_seconds:.3f}s: "
        f"the incremental cache is pure overhead")

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    emit("analyzer_smoke",
         f"files={cold.files_scanned} cold={cold_seconds:.3f}s "
         f"warm={warm_seconds:.3f}s speedup={speedup:.1f}x "
         f"(hits={warm.cache_hits}, misses={warm.cache_misses})",
         payload={"files": cold.files_scanned,
                  "cold_seconds": cold_seconds,
                  "warm_seconds": warm_seconds,
                  "warm_hits": warm.cache_hits,
                  "warm_misses": warm.cache_misses})


def test_warm_cache_replays_graph_findings(tmp_path):
    """Graph rules fire from *cached* summaries, not just fresh parses.

    The live tree is REP7xx-clean, so the full-tree identity check
    above cannot distinguish "the warm run re-evaluated the
    concurrency rules" from "the warm run dropped them".  This fixture
    plants a guarded-by violation and requires the REP702 finding to
    survive a 100%-hit warm replay byte-identically.
    """
    root = tmp_path / "proj"
    (root / "repro").mkdir(parents=True)
    (root / "repro" / "__init__.py").write_text("")
    (root / "repro" / "box.py").write_text(
        "import threading\n\n\n"
        "class Box:\n"
        "    def __init__(self):\n"
        "        self.items = []  # repro: guarded-by(_lock)\n"
        "        self._lock = threading.Lock()\n\n"
        "    def bad(self):\n"
        "        self.items.append(1)\n")
    cache_dir = str(tmp_path / "analysis-cache")
    cold = analyze_paths([str(root)], cache_dir=cache_dir)
    warm = analyze_paths([str(root)], cache_dir=cache_dir)
    assert cold.cache_misses == cold.files_scanned > 0
    assert warm.cache_hits == warm.files_scanned
    assert warm.cache_misses == 0
    assert _snapshot(warm) == _snapshot(cold)
    assert any(f.rule == "REP702" for f in warm.findings)


def test_warm_cache_replays_determinism_findings(tmp_path):
    """The REP8xx facts replay from cached summaries too.

    Same shape as the REP702 fixture above: the live tree is
    REP8xx-clean, so only a planted violation can prove the warm run
    re-evaluated the determinism rules from the cache's summary
    payload (schema v3) rather than silently dropping the facts.
    """
    root = tmp_path / "proj"
    (root / "repro").mkdir(parents=True)
    (root / "repro" / "__init__.py").write_text("")
    (root / "repro" / "stream.py").write_text(
        "import numpy as np\n\n\n"
        "def arrival(seed, key):\n"
        "    return np.random.default_rng([seed, 1234, key])\n")
    cache_dir = str(tmp_path / "analysis-cache")
    cold = analyze_paths([str(root)], cache_dir=cache_dir)
    warm = analyze_paths([str(root)], cache_dir=cache_dir)
    assert cold.cache_misses == cold.files_scanned > 0
    assert warm.cache_hits == warm.files_scanned
    assert warm.cache_misses == 0
    assert _snapshot(warm) == _snapshot(cold)
    assert any(f.rule == "REP801" for f in warm.findings)
