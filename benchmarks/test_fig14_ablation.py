"""Fig. 14 — ablation study: remove one ENLD component at a time.

Paper shape: removing contrastive sampling (ENLD-1) is the most
damaging (0.8139 → 0.6721 mean F1); removing majority voting (ENLD-2)
helps slightly at low noise but hurts badly at high noise; dropping
``C = C ∪ S`` (ENLD-3) destabilises training; querying by observed
label (ENLD-4) wins only at the lowest noise rate.
"""

from _common import emit, run_once

from repro.eval.reporting import format_table
from repro.experiments import ABLATIONS, bench_preset, fig14_ablation


def test_fig14_ablation(benchmark):
    # Extra shards: ablation gaps are a few F1 points at bench scale.
    preset = bench_preset("cifar100_like").with_overrides(shard_limit=10)
    result = run_once(benchmark,
                      lambda: fig14_ablation(preset, variants=ABLATIONS))

    rows = []
    for eta_key, block in result["per_noise_rate"].items():
        for variant in ABLATIONS:
            rows.append([eta_key, variant, block[variant]["precision"],
                         block[variant]["recall"], block[variant]["f1"]])
    means = "\n".join(
        f"  {v}: {result['mean_f1'][v]:.4f}"
        for v in sorted(ABLATIONS, key=lambda v: -result["mean_f1"][v]))
    emit("fig14_ablation",
         format_table(["noise", "variant", "precision", "recall", "f1"],
                      rows, title="Fig.14: ablation study")
         + "\n\nMean F1:\n" + means,
         payload=result)

    f1 = result["mean_f1"]
    # Contrastive sampling is the essential ingredient; its advantage
    # concentrates at the higher noise rates (the paper's Fig. 14 bars
    # diverge most at η=0.3/0.4), so assert on that regime plus an
    # overall no-worse check.
    high = [k for k in result["per_noise_rate"]
            if float(k.split("=")[1]) >= 0.3]
    def high_mean(variant):
        return sum(result["per_noise_rate"][k][variant]["f1"]
                   for k in high) / len(high)
    assert high_mean("origin") > high_mean("enld-1")
    assert f1["origin"] >= f1["enld-1"] - 0.01
    for variant in ("enld-1", "enld-3"):
        assert f1["origin"] > f1[variant] - 0.02, variant
