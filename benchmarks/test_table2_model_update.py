"""Table II — generalisation before/after the Alg. 4 model update.

Paper shape: retraining on the stringently-voted clean inventory set
improves validation accuracy at every noise rate (58.93→61.31 at
η=0.1 … 37.17→37.23 at η=0.4, gains shrinking as noise grows).
"""

from _common import emit, run_once

from repro.eval.reporting import format_table
from repro.experiments import bench_preset, table2_model_update


def test_table2_model_update(benchmark):
    # All 20 shards: S_c must cover (nearly) all classes for the update
    # to refine rather than forget — matching the paper's protocol of
    # updating after the full stream.
    preset = bench_preset("cifar100_like").with_overrides(shard_limit=None)
    result = run_once(benchmark, lambda: table2_model_update(preset))

    rows = [[eta_key, block["origin_accuracy"], block["update_accuracy"],
             block["clean_inventory_selected"]]
            for eta_key, block in result.items()]
    emit("table2_model_update",
         format_table(["noise", "origin_acc", "update_acc", "|S_c|"],
                      rows, title="Table II: model update"),
         payload=result)

    improvements = [block["update_accuracy"] - block["origin_accuracy"]
                    for block in result.values()]
    # The update must help on average and never collapse the model.
    assert sum(improvements) / len(improvements) > -0.02
    for eta_key, block in result.items():
        assert block["update_accuracy"] > block["origin_accuracy"] - 0.1, \
            eta_key
        assert block["clean_inventory_selected"] > 0, eta_key
