"""Fig. 13b — the ambiguous set shrinks across detection iterations.

Paper shape: |A| decreases monotonically during fine-grained detection,
which is what makes re-sampling progressively cheaper (§IV-E).
"""

from _common import emit, run_once

from repro.eval.reporting import series_table
from repro.experiments import bench_preset, fig13b_ambiguous_counts


def test_fig13b_ambiguous(benchmark):
    preset = bench_preset("cifar100_like")
    result = run_once(benchmark, lambda: fig13b_ambiguous_counts(preset))

    series = result["num_ambiguous"]
    emit("fig13b_ambiguous",
         series_table("iteration", list(range(len(series))),
                      {"num_ambiguous": series},
                      title="Fig.13b: |A| per iteration (eta=0.2)"),
         payload=result)

    assert series[-1] <= series[0]
