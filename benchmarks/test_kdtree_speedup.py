"""Ablation bench (DESIGN.md §5): per-class KD-trees vs brute force.

The paper's §IV-D implementation note: KD-trees cut the repeated
k-nearest queries of contrastive sampling from O(c|A||H'|) to
O(k|A| log |H'|).  This bench measures the end-to-end contrastive-
sampling wall-clock under both index backends on a large candidate set
and checks that the two backends select equivalent neighbours.
"""

import time

import numpy as np
from _common import emit

from repro.core.contrastive import contrastive_sampling
from repro.eval.reporting import series_table
from repro.index.classindex import ClassFeatureIndex

N_CLASSES = 20
PER_CLASS = 800
DIM = 32
N_AMBIGUOUS = 150


def _setup():
    rng = np.random.default_rng(0)
    features = np.concatenate([
        rng.normal(c, 1.0, size=(PER_CLASS, DIM))
        for c in range(N_CLASSES)])
    labels = np.repeat(np.arange(N_CLASSES), PER_CLASS)
    ambiguous_features = rng.normal(N_CLASSES / 2, 3.0,
                                    size=(N_AMBIGUOUS, DIM))
    ambiguous_labels = rng.integers(0, N_CLASSES, size=N_AMBIGUOUS)
    cond = np.eye(N_CLASSES)
    return features, labels, ambiguous_features, ambiguous_labels, cond


def _run(use_kdtree: bool):
    features, labels, af, al, cond = _setup()
    index = ClassFeatureIndex(features, labels, use_kdtree=use_kdtree)
    return contrastive_sampling(af, al, index, cond, k=3,
                                rng=np.random.default_rng(1))


def test_kdtree_contrastive_sampling(benchmark):
    result = benchmark.pedantic(lambda: _run(use_kdtree=True),
                                rounds=3, iterations=1)
    assert len(result) == 3 * N_AMBIGUOUS


def test_bruteforce_contrastive_sampling(benchmark):
    result = benchmark.pedantic(lambda: _run(use_kdtree=False),
                                rounds=3, iterations=1)
    assert len(result) == 3 * N_AMBIGUOUS

    # Agreement + reported ablation (identity P̃ makes draws deterministic,
    # so both backends must pick neighbours at identical distances).
    kd = _run(use_kdtree=True)
    assert len(kd) == len(result)
    features, _, af, _, _ = _setup()
    # Same total selected-neighbour distance (ties aside).
    kd_d = np.linalg.norm(
        features[kd.indices].reshape(N_AMBIGUOUS, 3, DIM)
        - af[:, None, :], axis=2).sum()
    bf_d = np.linalg.norm(
        features[result.indices].reshape(N_AMBIGUOUS, 3, DIM)
        - af[:, None, :], axis=2).sum()
    assert np.isclose(kd_d, bf_d, rtol=1e-9)

    t0 = time.perf_counter()
    _run(use_kdtree=True)
    kd_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _run(use_kdtree=False)
    bf_s = time.perf_counter() - t0
    emit("kdtree_speedup",
         series_table("backend", ["kdtree", "bruteforce"],
                      {"seconds": [kd_s, bf_s]},
                      title="Contrastive-sampling index ablation "
                            f"({N_CLASSES * PER_CLASS} candidates)"),
         payload={"kdtree_s": kd_s, "bruteforce_s": bf_s})
