"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at bench
scale, prints the paper-style table, and writes it under
``benchmarks/results/`` so EXPERIMENTS.md can reference the exact
numbers produced on this machine.
"""

from __future__ import annotations

import json
import os
from typing import Callable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str, payload: dict | None = None) -> None:
    """Print a result block and persist it (text + optional JSON)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    if payload is not None:
        with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
            json.dump(payload, fh, indent=2, default=float)


def run_once(benchmark, fn: Callable):
    """Run an experiment driver exactly once under pytest-benchmark.

    The drivers already loop over noise rates and shards internally, so
    a single round both measures the wall-clock and yields the result.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def method_comparison_text(result: dict) -> str:
    """Paper-style text block for a method_comparison driver result."""
    from repro.eval.reporting import format_table

    rows = []
    for eta_key, methods in result["per_noise_rate"].items():
        for method, stats in methods.items():
            rows.append([eta_key, method, stats["precision"],
                         stats["recall"], stats["f1"],
                         stats["mean_process_seconds"],
                         stats["setup_seconds"]])
    table = format_table(
        ["noise", "method", "precision", "recall", "f1",
         "process_s", "setup_s"], rows,
        title=f"Method comparison on {result['dataset']}")
    means = "\n".join(f"  mean f1 {m}: {v:.4f}"
                      for m, v in sorted(result["mean_f1"].items(),
                                         key=lambda kv: -kv[1]))
    return f"{table}\n\nMean F1 across noise rates:\n{means}"


def assert_paper_ordering(result: dict, training_gap: float = 0.0) -> None:
    """The Figs. 4/5/7 claim: training-based methods (ENLD, Topofilter)
    beat confidence-only ones, and ENLD leads overall."""
    f1 = result["mean_f1"]
    confidence_only = max(f1["default"], f1["cl_prune_by_class"],
                          f1["cl_prune_by_noise_rate"])
    assert f1["enld"] > confidence_only + training_gap, f1
    assert f1["enld"] > f1["topofilter"], f1
