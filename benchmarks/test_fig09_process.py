"""Fig. 9 — ENLD's detection trajectory over fine-tuning iterations.

Paper shape: recall starts high (almost everything is initially flagged
noisy) and drifts down slowly; precision and F1 rise as contrastive
re-sampling adapts the model; higher noise rates flatten earlier.
"""

from _common import emit, run_once

from repro.eval.reporting import series_table
from repro.experiments import bench_preset, fig9_training_process


def test_fig09_process(benchmark):
    preset = bench_preset("cifar100_like")
    result = run_once(benchmark, lambda: fig9_training_process(preset))

    blocks = []
    for eta_key, series in result.items():
        iters = list(range(len(series["f1"])))
        blocks.append(series_table(
            "iteration", iters,
            {k: series[k] for k in ("precision", "recall", "f1")},
            title=f"Fig.9 trajectory ({eta_key})"))
    emit("fig09_process", "\n\n".join(blocks), payload=result)

    for eta_key, series in result.items():
        f1 = series["f1"]
        # F1 improves from the first snapshot to the best later one.
        assert max(f1[1:]) >= f1[0] - 1e-9, eta_key
        # Recall never collapses to zero mid-run.
        assert min(series["recall"]) > 0.2, eta_key
