"""Fig. 8 — setup and process time per method per dataset.

Paper shape: Default/CL pay the shared setup but near-zero process
time; Topofilter pays no setup but the largest per-request time; ENLD
sits in between, several times faster than Topofilter per request
(paper: 4.09x EMNIST, 3.65x CIFAR100, 4.97x Tiny-ImageNet).

At bench scale the wall-clock gap compresses (the inventory is ~100x
smaller than the paper's, shrinking Topofilter's per-request training
set), so the machine-independent work model (training sample-epochs) is
asserted and both views are reported.
"""

from _common import emit, run_once

from repro.eval.reporting import format_table
from repro.experiments import bench_preset, fig8_time_cost

DATASETS = ("emnist_like", "cifar100_like", "tiny_imagenet_like")


def test_fig08_timecost(benchmark):
    presets = [bench_preset(d) for d in DATASETS]
    result = run_once(benchmark, lambda: fig8_time_cost(presets,
                                                        noise_rate=0.2))

    rows = []
    for dataset, methods in result.items():
        for method, stats in methods.items():
            rows.append([dataset, method, stats["setup_seconds"],
                         stats["mean_process_seconds"],
                         stats["mean_process_train_samples"]])
    text = format_table(
        ["dataset", "method", "setup_s", "process_s", "train_samples"],
        rows, title="Fig.8: time cost per incremental dataset (eta=0.2)")
    speedups = []
    for dataset, methods in result.items():
        wall = methods["enld"]["speedup_over_topofilter"]
        work = methods["enld"]["work_speedup_over_topofilter"]
        speedups.append(
            f"  {dataset}: ENLD vs Topofilter — {wall:.2f}x wall-clock, "
            f"{work:.2f}x work-model")
    emit("fig08_timecost", text + "\n\nSpeedups:\n" + "\n".join(speedups),
         payload=result)

    for dataset, methods in result.items():
        # Per-request training work: ENLD must undercut Topofilter.
        assert methods["enld"]["work_speedup_over_topofilter"] > 1.0, dataset
        # Confidence-only methods are essentially free per request.
        assert (methods["default"]["mean_process_seconds"]
                < methods["enld"]["mean_process_seconds"]), dataset
