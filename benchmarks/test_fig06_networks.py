"""Fig. 6 — ENLD vs Topofilter under different architectures.

Paper shape: ENLD keeps its F1 lead over Topofilter when the backbone
changes (DenseNet-121, ResNet-164 analogs), and remains cheaper per
request (2.46x / 2.64x process-time savings in the paper).
"""

from _common import emit, run_once

from repro.eval.reporting import format_table
from repro.experiments import bench_preset, fig6_networks


def test_fig06_networks(benchmark):
    preset = bench_preset("cifar100_like")
    result = run_once(
        benchmark,
        lambda: fig6_networks(preset,
                              model_names=("densenet121", "resnet164")))

    rows = []
    for model_name, stats in result.items():
        rows.append([model_name, "enld", stats["enld"]["f1"],
                     stats["enld"]["mean_process_seconds"]])
        rows.append([model_name, "topofilter", stats["topofilter"]["f1"],
                     stats["topofilter"]["mean_process_seconds"]])
    emit("fig06_networks",
         format_table(["model", "method", "f1", "process_s"], rows,
                      title="Fig.6: architecture generalisation (eta=0.2)"),
         payload=result)

    for model_name, stats in result.items():
        assert stats["enld"]["f1"] > stats["topofilter"]["f1"], model_name
