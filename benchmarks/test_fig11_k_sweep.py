"""Fig. 11 — detection quality vs contrastive-sample size k.

Paper shape: F1 rises with k (more contrastive samples per ambiguous
sample), with diminishing returns after k=3; larger k helps most at the
highest noise rate.
"""

from _common import emit, run_once

from repro.eval.reporting import format_table
from repro.experiments import bench_preset, fig11_12_k_sweep

KS = (1, 2, 3, 4)


def test_fig11_k_sweep(benchmark):
    preset = bench_preset("cifar100_like")
    result = run_once(benchmark, lambda: fig11_12_k_sweep(preset, ks=KS))

    rows = []
    for eta_key, block in result["per_noise_rate"].items():
        for k in KS:
            stats = block[f"k={k}"]
            rows.append([eta_key, k, stats["precision"], stats["recall"],
                         stats["f1"]])
    emit("fig11_k_sweep",
         format_table(["noise", "k", "precision", "recall", "f1"], rows,
                      title="Fig.11: hyperparameter k sweep"),
         payload=result)

    mean = result["mean"]
    # k>=3 must beat the single-sample setting on mean F1.
    best_large = max(mean["k=3"]["f1"], mean["k=4"]["f1"])
    assert best_large >= mean["k=1"]["f1"] - 0.02
