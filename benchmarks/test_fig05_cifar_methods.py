"""Fig. 5 — method comparison on the CIFAR100 analog (100 classes).

Paper shape: ENLD (0.8194 mean F1) edges out Topofilter (0.8139), both
clearly above Default/CL.
"""

from _common import (assert_paper_ordering, emit, method_comparison_text,
                     run_once)

from repro.experiments import bench_preset, method_comparison


def test_fig05_cifar_methods(benchmark):
    preset = bench_preset("cifar100_like")
    result = run_once(benchmark, lambda: method_comparison(preset))
    emit("fig05_cifar_methods", method_comparison_text(result),
         payload=result)
    assert_paper_ordering(result)
