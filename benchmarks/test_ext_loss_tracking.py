"""Extension bench: loss-tracking baselines (related-work families).

The paper's intro argues loss-tracking detectors (O2U-Net, INCV,
small-loss selection) are accurate but repeat expensive training per
dataset.  This bench adds both families to the comparison at η = 0.2
on the CIFAR100 analog and checks the intro's claim quantitatively:
ENLD matches or beats their F1 at a fraction of the per-request
training work.
"""

from _common import emit, run_once

from repro.baselines import O2UDetector, SmallLossDetector
from repro.eval import run_detector
from repro.eval.reporting import format_table
from repro.experiments import bench_preset, build_enld, build_environment

ETA = 0.2


def _sweep():
    preset = bench_preset("cifar100_like")
    env = build_environment(preset, ETA)
    enld = build_enld(env)
    reports = {
        "enld": run_detector(enld, env.arrivals, "enld",
                             setup_seconds=enld.setup_seconds),
        "o2u": run_detector(
            O2UDetector(env.inventory, env.num_classes,
                        model_name=preset.model_name,
                        warmup_epochs=5, cycle_epochs=5, cycles=2,
                        seed=preset.seed),
            env.arrivals, "o2u"),
        "small_loss": run_detector(
            SmallLossDetector(env.inventory, env.num_classes,
                              model_name=preset.model_name,
                              train_epochs=15, seed=preset.seed),
            env.arrivals, "small_loss"),
    }
    return {
        name: {
            "f1": rep.mean_f1,
            "precision": rep.mean_precision,
            "recall": rep.mean_recall,
            "mean_process_seconds": rep.cost.mean_process_seconds,
            "mean_process_train_samples":
                rep.cost.mean_process_train_samples,
        }
        for name, rep in reports.items()
    }


def test_ext_loss_tracking(benchmark):
    result = run_once(benchmark, _sweep)

    rows = [[name, stats["precision"], stats["recall"], stats["f1"],
             stats["mean_process_seconds"],
             stats["mean_process_train_samples"]]
            for name, stats in sorted(result.items(),
                                      key=lambda kv: -kv[1]["f1"])]
    emit("ext_loss_tracking",
         format_table(["method", "precision", "recall", "f1",
                       "process_s", "train_samples"], rows,
                      title="Extension: loss-tracking baselines "
                            f"(eta={ETA})"),
         payload=result)

    # The intro's claim: ENLD is at least as accurate and much cheaper
    # in per-request training work.
    for rival in ("o2u", "small_loss"):
        assert result["enld"]["f1"] >= result[rival]["f1"] - 0.02, rival
        assert (result["enld"]["mean_process_train_samples"]
                < result[rival]["mean_process_train_samples"]), rival
