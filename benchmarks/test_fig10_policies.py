"""Fig. 10 — sampling-policy comparison inside fine-grained detection.

Paper shape: contrastive sampling beats the alternatives; HC and Pseudo
(which feed cleaner/pseudo-labelled samples) beat the uncertainty-based
Entropy/LC and Random policies.
"""

from _common import emit, run_once

from repro.eval.reporting import format_table
from repro.experiments import bench_preset, fig10_policies

POLICIES = ("contrastive", "random", "highest_confidence",
            "least_confidence", "entropy", "pseudo")


def test_fig10_policies(benchmark):
    # More shards than the default preset: policy gaps are a few F1
    # points, so the mean needs the variance reduction.
    preset = bench_preset("cifar100_like").with_overrides(shard_limit=10)
    result = run_once(benchmark,
                      lambda: fig10_policies(preset, policies=POLICIES))

    rows = []
    for eta_key, block in result["per_noise_rate"].items():
        for policy in POLICIES:
            stats = block[policy]
            rows.append([eta_key, policy, stats["precision"],
                         stats["recall"], stats["f1"]])
    means = "\n".join(f"  {p}: {result['mean_f1'][p]:.4f}"
                      for p in sorted(POLICIES,
                                      key=lambda p: -result["mean_f1"][p]))
    emit("fig10_policies",
         format_table(["noise", "policy", "precision", "recall", "f1"],
                      rows, title="Fig.10: sampling policies")
         + "\n\nMean F1:\n" + means,
         payload=result)

    f1 = result["mean_f1"]
    # Contrastive sampling leads, within shard-sampling noise: it must
    # beat the uncertainty/random policies outright and stay within
    # 0.02 of whichever clean-seeking variant tops the run.
    assert f1["contrastive"] >= max(f1.values()) - 0.02
    for weaker in ("random", "least_confidence", "entropy"):
        assert f1["contrastive"] > f1[weaker], weaker
    # Clean-sample-seeking policies beat pure uncertainty seeking.
    assert max(f1["highest_confidence"], f1["pseudo"]) \
        > min(f1["least_confidence"], f1["entropy"], f1["random"])
