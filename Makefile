# Convenience targets for the ENLD reproduction.

PYTHON ?= python3

.PHONY: install test bench report examples lint analyze graph \
	analyze-smoke typecheck trace-smoke bench-hotpath bench-ingest \
	chaos-smoke clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-record:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-record:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

report:
	$(PYTHON) -m repro report --results benchmarks/results -o EXPERIMENTS.md

examples:
	@for f in examples/*.py; do echo "== $$f =="; \
		PYTHONPATH=src $(PYTHON) $$f || exit 1; done

lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[dev]')"; \
	fi

# The repo's own AST invariant checker (RNG / atomic-write / tracer /
# wall-clock / API-hygiene discipline).  Always available: it only
# needs the stdlib ast module.
analyze:
	PYTHONPATH=src $(PYTHON) -m repro lint src

# Render the project import graph (same graph the REP6xx rules check)
# and the REP703 lock-order graph as Graphviz DOT.
# `dot -Tsvg deps.dot -o deps.svg` to view.
graph:
	PYTHONPATH=src $(PYTHON) -m repro deps src --format dot > deps.dot
	PYTHONPATH=src $(PYTHON) -m repro deps src --locks --format dot > locks.dot
	@echo "wrote deps.dot locks.dot"

# Analyzer perf smoke: cold vs warm incremental-cache full-tree runs
# (hit/miss ledger gated, wall-clock sanity-checked).
analyze-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q \
		benchmarks/test_analyzer_smoke.py

# Strict typing gate on the typed core (repro.obs, repro.datalake,
# repro.core; scope configured in pyproject.toml).  Skips politely
# when mypy is not installed.
typecheck:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --config-file pyproject.toml; \
	else \
		echo "mypy not installed; skipping (pip install mypy)"; \
	fi

trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro trace --quiet \
		-o trace_smoke.json \
		--baseline benchmarks/baselines/trace_smoke.json

bench-hotpath:
	PYTHONPATH=src $(PYTHON) -m repro bench-hotpath \
		--trace-out hotpath_trace.json \
		--baseline benchmarks/baselines/hotpath_smoke.json

# Concurrent-ingestion storm: N streams vs a 10^6-sample sharded
# inventory; asserts bit-identical serial-vs-storm verdicts, the
# datasets/s speedup floor and the committed counter baseline.
bench-ingest:
	PYTHONPATH=src $(PYTHON) -m repro ingest-storm \
		--trace-out ingest_storm_trace.json \
		--baseline benchmarks/baselines/ingest_storm_smoke.json

chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q \
		tests/test_resilience.py tests/test_checkpoint_resume.py \
		tests/test_updater.py tests/test_updater_chaos.py
	PYTHONPATH=src $(PYTHON) -m repro chaos --arrivals 5 --times 3 \
		--fail-stage iteration --fail-stage vote \
		--checkpoint-dir chaos_ckpt
	# Update-kill matrix: inject a fault into every model-update stage
	# (train / swap / publish); the run must degrade gracefully and the
	# resume round-trip must stay bit-identical, version lineage included.
	for stage in update_train update_swap update_publish; do \
		PYTHONPATH=src $(PYTHON) -m repro chaos --arrivals 4 --times 1 \
			--fail-stage $$stage --update-every 2 \
			--checkpoint-dir chaos_ckpt_$$stage || exit 1; \
	done
	# Shard-flush kill: a sharded-inventory checkpoint killed mid-flush
	# must leave the previous generation loadable bit-identically.
	PYTHONPATH=src $(PYTHON) -m repro chaos --arrivals 3 --times 1 \
		--fail-stage shard_flush --checkpoint-dir chaos_ckpt_shards

clean:
	rm -rf build dist *.egg-info src/*.egg-info chaos_ckpt chaos_ckpt_* \
		.repro-analysis deps.dot locks.dot
	find . -name __pycache__ -type d -exec rm -rf {} +
