"""Tests for repro.core.samplesets (Definition 1 and the §IV-E filter)."""

import numpy as np
import pytest

from repro.core.samplesets import (ModelView, ambiguous_mask, compute_view,
                                   high_quality_mask)
from repro.noise.injector import MISSING_LABEL
from repro.nn.data import LabeledDataset


def make_view(probs):
    probs = np.asarray(probs, dtype=float)
    return ModelView(probs=probs, features=np.zeros((len(probs), 2)))


class TestModelView:
    def test_predictions_and_confidences(self):
        view = make_view([[0.9, 0.1], [0.3, 0.7]])
        assert np.array_equal(view.predictions, [0, 1])
        assert np.allclose(view.confidences, [0.9, 0.7])
        assert len(view) == 2

    def test_alignment_check(self):
        with pytest.raises(ValueError):
            ModelView(probs=np.zeros((3, 2)), features=np.zeros((2, 2)))

    def test_compute_view(self, trained_blob_model, blobs):
        view = compute_view(trained_blob_model, blobs)
        assert len(view) == len(blobs)
        assert np.allclose(view.probs.sum(axis=1), 1.0)
        assert view.features.shape[1] == trained_blob_model.feature_dim


class TestAmbiguous:
    def test_definition(self):
        ds = LabeledDataset(np.zeros((3, 1)), np.array([0, 1, 0]))
        view = make_view([[0.9, 0.1], [0.9, 0.1], [0.2, 0.8]])
        # predictions: 0, 0, 1 → disagreements at rows 1 and 2.
        assert np.array_equal(ambiguous_mask(ds, view),
                              [False, True, True])

    def test_missing_labels_never_ambiguous(self):
        ds = LabeledDataset(np.zeros((2, 1)),
                            np.array([MISSING_LABEL, 1]))
        view = make_view([[0.9, 0.1], [0.9, 0.1]])
        assert np.array_equal(ambiguous_mask(ds, view), [False, True])

    def test_alignment_check(self):
        ds = LabeledDataset(np.zeros((3, 1)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            ambiguous_mask(ds, make_view([[1.0, 0.0]]))


class TestHighQuality:
    def test_agreement_without_filter(self):
        ds = LabeledDataset(np.zeros((3, 1)), np.array([0, 1, 1]))
        view = make_view([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        got = high_quality_mask(ds, view, confidence_filter=False)
        assert np.array_equal(got, [True, True, False])

    def test_confidence_filter_drops_below_class_average(self):
        ds = LabeledDataset(np.zeros((3, 1)), np.array([0, 0, 0]))
        # All predicted class 0 and agree; confidences 0.95, 0.9, 0.55.
        view = make_view([[0.95, 0.05], [0.9, 0.1], [0.55, 0.45]])
        got = high_quality_mask(ds, view, confidence_filter=True)
        # Average confidence = 0.8 → the 0.55 sample is filtered out.
        assert np.array_equal(got, [True, True, False])

    def test_missing_labels_never_high_quality(self):
        ds = LabeledDataset(np.zeros((2, 1)),
                            np.array([MISSING_LABEL, 0]))
        view = make_view([[0.9, 0.1], [0.9, 0.1]])
        got = high_quality_mask(ds, view, confidence_filter=False)
        assert np.array_equal(got, [False, True])

    def test_filter_is_per_class(self):
        ds = LabeledDataset(np.zeros((4, 1)), np.array([0, 0, 1, 1]))
        view = make_view([[0.99, 0.01], [0.97, 0.03],
                          [0.4, 0.6], [0.45, 0.55]])
        got = high_quality_mask(ds, view, confidence_filter=True)
        # Both classes keep their above-average member(s); the filter
        # never mixes thresholds across classes.
        assert got[0] or got[1]
        assert got[2] or got[3]

    def test_on_trained_model(self, trained_blob_model, blobs, rng):
        from repro.noise import corrupt_labels, pair_asymmetric
        noisy = corrupt_labels(blobs, pair_asymmetric(3, 0.3), rng)
        view = compute_view(trained_blob_model, noisy)
        hq = high_quality_mask(noisy, view)
        amb = ambiguous_mask(noisy, view)
        # HQ and ambiguous are disjoint by definition.
        assert not (hq & amb).any()
        # High-quality samples should be overwhelmingly clean.
        clean = noisy.y == noisy.true_y
        assert clean[hq].mean() > 0.9
        # Ambiguous samples should be noise-enriched.
        assert (~clean)[amb].mean() > (~clean).mean()
