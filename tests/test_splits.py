"""Tests for repro.datasets.splits (inventory/incremental sharding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.splits import (ShardPlan, make_incremental_shards,
                                   paper_shard_plan,
                                   split_inventory_incremental)
from repro.nn.data import LabeledDataset


def pool_dataset(n_classes=8, per_class=12):
    y = np.repeat(np.arange(n_classes), per_class)
    x = np.random.default_rng(0).normal(size=(len(y), 3))
    return LabeledDataset(x, y, true_y=y.copy(), name="pool")


class TestInventorySplit:
    def test_two_to_one_ratio(self, rng):
        ds = pool_dataset()
        inv, inc = split_inventory_incremental(ds, rng)
        assert len(inv) + len(inc) == len(ds)
        assert abs(len(inv) - 2 * len(inc)) <= 2

    def test_disjoint_ids(self, rng):
        inv, inc = split_inventory_incremental(pool_dataset(), rng)
        assert set(inv.ids) & set(inc.ids) == set()

    def test_custom_fraction(self, rng):
        inv, inc = split_inventory_incremental(pool_dataset(), rng,
                                               inventory_fraction=0.5)
        assert abs(len(inv) - len(inc)) <= 1

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            split_inventory_incremental(pool_dataset(), rng,
                                        inventory_fraction=1.5)


class TestShardPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(num_shards=0, classes_per_shard=2)
        with pytest.raises(ValueError):
            ShardPlan(num_shards=2, classes_per_shard=0)
        with pytest.raises(ValueError):
            ShardPlan(num_shards=2, classes_per_shard=2, dirichlet_alpha=0)

    def test_paper_plans(self):
        assert paper_shard_plan("emnist_like").num_shards == 10
        assert paper_shard_plan("cifar100_like").num_shards == 20
        assert paper_shard_plan("cifar100_like").classes_per_shard == 10
        assert paper_shard_plan("tiny_imagenet_like").classes_per_shard == 20
        with pytest.raises(KeyError, match="available"):
            paper_shard_plan("mnist")


class TestSharding:
    def test_shards_partition_pool(self, rng):
        pool = pool_dataset()
        plan = ShardPlan(num_shards=4, classes_per_shard=3)
        shards = make_incremental_shards(pool, plan, rng)
        all_ids = np.concatenate([s.ids for s in shards])
        assert sorted(all_ids.tolist()) == sorted(pool.ids.tolist())

    def test_shard_class_limit(self, rng):
        pool = pool_dataset()
        plan = ShardPlan(num_shards=4, classes_per_shard=3)
        for shard in make_incremental_shards(pool, plan, rng):
            assert len(np.unique(shard.y)) <= 3

    def test_every_class_covered(self, rng):
        pool = pool_dataset(n_classes=10)
        plan = ShardPlan(num_shards=5, classes_per_shard=3)
        shards = make_incremental_shards(pool, plan, rng)
        covered = set()
        for shard in shards:
            covered.update(np.unique(shard.y).tolist())
        assert covered == set(range(10))

    def test_capacity_check(self, rng):
        pool = pool_dataset(n_classes=10)
        plan = ShardPlan(num_shards=2, classes_per_shard=3)
        with pytest.raises(ValueError, match="cannot cover"):
            make_incremental_shards(pool, plan, rng)

    def test_unbalanced_distribution(self, rng):
        """Dirichlet weighting must produce non-uniform class counts."""
        pool = pool_dataset(n_classes=4, per_class=100)
        plan = ShardPlan(num_shards=4, classes_per_shard=4,
                         dirichlet_alpha=0.3)
        shards = make_incremental_shards(pool, plan, rng)
        counts = np.array([s.class_counts(num_classes=4) for s in shards])
        # At least one class split is clearly unbalanced across shards.
        spread = counts.max(axis=0) - counts.min(axis=0)
        assert spread.max() > 20

    def test_deterministic_given_rng_seed(self):
        pool = pool_dataset()
        plan = ShardPlan(num_shards=3, classes_per_shard=4)
        a = make_incremental_shards(pool, plan, np.random.default_rng(9))
        b = make_incremental_shards(pool, plan, np.random.default_rng(9))
        for sa, sb in zip(a, b):
            assert np.array_equal(sa.ids, sb.ids)

    def test_preserves_truth(self, rng):
        pool = pool_dataset()
        plan = ShardPlan(num_shards=3, classes_per_shard=4)
        for shard in make_incremental_shards(pool, plan, rng):
            assert shard.true_y is not None
            assert np.array_equal(shard.y, shard.true_y)  # pool is clean

    @given(st.integers(2, 8), st.integers(2, 6), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_partition_property(self, n_classes, n_shards, cps):
        if n_shards * cps < n_classes:
            return  # infeasible plan, covered by capacity test
        y = np.repeat(np.arange(n_classes), 5)
        pool = LabeledDataset(np.zeros((len(y), 2)), y)
        plan = ShardPlan(num_shards=n_shards, classes_per_shard=cps)
        shards = make_incremental_shards(pool, plan,
                                         np.random.default_rng(0))
        total = sum(len(s) for s in shards)
        assert total == len(pool)
