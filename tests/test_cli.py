"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.figure == "fig5"
        assert args.scale == "bench"
        assert args.noise_rates is None

    def test_run_noise_rates(self):
        args = build_parser().parse_args(
            ["run", "fig9", "--noise-rates", "0.1", "0.3"])
        assert args.noise_rates == [0.1, 0.3]

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.dataset == "toy"
        assert args.noise_rate == 0.2

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.arrivals == 5
        assert args.fail_stage is None  # resolved to ["iteration"]
        assert args.times == 1
        assert args.checkpoint_dir is None

    def test_chaos_repeatable_stage(self):
        args = build_parser().parse_args(
            ["chaos", "--fail-stage", "vote", "--fail-stage", "warmup"])
        assert args.fail_stage == ["vote", "warmup"]


class TestCommands:
    def test_list_figures(self, capsys):
        assert main(["list-figures"]) == 0
        out = capsys.readouterr().out
        for key in ("fig3", "fig14", "table2"):
            assert key in out

    def test_run_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_run_small_scale_to_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "result.json")
        code = main(["run", "fig13b", "--scale", "small",
                     "--noise-rates", "0.2", "--output", out_path])
        assert code == 0
        with open(out_path) as fh:
            payload = json.load(fh)
        assert "num_ambiguous" in payload

    def test_run_small_scale_stdout(self, capsys):
        assert main(["run", "fig13b", "--scale", "small",
                     "--noise-rates", "0.2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "num_ambiguous" in payload

    def test_demo_runs(self, capsys):
        assert main(["demo", "--dataset", "toy", "--max-arrivals", "1"]) == 0
        out = capsys.readouterr().out
        assert "f1=" in out

    def test_demo_trace_out(self, tmp_path, capsys):
        path = str(tmp_path / "demo_trace.json")
        assert main(["demo", "--dataset", "toy", "--max-arrivals", "1",
                     "--trace-out", path]) == 0
        capsys.readouterr()
        with open(path) as fh:
            trace = json.load(fh)
        assert "setup" in trace["spans"]
        assert "detect" in trace["spans"]


class TestChaosCommand:
    def test_chaos_unknown_stage(self, capsys):
        assert main(["chaos", "--fail-stage", "teleport"]) == 2
        assert "unknown stage" in capsys.readouterr().err

    def test_chaos_run_with_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(["chaos", "--arrivals", "3", "--times", "3",
                     "--fail-stage", "iteration",
                     "--checkpoint-dir", ckpt]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out
        summary = json.loads(out[out.index("{"):])
        assert summary["statuses"][0] == "degraded"
        assert summary["statuses"][-1] == "quarantined"
        assert summary["injected"] == {"iteration": 3}
        assert summary["resume_ok"] is True
        journal = json.loads("[%s]" % ",".join(
            line for line in open(
                f"{ckpt}/journal.jsonl").read().splitlines()))
        assert [e["status"] for e in journal] == \
            ["degraded", "ok", "ok", "quarantined"]


class TestTraceCommand:
    def test_trace_exports_spans_and_summary(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        assert main(["trace", "--max-arrivals", "1", "-o", path]) == 0
        out = capsys.readouterr().out
        assert "setup" in out  # summary table printed
        with open(path) as fh:
            trace = json.load(fh)
        assert trace["meta"]["arrivals"] == 1
        detect = trace["spans"]["detect"]
        assert detect["children"]["iteration"]["children"]["fine_tune"][
            "work"] > 0

    def test_trace_gate_passes_against_own_baseline(self, tmp_path,
                                                    capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["trace", "--max-arrivals", "1", "--quiet",
                     "-o", baseline]) == 0
        assert main(["trace", "--max-arrivals", "1", "--quiet",
                     "--baseline", baseline]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_trace_gate_fails_on_mismatch(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["trace", "--max-arrivals", "2", "--quiet",
                     "-o", baseline]) == 0
        # Half the arrivals → detect-stage work far below baseline.
        assert main(["trace", "--max-arrivals", "1", "--quiet",
                     "--baseline", baseline]) == 1
        assert "FAILED" in capsys.readouterr().out
