"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.figure == "fig5"
        assert args.scale == "bench"
        assert args.noise_rates is None

    def test_run_noise_rates(self):
        args = build_parser().parse_args(
            ["run", "fig9", "--noise-rates", "0.1", "0.3"])
        assert args.noise_rates == [0.1, 0.3]

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.dataset == "toy"
        assert args.noise_rate == 0.2

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.arrivals == 5
        assert args.fail_stage is None  # resolved to ["iteration"]
        assert args.times == 1
        assert args.checkpoint_dir is None
        assert args.update_every is None
        assert args.update_mode == "inline"

    def test_chaos_repeatable_stage(self):
        args = build_parser().parse_args(
            ["chaos", "--fail-stage", "vote", "--fail-stage", "warmup"])
        assert args.fail_stage == ["vote", "warmup"]

    def test_chaos_update_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--update-every", "2", "--update-mode", "thread"])
        assert args.update_every == 2
        assert args.update_mode == "thread"

    def test_versions_parser(self):
        args = build_parser().parse_args(
            ["versions", "--checkpoint-dir", "ckpt"])
        assert args.checkpoint_dir == "ckpt"
        assert args.journal is None
        assert args.verdicts is None
        assert args.json is False


class TestCommands:
    def test_list_figures(self, capsys):
        assert main(["list-figures"]) == 0
        out = capsys.readouterr().out
        for key in ("fig3", "fig14", "table2"):
            assert key in out

    def test_run_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_run_small_scale_to_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "result.json")
        code = main(["run", "fig13b", "--scale", "small",
                     "--noise-rates", "0.2", "--output", out_path])
        assert code == 0
        with open(out_path) as fh:
            payload = json.load(fh)
        assert "num_ambiguous" in payload

    def test_run_small_scale_stdout(self, capsys):
        assert main(["run", "fig13b", "--scale", "small",
                     "--noise-rates", "0.2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "num_ambiguous" in payload

    def test_demo_runs(self, capsys):
        assert main(["demo", "--dataset", "toy", "--max-arrivals", "1"]) == 0
        out = capsys.readouterr().out
        assert "f1=" in out

    def test_demo_trace_out(self, tmp_path, capsys):
        path = str(tmp_path / "demo_trace.json")
        assert main(["demo", "--dataset", "toy", "--max-arrivals", "1",
                     "--trace-out", path]) == 0
        capsys.readouterr()
        with open(path) as fh:
            trace = json.load(fh)
        assert "setup" in trace["spans"]
        assert "detect" in trace["spans"]


class TestChaosCommand:
    def test_chaos_unknown_stage(self, capsys):
        assert main(["chaos", "--fail-stage", "teleport"]) == 2
        assert "unknown stage" in capsys.readouterr().err

    def test_chaos_run_with_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(["chaos", "--arrivals", "3", "--times", "3",
                     "--fail-stage", "iteration",
                     "--checkpoint-dir", ckpt]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out
        summary = json.loads(out[out.index("{"):])
        assert summary["statuses"][0] == "degraded"
        assert summary["statuses"][-1] == "quarantined"
        assert summary["injected"] == {"iteration": 3}
        assert summary["resume_ok"] is True
        journal = json.loads("[%s]" % ",".join(
            line for line in open(
                f"{ckpt}/journal.jsonl").read().splitlines()))
        assert [e["status"] for e in journal] == \
            ["degraded", "ok", "ok", "quarantined"]


class TestVersionsCommand:
    """`repro versions` runs off a handcrafted platform.json — fast."""

    VERSIONS = [
        {"version_id": "aaaa000011112222", "seq": 0, "reason": "setup",
         "weights_digest": "w0", "clean_pool_digest": "p0",
         "clean_pool_size": 0, "config_digest": "c0", "parent": None,
         "train_samples": 100, "train_epochs": 10,
         "created_at_submission": 0},
        {"version_id": "bbbb333344445555", "seq": 1, "reason": "scheduled",
         "weights_digest": "w1", "clean_pool_digest": "p1",
         "clean_pool_size": 40, "config_digest": "c0",
         "parent": "aaaa000011112222", "train_samples": 80,
         "train_epochs": 5, "created_at_submission": 2},
    ]

    def write_checkpoint(self, tmp_path):
        records = [
            {"dataset_name": "a0", "clean_ids": [1, 2], "noisy_ids": [3],
             "process_seconds": 0.1, "detector": "enld",
             "model_version": "aaaa000011112222"},
            {"dataset_name": "a1", "clean_ids": [4], "noisy_ids": [5, 6],
             "process_seconds": 0.1, "detector": "enld",
             "model_version": "bbbb333344445555"},
            {"dataset_name": "old", "clean_ids": [7], "noisy_ids": [],
             "process_seconds": 0.1, "detector": "enld",
             "model_version": None},
        ]
        state = {"catalog": {"version": 3, "records": records,
                             "quarantined": [], "clean_inventory_ids": [],
                             "model_versions": self.VERSIONS}}
        with open(tmp_path / "platform.json", "w") as fh:
            json.dump(state, fh)
        return str(tmp_path)

    def test_lineage_table(self, tmp_path, capsys):
        ckpt = self.write_checkpoint(tmp_path)
        assert main(["versions", "--checkpoint-dir", ckpt]) == 0
        out = capsys.readouterr().out
        assert "aaaa000011112222" in out and "bbbb333344445555" in out
        assert "scheduled" in out
        assert "1 record(s) predate versioning" in out

    def test_verdicts_by_prefix(self, tmp_path, capsys):
        ckpt = self.write_checkpoint(tmp_path)
        assert main(["versions", "--checkpoint-dir", ckpt,
                     "--verdicts", "bbbb"]) == 0
        out = capsys.readouterr().out
        assert "a1: clean=1 noisy=2" in out
        assert "a0" not in out

    def test_verdicts_by_seq_json(self, tmp_path, capsys):
        ckpt = self.write_checkpoint(tmp_path)
        assert main(["versions", "--checkpoint-dir", ckpt,
                     "--verdicts", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"]["version_id"] == "aaaa000011112222"
        assert payload["verdicts"] == [
            {"dataset": "a0", "clean": 2, "noisy": 1}]

    def test_unknown_ref_and_missing_checkpoint(self, tmp_path, capsys):
        ckpt = self.write_checkpoint(tmp_path)
        assert main(["versions", "--checkpoint-dir", ckpt,
                     "--verdicts", "zzzz"]) == 2
        assert "no model version" in capsys.readouterr().err
        assert main(["versions", "--checkpoint-dir",
                     str(tmp_path / "nope")]) == 2
        assert "no platform checkpoint" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_exports_spans_and_summary(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        assert main(["trace", "--max-arrivals", "1", "-o", path]) == 0
        out = capsys.readouterr().out
        assert "setup" in out  # summary table printed
        with open(path) as fh:
            trace = json.load(fh)
        assert trace["meta"]["arrivals"] == 1
        detect = trace["spans"]["detect"]
        assert detect["children"]["iteration"]["children"]["fine_tune"][
            "work"] > 0

    def test_trace_gate_passes_against_own_baseline(self, tmp_path,
                                                    capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["trace", "--max-arrivals", "1", "--quiet",
                     "-o", baseline]) == 0
        assert main(["trace", "--max-arrivals", "1", "--quiet",
                     "--baseline", baseline]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_trace_gate_fails_on_mismatch(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["trace", "--max-arrivals", "2", "--quiet",
                     "-o", baseline]) == 0
        # Half the arrivals → detect-stage work far below baseline.
        assert main(["trace", "--max-arrivals", "1", "--quiet",
                     "--baseline", baseline]) == 1
        assert "FAILED" in capsys.readouterr().out
