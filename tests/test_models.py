"""Tests for repro.nn.models and repro.nn.blocks (model zoo)."""

import numpy as np
import pytest

from repro.nn.blocks import (DenseMLPBlock, ResidualConvBlock,
                             ResidualMLPBlock, TransitionMLP)
from repro.nn.models import (DenseNetMLP, MLPClassifier, ResNetMLP,
                             SmallConvNet, available_models, build_model)
from repro.nn.tensor import Tensor


def rng():
    return np.random.default_rng(0)


class TestBlocks:
    def test_residual_block_preserves_shape(self):
        block = ResidualMLPBlock(16, rng=rng())
        out = block(Tensor(np.zeros((4, 16))))
        assert out.shape == (4, 16)

    def test_residual_block_is_identity_plus_branch(self):
        block = ResidualMLPBlock(8, rng=rng(), use_norm=False)
        # Zero out the second layer so the branch contributes nothing.
        block.fc2.weight.data[:] = 0.0
        block.fc2.bias.data[:] = 0.0
        x = np.random.default_rng(1).normal(size=(3, 8))
        assert np.allclose(block(Tensor(x)).data, x)

    def test_residual_gradient_reaches_input(self):
        block = ResidualMLPBlock(8, rng=rng(), use_norm=False)
        t = Tensor(np.ones((2, 8)), requires_grad=True)
        block(t).sum().backward()
        assert t.grad is not None
        # Identity path guarantees gradient at least 1 in magnitude sum.
        assert np.abs(t.grad).sum() > 0

    def test_dense_block_grows_width(self):
        block = DenseMLPBlock(10, growth=4, num_layers=3, rng=rng())
        out = block(Tensor(np.zeros((2, 10))))
        assert out.shape == (2, 10 + 3 * 4)
        assert block.out_width == 22

    def test_transition_compresses(self):
        tr = TransitionMLP(20, 8, rng=rng())
        assert tr(Tensor(np.zeros((2, 20)))).shape == (2, 8)

    def test_conv_residual_block(self):
        block = ResidualConvBlock(4, rng=rng())
        out = block(Tensor(np.zeros((1, 4, 6, 6))))
        assert out.shape == (1, 4, 6, 6)


class TestClassifierAPI:
    @pytest.fixture
    def model(self):
        return MLPClassifier(6, 4, hidden=16, rng=rng())

    def test_predict_proba_rows_sum_to_one(self, model):
        x = np.random.default_rng(2).normal(size=(9, 6))
        probs = model.predict_proba(x)
        assert probs.shape == (9, 4)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_predict_matches_argmax(self, model):
        x = np.random.default_rng(3).normal(size=(5, 6))
        assert np.array_equal(model.predict(x),
                              model.predict_proba(x).argmax(axis=1))

    def test_features_shape(self, model):
        x = np.zeros((7, 6))
        assert model.features(x).shape == (7, model.feature_dim)

    def test_batched_inference_consistent(self, model):
        x = np.random.default_rng(4).normal(size=(30, 6))
        full = model.predict_logits(x, batch_size=256)
        small = model.predict_logits(x, batch_size=7)
        assert np.allclose(full, small)

    def test_inference_restores_training_mode(self, model):
        model.train()
        model.predict(np.zeros((2, 6)))
        assert model.training

    def test_inference_keeps_eval_mode(self, model):
        model.eval()
        model.predict(np.zeros((2, 6)))
        assert not model.training

    def test_flattens_nd_input(self, model):
        out = model(Tensor(np.zeros((3, 2, 3))))
        assert out.shape == (3, 4)


class TestModelZoo:
    def test_registry_contents(self):
        names = available_models()
        for expected in ("mlp", "resnet110", "resnet164", "densenet121",
                         "tinyresnet"):
            assert expected in names

    def test_unknown_model_raises_with_list(self):
        with pytest.raises(KeyError, match="available"):
            build_model("nope", 4, 2)

    @pytest.mark.parametrize("name", ["mlp", "tinyresnet", "densenet121"])
    def test_build_and_run(self, name):
        model = build_model(name, 12, 5, rng=rng())
        probs = model.predict_proba(np.zeros((3, 12)))
        assert probs.shape == (3, 5)

    def test_resnet110_depth(self):
        model = build_model("resnet110", 8, 3, rng=rng())
        assert isinstance(model, ResNetMLP)
        assert len(model.blocks) == 18

    def test_resnet164_deeper_than_110(self):
        m110 = build_model("resnet110", 8, 3, rng=rng())
        m164 = build_model("resnet164", 8, 3, rng=rng())
        assert len(m164.blocks) > len(m110.blocks)

    def test_densenet_feature_dim_consistent(self):
        model = DenseNetMLP(10, 4, rng=rng())
        feats = model.features(np.zeros((2, 10)))
        assert feats.shape[1] == model.feature_dim

    def test_duplicate_registration_rejected(self):
        from repro.nn.models import register_model
        with pytest.raises(KeyError, match="already"):
            register_model("mlp")(lambda *a, **k: None)


class TestSmallConvNet:
    def test_forward_from_images(self):
        model = SmallConvNet((1, 8, 8), 3, channels=4, rng=rng())
        out = model(Tensor(np.zeros((2, 1, 8, 8))))
        assert out.shape == (2, 3)

    def test_forward_from_flat(self):
        model = SmallConvNet((1, 8, 8), 3, channels=4, rng=rng())
        out = model(Tensor(np.zeros((2, 64))))
        assert out.shape == (2, 3)

    def test_rejects_bad_spatial_dims(self):
        with pytest.raises(ValueError, match="divisible"):
            SmallConvNet((1, 6, 6), 3)

    def test_trains_on_tiny_problem(self):
        from repro.nn.data import LabeledDataset
        from repro.nn.train import fit
        gen = np.random.default_rng(5)
        # Two classes: bright top half vs bright bottom half.
        x = np.zeros((40, 1, 8, 8))
        x[:20, :, :4, :] = 1.0
        x[20:, :, 4:, :] = 1.0
        x += gen.normal(scale=0.05, size=x.shape)
        y = np.repeat([0, 1], 20)
        ds = LabeledDataset(x.reshape(40, -1), y, true_y=y)
        model = SmallConvNet((1, 8, 8), 2, channels=4, rng=gen)
        fit(model, ds, epochs=6, rng=gen, lr=0.05, batch_size=8)
        acc = (model.predict(ds.x) == y).mean()
        assert acc > 0.9
