"""Configuration-path tests for every preset size and dataset.

The ``full`` presets approximate the paper's configuration; they are
too slow to *run* in CI, but their configs must always construct and
carry the paper's parameter choices.
"""

import pytest

from repro.datasets import get_preset
from repro.experiments.presets import bench_preset, full_preset, small_preset

DATASETS = ("emnist_like", "cifar100_like", "tiny_imagenet_like")


class TestFullPresets:
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_constructs_valid_config(self, dataset):
        preset = full_preset(dataset)
        config = preset.enld_config()
        assert config.contrastive_k == 3       # §V-A6
        assert config.steps_per_iteration == 5  # s = 5
        assert config.warmup_epochs == 2

    def test_paper_iteration_counts(self):
        assert full_preset("emnist_like").iterations == 5
        assert full_preset("cifar100_like").iterations == 17
        assert full_preset("tiny_imagenet_like").iterations == 17

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_full_scale_spec_larger_than_bench(self, dataset):
        full_spec = get_preset(dataset, scale="full")
        bench_spec = get_preset(dataset, scale="bench")
        assert full_spec.samples_per_class > bench_spec.samples_per_class
        assert full_spec.num_classes == bench_spec.num_classes

    def test_full_runs_all_shards(self):
        assert full_preset("cifar100_like").shard_limit is None


class TestPresetMatrix:
    @pytest.mark.parametrize("factory", [bench_preset, full_preset])
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_every_combination_constructs(self, factory, dataset):
        preset = factory(dataset)
        assert preset.dataset_preset == dataset
        assert preset.enld_config() is not None

    def test_small_preset_defaults(self):
        preset = small_preset("toy")
        assert preset.noise_rates == (0.2,)
        assert preset.shard_limit == 2

    def test_topofilter_tuning_differs_by_dataset(self):
        emnist = bench_preset("emnist_like")
        cifar = bench_preset("cifar100_like")
        assert emnist.topofilter_knn_k != cifar.topofilter_knn_k
        assert cifar.topofilter_mixup is not None
