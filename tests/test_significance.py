"""Tests for repro.eval.significance and instance-dependent noise."""

import numpy as np
import pytest

from repro.core.detector import DetectionResult
from repro.eval.metrics import score_masks
from repro.eval.runner import MethodReport, ShardOutcome
from repro.eval.significance import paired_bootstrap
from repro.noise import instance_dependent_noise
from repro.nn.data import LabeledDataset


def report_from_f1s(name, f1s):
    """Fabricate a report whose per-shard f1 values equal ``f1s``."""
    report = MethodReport(method=name)
    for i, f1 in enumerate(f1s):
        # Build masks realising the wanted f1: f1=1 → perfect; f1=0 → miss.
        n = 10
        truth = np.zeros(n, dtype=bool)
        truth[:5] = True
        if f1 >= 0.999:
            detected = truth.copy()
        elif f1 <= 0.001:
            detected = ~truth
        else:
            # partial: detect a fraction of the truth
            detected = np.zeros(n, dtype=bool)
            hits = max(int(round(f1 * 5)), 1)
            detected[:hits] = True
        score = score_masks(detected, truth)
        result = DetectionResult(
            clean_mask=~detected, noisy_mask=detected,
            inventory_clean_positions=np.empty(0, dtype=int),
            pseudo_labels=np.full(n, -1))
        report.add(ShardOutcome(f"s{i}", score, 0.1, 0, result))
    return report


class TestPairedBootstrap:
    def test_clear_winner_significant(self):
        a = report_from_f1s("a", [1.0] * 8)
        b = report_from_f1s("b", [0.0] * 8)
        cmp = paired_bootstrap(a, b, num_resamples=2000)
        assert cmp.significant
        assert cmp.mean_difference > 0.9
        assert cmp.ci_low > 0

    def test_identical_methods_not_significant(self):
        a = report_from_f1s("a", [1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
        b = report_from_f1s("b", [1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
        cmp = paired_bootstrap(a, b, num_resamples=2000)
        assert not cmp.significant
        assert cmp.mean_difference == 0.0

    def test_shard_mismatch_rejected(self):
        a = report_from_f1s("a", [1.0])
        b = report_from_f1s("b", [1.0, 0.5])
        with pytest.raises(ValueError, match="identical shard"):
            paired_bootstrap(a, b)

    def test_empty_rejected(self):
        a = MethodReport(method="a")
        b = MethodReport(method="b")
        with pytest.raises(ValueError, match="no shards"):
            paired_bootstrap(a, b)

    def test_deterministic_given_seed(self):
        a = report_from_f1s("a", [1.0, 0.6, 0.8, 0.9])
        b = report_from_f1s("b", [0.6, 0.6, 0.7, 0.8])
        c1 = paired_bootstrap(a, b, seed=3)
        c2 = paired_bootstrap(a, b, seed=3)
        assert c1 == c2


class TestInstanceDependentNoise:
    def make(self, n=400, classes=4):
        y = np.tile(np.arange(classes), n // classes)
        return LabeledDataset(np.zeros((n, 2)), y, true_y=y.copy())

    def test_mean_rate_matches(self, rng):
        ds = self.make()
        difficulty = np.ones(len(ds))
        noisy = instance_dependent_noise(ds, 0.3, difficulty, rng)
        assert abs(noisy.noise_rate() - 0.3) < 0.06

    def test_difficult_samples_flip_more(self):
        ds = self.make(n=2000)
        difficulty = np.zeros(len(ds))
        difficulty[:1000] = 1.0  # only the first half can flip
        noisy = instance_dependent_noise(ds, 0.2,
                                         difficulty,
                                         np.random.default_rng(0))
        flipped = noisy.y != noisy.true_y
        assert flipped[:1000].mean() > 0.3
        assert flipped[1000:].sum() == 0

    def test_flips_to_adjacent_class(self, rng):
        ds = self.make()
        noisy = instance_dependent_noise(ds, 0.4, np.ones(len(ds)), rng)
        flipped = noisy.y != noisy.true_y
        assert np.array_equal(noisy.y[flipped],
                              (noisy.true_y[flipped] + 1) % 4)

    def test_validation(self, rng):
        ds = self.make()
        with pytest.raises(ValueError):
            instance_dependent_noise(ds, 1.2, np.ones(len(ds)), rng)
        with pytest.raises(ValueError):
            instance_dependent_noise(ds, 0.2, np.ones(3), rng)
        with pytest.raises(ValueError):
            instance_dependent_noise(ds, 0.2, -np.ones(len(ds)), rng)
        with pytest.raises(ValueError):
            instance_dependent_noise(ds, 0.2, np.zeros(len(ds)), rng)
        without_truth = LabeledDataset(ds.x, ds.y)
        with pytest.raises(ValueError):
            instance_dependent_noise(without_truth, 0.2,
                                     np.ones(len(ds)), rng)
