"""API-quality gates: documentation and export hygiene.

These tests enforce the library's public-API contract: every public
module, class and function carries a docstring, and every name listed
in an ``__all__`` actually resolves.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = ["repro", "repro.nn", "repro.datasets", "repro.noise",
            "repro.index", "repro.datalake", "repro.core",
            "repro.baselines", "repro.eval", "repro.experiments"]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_"):
                continue
            yield importlib.import_module(f"{package_name}.{info.name}")


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home module
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}")


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    if exported is None:
        pytest.skip(f"{package_name} has no __all__")
    missing = [name for name in exported if not hasattr(package, name)]
    assert not missing, f"{package_name}.__all__ lists missing: {missing}"


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
