"""Tests for repro.experiments.report_markdown (EXPERIMENTS.md renderer)."""

import json
import os

import pytest

from repro.experiments.report_markdown import (PAPER_VALUES, render_markdown,
                                               write_markdown)


@pytest.fixture
def results_dir(tmp_path):
    """A minimal set of result JSONs shaped like the benchmark output."""
    d = str(tmp_path)

    def dump(name, payload):
        with open(os.path.join(d, f"{name}.json"), "w") as fh:
            json.dump(payload, fh)

    dump("fig03_contribution", {
        "eta=0.2": {"origin": 0.8, "random": 0.79, "nearest_only": 0.72,
                    "nearest_related": 0.70}})
    dump("fig05_cifar_methods", {
        "dataset": "cifar100_like",
        "mean_f1": {"enld": 0.78, "topofilter": 0.52, "default": 0.62,
                    "cl_prune_by_class": 0.59,
                    "cl_prune_by_noise_rate": 0.59},
        "per_noise_rate": {"eta=0.2": {
            "enld": {"speedup_over_topofilter": 3.1,
                     "work_speedup_over_topofilter": 6.3}}}})
    dump("table2_model_update", {
        "eta=0.1": {"origin_accuracy": 0.90, "update_accuracy": 0.95,
                    "clean_inventory_selected": 1200}})
    dump("fig14_ablation", {
        "mean_f1": {"origin": 0.78, "enld-1": 0.62, "enld-2": 0.74,
                    "enld-3": 0.60, "enld-4": 0.75}})
    dump("fig10_policies", {"mean_f1": {"contrastive": 0.78,
                                        "random": 0.70}})
    dump("fig13b_ambiguous", {"num_ambiguous": [18.0, 12.0, 10.0]})
    return d


class TestRender:
    def test_contains_all_sections(self, results_dir):
        text = render_markdown(results_dir)
        for heading in ("Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                        "Fig. 8", "Fig. 9", "Fig. 10", "Figs. 11 & 12",
                        "Table II", "Fig. 13", "Fig. 14", "Extensions"):
            assert heading in text, heading

    def test_measured_values_included(self, results_dir):
        text = render_markdown(results_dir)
        assert "0.7800" in text            # enld mean f1
        assert "3.10x" in text             # wall speedup
        assert "0.9000 → 0.9500" in text   # table2 measured

    def test_paper_values_included(self, results_dir):
        text = render_markdown(results_dir)
        assert str(PAPER_VALUES["fig5"]["enld_f1"]) in text
        assert "3.65" in text

    def test_missing_results_handled(self, tmp_path):
        text = render_markdown(str(tmp_path))
        assert "No recorded benchmark result" in text

    def test_write(self, results_dir, tmp_path):
        out = str(tmp_path / "EXPERIMENTS.md")
        write_markdown(results_dir, out)
        with open(out) as fh:
            assert fh.read().startswith("# EXPERIMENTS")


class TestCLIReport:
    def test_cli_report(self, results_dir, tmp_path, capsys):
        from repro.cli import main
        out = str(tmp_path / "E.md")
        assert main(["report", "--results", results_dir, "-o", out]) == 0
        assert os.path.exists(out)
