"""Kill-and-resume tests: crash-safe platform checkpointing."""

import json
import os
import threading

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.scheduler import (AnyOf, CleanPoolGrowth,
                                  DetectionDegradation, EveryNArrivals,
                                  scheduler_from_state, scheduler_to_state)
from repro.datalake import (ArrivalStream, NO_WAIT_RETRY, NoisyLabelPlatform,
                            RetryPolicy, UpdaterConfig, catalog_state,
                            read_journal)
from repro.datalake.catalog import DataLakeCatalog, DetectionRecord
from repro.datalake.persistence import (load_catalog_state, save_catalog)
from repro.datasets import generate, split_inventory_incremental, toy
from repro.datasets.splits import ShardPlan
from repro.nn.data import LabeledDataset
from repro.noise import corrupt_labels, pair_asymmetric


@pytest.fixture(scope="module")
def world():
    data = generate(toy(num_classes=6, samples_per_class=80), seed=60)
    rng = np.random.default_rng(61)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, 0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool,
                             ShardPlan(num_shards=4, classes_per_shard=3),
                             transition=transition, seed=62).arrivals()
    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=10, iterations=2,
                        steps_per_iteration=3, seed=63)
    return {"inventory": inventory, "arrivals": arrivals, "config": config}


class TestKillAndResume:
    def test_resume_reconstructs_identical_platform(self, world, tmp_path):
        scheduler = CleanPoolGrowth(min_clean_samples=10 ** 9)
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"],
                                      scheduler=scheduler,
                                      retry=NO_WAIT_RETRY)
        processed = world["arrivals"][:3]
        for arrival in processed:
            platform.submit(arrival)
        ckpt = str(tmp_path / "ckpt")
        platform.checkpoint(ckpt)

        # "Kill": throw the object away, rebuild purely from disk + lake.
        resumed = NoisyLabelPlatform.resume(ckpt, world["inventory"],
                                            arrivals=processed,
                                            retry=NO_WAIT_RETRY)

        # Byte-identical catalog state JSON.
        original_json = json.dumps(catalog_state(platform.catalog),
                                   sort_keys=True)
        resumed_json = json.dumps(catalog_state(resumed.catalog),
                                  sort_keys=True)
        assert original_json == resumed_json

        assert platform.quality_report() == resumed.quality_report()
        assert np.array_equal(platform.catalog.clean_inventory_ids,
                              resumed.catalog.clean_inventory_ids)
        assert scheduler_to_state(platform.scheduler) == \
            scheduler_to_state(resumed.scheduler)

        # ENLD internals: P̃, the inventory split and the weights.
        assert np.array_equal(platform.enld.cond_prob,
                              resumed.enld.cond_prob)
        assert np.array_equal(platform.enld.inventory_train.ids,
                              resumed.enld.inventory_train.ids)
        assert np.array_equal(platform.enld.inventory_candidates.ids,
                              resumed.enld.inventory_candidates.ids)
        orig_weights = platform.enld.model.state_dict()
        res_weights = resumed.enld.model.state_dict()
        assert orig_weights.keys() == res_weights.keys()
        for key in orig_weights:
            assert np.array_equal(orig_weights[key], res_weights[key])

    def test_resumed_platform_continues_identically(self, world, tmp_path):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"],
                                      retry=NO_WAIT_RETRY)
        for arrival in world["arrivals"][:2]:
            platform.submit(arrival)
        ckpt = str(tmp_path / "ckpt")
        platform.checkpoint(ckpt)
        resumed = NoisyLabelPlatform.resume(ckpt, world["inventory"],
                                            arrivals=world["arrivals"][:2],
                                            retry=NO_WAIT_RETRY)

        # RNG state, weights and P̃ all restored bit-for-bit, so the
        # next submission must produce the exact same verdicts.
        nxt = world["arrivals"][2]
        a = platform.submit(nxt)
        b = resumed.submit(nxt)
        assert np.array_equal(a.record.clean_ids, b.record.clean_ids)
        assert np.array_equal(a.record.noisy_ids, b.record.noisy_ids)
        assert np.array_equal(a.result.inventory_clean_positions,
                              b.result.inventory_clean_positions)

    def test_resume_rejects_foreign_inventory(self, world, tmp_path):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"],
                                      retry=NO_WAIT_RETRY)
        ckpt = str(tmp_path / "ckpt")
        platform.checkpoint(ckpt)
        other = LabeledDataset(np.zeros((4, world["inventory"].feature_dim)),
                               np.zeros(4, dtype=int),
                               ids=np.array([10 ** 9 + i for i in range(4)]),
                               name="wrong-lake")
        with pytest.raises(ValueError, match="not.*present|not present"):
            NoisyLabelPlatform.resume(ckpt, other)

    def test_checkpoint_writes_are_atomic(self, world, tmp_path):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"],
                                      retry=NO_WAIT_RETRY)
        ckpt = str(tmp_path / "ckpt")
        platform.checkpoint(ckpt)
        platform.checkpoint(ckpt)  # overwrite must go through os.replace
        leftovers = [f for f in os.listdir(ckpt) if ".tmp" in f]
        assert leftovers == []
        assert sorted(os.listdir(ckpt)) == ["model.npz", "platform.json"]


class TestJournal:
    def test_journal_records_every_submission(self, world, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"],
                                      retry=NO_WAIT_RETRY,
                                      journal_path=journal)
        platform.submit(world["arrivals"][0])
        bad = LabeledDataset(
            np.full((2, world["inventory"].feature_dim), np.nan),
            np.zeros(2, dtype=int), name="bad")
        platform.submit(bad)
        entries = read_journal(journal)
        assert [e["status"] for e in entries] == ["ok", "quarantined"]
        assert entries[0]["dataset"] == world["arrivals"][0].name
        assert entries[0]["clean"] + entries[0]["noisy"] \
            == len(world["arrivals"][0])
        assert entries[1]["failures"][0]["stage"] == "admission"

    def test_torn_final_line_tolerated(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        with open(journal, "w") as fh:
            fh.write(json.dumps({"dataset": "a", "status": "ok"}) + "\n")
            fh.write('{"dataset": "b", "stat')  # killed mid-append
        entries = read_journal(journal)
        assert len(entries) == 1 and entries[0]["dataset"] == "a"

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_journal(str(tmp_path / "nope.jsonl")) == []

    def test_journal_entries_carry_model_version(self, world, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"],
                                      retry=NO_WAIT_RETRY,
                                      journal_path=journal)
        platform.submit(world["arrivals"][0])
        entries = read_journal(journal)
        assert entries[0]["model_version"] \
            == platform.catalog.active_version_id

    def test_torn_line_plus_missing_model_version_tolerated(self,
                                                            tmp_path):
        # Regression: a journal written by a pre-versioning build (no
        # model_version field) with a torn final append must still read
        # back its intact prefix, and readers must treat the missing
        # field as None rather than raising.
        journal = str(tmp_path / "journal.jsonl")
        with open(journal, "w") as fh:
            fh.write(json.dumps({"dataset": "old", "status": "ok"}) + "\n")
            fh.write(json.dumps({"dataset": "new", "status": "ok",
                                 "model_version": "abcd"}) + "\n")
            fh.write('{"dataset": "torn", "model_ver')  # killed mid-append
        entries = read_journal(journal)
        assert [e["dataset"] for e in entries] == ["old", "new"]
        assert entries[0].get("model_version") is None
        assert entries[1]["model_version"] == "abcd"


class TestSchedulerState:
    @pytest.mark.parametrize("scheduler", [
        EveryNArrivals(3),
        CleanPoolGrowth(min_clean_samples=5),
        DetectionDegradation(window=4, tolerance=0.2),
        AnyOf([EveryNArrivals(2), CleanPoolGrowth(min_clean_samples=9)]),
    ])
    def test_roundtrip(self, scheduler):
        record = scheduler_to_state(scheduler)
        rebuilt = scheduler_from_state(json.loads(json.dumps(record)))
        assert scheduler_to_state(rebuilt) == record

    def test_stateful_roundtrip(self):
        from repro.core.detector import DetectionResult

        scheduler = EveryNArrivals(5)
        result = DetectionResult(
            clean_mask=np.ones(3, dtype=bool),
            noisy_mask=np.zeros(3, dtype=bool),
            inventory_clean_positions=np.empty(0, dtype=int),
            pseudo_labels=None)
        scheduler.observe(result)
        scheduler.observe(result)
        rebuilt = scheduler_from_state(scheduler_to_state(scheduler))
        for _ in range(3):
            rebuilt.observe(result)
        assert rebuilt.should_update()

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            scheduler_from_state({"type": "Cron", "params": {},
                                  "state": {}})


class TestMidTrainResume:
    """A checkpoint taken while a worker trains re-enqueues the job."""

    def test_resume_reenqueues_and_converges_byte_identically(
            self, world, tmp_path):
        updater = UpdaterConfig(
            mode="thread",
            retry=RetryPolicy(max_retries=1, backoff_base=0.0,
                              sleep=lambda _s: None))
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"],
                                      retry=NO_WAIT_RETRY, updater=updater)
        for arrival in world["arrivals"][:2]:
            platform.submit(arrival)
        service = platform.update_service
        gate = threading.Event()
        original = service._train_job

        def blocked(job, model, i_t, i_c):
            assert gate.wait(timeout=60)
            return original(job, model, i_t, i_c)

        service._train_job = blocked
        try:
            assert service.request_update(reason="scheduled")
            live_job = service.pending_job
            ckpt = str(tmp_path / "ckpt")
            platform.checkpoint(ckpt)  # mid-train "kill" point

            resumed = NoisyLabelPlatform.resume(
                ckpt, world["inventory"], arrivals=world["arrivals"][:2],
                retry=NO_WAIT_RETRY, updater=updater)
            # The job spec round-trips; status is identical live and
            # resumed (both just say "pending" — durable state only).
            assert resumed.update_service.pending_job is not None
            assert resumed.update_service.pending_job.to_dict() \
                == live_job.to_dict()
            assert resumed.quality_report() == platform.quality_report()

            # The resumed service retrains from the job spec with the
            # derived seed: both sides land the identical version.
            assert resumed.update_service.wait(timeout=120)
        finally:
            gate.set()
        assert service.wait(timeout=120)
        assert [v.version_id for v in platform.catalog.versions] \
            == [v.version_id for v in resumed.catalog.versions]
        assert len(platform.catalog.versions) == 2


class TestTransactionalCatalogRestore:
    def make_state_catalog(self):
        y = np.repeat(np.arange(3), 10)
        inventory = LabeledDataset(np.zeros((30, 2)), y, name="inv")
        catalog = DataLakeCatalog(inventory)
        for name in ("a0", "a1"):
            catalog.register_arrival(
                inventory.subset(np.arange(10), name=name))
            catalog.record_detection(DetectionRecord(
                name, clean_ids=np.arange(7), noisy_ids=np.arange(7, 10)))
        catalog.add_clean_inventory_ids(np.array([2, 5]))
        return catalog

    def test_strict_failure_leaves_catalog_untouched(self, tmp_path):
        catalog = self.make_state_catalog()
        path = str(tmp_path / "catalog.json")
        save_catalog(catalog, path)

        fresh = DataLakeCatalog(catalog.inventory)
        # Only a0 registered: strict restore must fail on a1 and leave
        # the catalog exactly as it was — no partial mutation.
        fresh.register_arrival(catalog.get_arrival("a0"))
        with pytest.raises(KeyError, match="a1"):
            load_catalog_state(fresh, path, strict=True)
        assert fresh.processed_names == []
        assert len(fresh.clean_inventory_ids) == 0

    def test_lenient_restores_known_subset(self, tmp_path):
        catalog = self.make_state_catalog()
        path = str(tmp_path / "catalog.json")
        save_catalog(catalog, path)
        fresh = DataLakeCatalog(catalog.inventory)
        fresh.register_arrival(catalog.get_arrival("a0"))
        assert load_catalog_state(fresh, path, strict=False) == 1
        assert fresh.processed_names == ["a0"]

    def test_save_catalog_is_atomic(self, tmp_path):
        catalog = self.make_state_catalog()
        path = str(tmp_path / "catalog.json")
        save_catalog(catalog, path)
        save_catalog(catalog, path)
        assert sorted(os.listdir(tmp_path)) == ["catalog.json"]

    def test_version_1_files_still_load(self, tmp_path):
        # Pre-quarantine files (version 1) must remain readable.
        path = str(tmp_path / "v1.json")
        with open(path, "w") as fh:
            json.dump({"version": 1,
                       "records": [],
                       "clean_inventory_ids": [3, 4]}, fh)
        catalog = DataLakeCatalog(
            LabeledDataset(np.zeros((1, 1)), np.zeros(1, dtype=int)))
        assert load_catalog_state(catalog, path) == 0
        assert np.array_equal(catalog.clean_inventory_ids, [3, 4])
