"""Tests for repro.eval (metrics, timer, runner, reporting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.detector import DetectionResult, IterationSnapshot
from repro.eval.metrics import (score_masks, score_trace,
                                true_noise_mask)
from repro.eval.reporting import (format_table, method_comparison_table,
                                  series_table, speedup_line)
from repro.eval.runner import MethodReport, ShardOutcome, run_detector
from repro.eval.timer import CostProfile
from repro.obs.clock import Stopwatch
from repro.noise import MISSING_LABEL
from repro.nn.data import LabeledDataset

bool_masks = hnp.arrays(dtype=bool, shape=st.integers(1, 50))


def make_result(noisy_mask, clean_mask=None, trace=None):
    noisy_mask = np.asarray(noisy_mask, dtype=bool)
    clean = (~noisy_mask if clean_mask is None
             else np.asarray(clean_mask, dtype=bool))
    return DetectionResult(
        clean_mask=clean, noisy_mask=noisy_mask,
        inventory_clean_positions=np.empty(0, dtype=int),
        pseudo_labels=np.full(len(noisy_mask), -1),
        trace=trace or [])


class TestScoreMasks:
    def test_perfect_detection(self):
        truth = np.array([True, False, True])
        s = score_masks(truth, truth)
        assert s.precision == s.recall == s.f1 == 1.0

    def test_paper_formulas(self):
        detected = np.array([True, True, False, False])
        truth = np.array([True, False, True, False])
        s = score_masks(detected, truth)
        assert s.precision == 0.5   # 1 hit of 2 detected
        assert s.recall == 0.5      # 1 hit of 2 true
        assert s.f1 == 0.5

    def test_zero_detected(self):
        s = score_masks(np.zeros(3, dtype=bool),
                        np.array([True, False, False]))
        assert s.precision == 0.0 and s.recall == 0.0 and s.f1 == 0.0

    def test_zero_true_noise(self):
        s = score_masks(np.array([True]), np.array([False]))
        assert s.recall == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            score_masks(np.zeros(2, dtype=bool), np.zeros(3, dtype=bool))

    def test_as_dict(self):
        s = score_masks(np.array([True]), np.array([True]))
        d = s.as_dict()
        assert d["f1"] == 1.0 and d["total"] == 1

    @given(bool_masks)
    @settings(max_examples=40, deadline=None)
    def test_f1_is_harmonic_mean_bound(self, mask):
        s = score_masks(mask, mask.copy())
        assert 0.0 <= s.f1 <= 1.0
        # Self-comparison is always perfect when anything is detected.
        if mask.any():
            assert s.f1 == 1.0

    @given(bool_masks, st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_f1_between_min_and_max_of_pr(self, truth, rnd):
        detected = truth.copy()
        if len(detected) > 1:
            flip = rnd.randrange(len(detected))
            detected[flip] = not detected[flip]
        s = score_masks(detected, truth)
        if s.precision + s.recall > 0:
            assert min(s.precision, s.recall) - 1e-12 <= s.f1 \
                <= max(s.precision, s.recall) + 1e-12


class TestTrueNoiseMask:
    def test_requires_truth(self):
        ds = LabeledDataset(np.zeros((2, 1)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            true_noise_mask(ds)

    def test_missing_excluded(self):
        ds = LabeledDataset(np.zeros((3, 1)),
                            np.array([MISSING_LABEL, 1, 0]),
                            true_y=np.array([0, 0, 0]))
        assert np.array_equal(true_noise_mask(ds), [False, True, False])


class TestScoreTrace:
    def test_per_iteration_scores(self):
        ds = LabeledDataset(np.zeros((4, 1)), np.array([0, 1, 1, 0]),
                            true_y=np.array([0, 1, 0, 1]))
        snaps = [
            IterationSnapshot(0, np.array([False] * 4), 4, 0, 0),
            IterationSnapshot(1, np.array([True, True, False, False]),
                              2, 0, 0),
        ]
        result = make_result(np.zeros(4, dtype=bool), trace=snaps)
        scores = score_trace(result, ds)
        assert len(scores) == 2
        # Iteration 0: everything flagged noisy → recall 1.
        assert scores[0].recall == 1.0
        # Iteration 1: exactly the two true-noisy rows remain flagged.
        assert scores[1].precision == 1.0 and scores[1].recall == 1.0


class TestCostProfile:
    def test_aggregation(self):
        c = CostProfile(method="m", setup_seconds=2.0)
        c.add_request(1.0, 100)
        c.add_request(3.0, 300)
        assert c.mean_process_seconds == 2.0
        assert c.total_seconds == 6.0
        assert c.mean_process_train_samples == 200

    def test_speedups(self):
        fast = CostProfile(method="fast")
        slow = CostProfile(method="slow")
        fast.add_request(1.0, 10)
        slow.add_request(4.0, 50)
        assert fast.speedup_over(slow) == 4.0
        assert fast.work_speedup_over(slow) == 5.0

    def test_zero_time_speedup_inf(self):
        a, b = CostProfile("a"), CostProfile("b")
        b.add_request(1.0, 1)
        assert a.speedup_over(b) == float("inf")

    def test_stopwatch(self):
        with Stopwatch() as sw:
            sum(range(1000))
        assert sw.seconds >= 0

    def test_timer_facade_still_reexports_stopwatch(self):
        # External ``from repro.eval.timer import Stopwatch`` callers
        # must keep working; inside the library REP602 bans the shim.
        from repro.eval import timer
        assert timer.Stopwatch is Stopwatch
        assert "Stopwatch" in timer.__all__


class TestRunner:
    def test_run_detector_aggregates(self, trained_blob_model, blobs, rng):
        from repro.baselines import DefaultDetector
        from repro.noise import corrupt_labels, pair_asymmetric
        noisy = corrupt_labels(blobs, pair_asymmetric(3, 0.3), rng)
        report = run_detector(DefaultDetector(trained_blob_model),
                              [noisy, noisy], "default",
                              setup_seconds=1.5)
        assert len(report.outcomes) == 2
        assert report.cost.setup_seconds == 1.5
        assert 0 <= report.mean_f1 <= 1
        summary = report.summary()
        assert summary["method"] == "default"
        assert summary["shards"] == 2

    def test_empty_report_zeroes(self):
        report = MethodReport(method="x")
        assert report.mean_f1 == 0.0
        assert report.std_f1 == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1.23456, "x"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.2346" in out
        assert "---" in lines[2]

    def test_series_table(self):
        out = series_table("k", [1, 2], {"f1": [0.5, 0.6]})
        assert "k" in out and "f1" in out and "0.6000" in out

    def test_method_comparison_table_sorted_by_f1(self):
        a = MethodReport(method="weak")
        b = MethodReport(method="strong")
        score_w = score_masks(np.array([True, False]),
                              np.array([False, True]))
        score_s = score_masks(np.array([True]), np.array([True]))
        a.add(ShardOutcome("s", score_w, 0.1, 0, make_result([True, False])))
        b.add(ShardOutcome("s", score_s, 0.1, 0, make_result([True])))
        table = method_comparison_table({"weak": a, "strong": b})
        strong_line = [l for l in table.splitlines() if "strong" in l][0]
        weak_line = [l for l in table.splitlines() if "weak" in l][0]
        assert table.index(strong_line) < table.index(weak_line)

    def test_speedup_line(self):
        fast, slow = MethodReport("enld"), MethodReport("topo")
        fast.cost.add_request(1.0, 1)
        slow.cost.add_request(3.0, 1)
        line = speedup_line(fast, slow)
        assert "3.00x" in line and "enld" in line
