"""Content-keyed feature cache and the fused ``predict_view`` path."""

import numpy as np
import pytest

from repro.nn.featurecache import FeatureCache, array_digest, weights_digest
from repro.nn.models import build_model
from repro.nn.serialize import clone_module


@pytest.fixture()
def model():
    return build_model("mlp", 12, 3, rng=np.random.default_rng(0),
                       hidden=16)


def _x(n=20, d=12, seed=1):
    return np.random.default_rng(seed).normal(size=(n, d))


class TestDigests:
    def test_array_digest_deterministic(self):
        x = _x()
        assert array_digest(x) == array_digest(x.copy())

    def test_array_digest_sees_content_shape_dtype(self):
        x = _x()
        assert array_digest(x) != array_digest(x + 1e-12)
        assert array_digest(x) != array_digest(x.reshape(-1))
        flat = np.zeros(4, dtype=np.float64)
        assert array_digest(flat) != array_digest(
            flat.astype(np.float32))

    def test_subset_has_its_own_digest(self):
        # The cache must never treat a subset as rows of the full set:
        # a subset forward is not bit-identical to sliced full-set
        # output (BLAS gemm blocking varies with the row count).
        x = _x()
        assert array_digest(x[:5]) != array_digest(x)

    def test_weights_digest_clone_shares(self, model):
        assert weights_digest(model) == weights_digest(
            clone_module(model))

    def test_weights_digest_changes_on_mutation(self, model):
        before = weights_digest(model)
        params = model.parameters()
        params[0].data += 0.5
        assert weights_digest(model) != before


class TestPredictView:
    def test_fused_matches_two_pass(self, model):
        x = _x(50)
        probs, features = model.predict_view(x)
        assert np.array_equal(probs, model.predict_proba(x))
        assert np.array_equal(features, model.features(x))

    def test_empty_input(self, model):
        probs, features = model.predict_view(_x(0))
        assert probs.shape[0] == 0 and features.shape[0] == 0

    def test_restores_train_mode(self, model):
        model.train()
        model.predict_view(_x())
        assert model.training


class TestFeatureCache:
    def test_hit_returns_same_arrays(self, model):
        cache = FeatureCache()
        x = _x()
        first = cache.view(model, x)
        second = cache.view(model, x.copy())
        assert first[0] is second[0] and first[1] is second[1]
        assert cache.stats() == {"hits": 1, "misses": 1,
                                 "evictions": 0, "entries": 1}

    def test_miss_is_bit_identical_to_uncached(self, model):
        x = _x()
        probs, features = FeatureCache().view(model, x)
        ref_probs, ref_features = model.predict_view(x)
        assert np.array_equal(probs, ref_probs)
        assert np.array_equal(features, ref_features)

    def test_clone_hits_original_entry(self, model):
        cache = FeatureCache()
        x = _x()
        cache.view(model, x)
        cache.view(clone_module(model), x)
        assert cache.hits == 1

    def test_weight_change_misses(self, model):
        cache = FeatureCache()
        x = _x()
        cache.view(model, x)
        model.parameters()[0].data += 0.1
        cache.view(model, x)
        assert cache.misses == 2

    def test_results_are_read_only(self, model):
        probs, features = FeatureCache().view(model, _x())
        with pytest.raises(ValueError):
            probs[0, 0] = 1.0
        with pytest.raises(ValueError):
            features[0, 0] = 1.0

    def test_lru_eviction(self, model):
        cache = FeatureCache(max_entries=2)
        a, b, c = _x(seed=1), _x(seed=2), _x(seed=3)
        cache.view(model, a)
        cache.view(model, b)
        cache.view(model, a)   # refresh a
        cache.view(model, c)   # evicts b
        assert cache.evictions == 1
        cache.view(model, a)
        assert cache.hits == 2
        cache.view(model, b)
        assert cache.misses == 4

    def test_zero_entries_disables_storage(self, model):
        cache = FeatureCache(max_entries=0)
        x = _x()
        cache.view(model, x)
        cache.view(model, x)
        assert cache.hits == 0 and cache.misses == 2 and len(cache) == 0

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            FeatureCache(max_entries=-1)

    def test_invalidate(self, model):
        cache = FeatureCache()
        x = _x()
        cache.view(model, x)
        cache.invalidate()
        assert len(cache) == 0
        cache.view(model, x)
        assert cache.misses == 2
