"""Tests for repro.baselines.loss_tracking (O2U & small-loss)."""

import numpy as np
import pytest

from repro.baselines.loss_tracking import (O2UDetector, SmallLossDetector,
                                           per_sample_losses)
from repro.eval.metrics import score_detection
from repro.noise import MISSING_LABEL, corrupt_labels, pair_asymmetric
from repro.nn.data import LabeledDataset


@pytest.fixture(scope="module")
def world():
    gen = np.random.default_rng(17)
    x = np.concatenate([gen.normal((i - 1) * 4.0, 1.0, size=(100, 5))
                        for i in range(3)])
    y = np.repeat(np.arange(3), 100)
    order = gen.permutation(len(y))
    full = LabeledDataset(x[order], y[order], true_y=y[order].copy())
    inventory = corrupt_labels(full.subset(np.arange(200), name="inv"),
                               pair_asymmetric(3, 0.2), gen)
    incoming = corrupt_labels(full.subset(np.arange(200, 300), name="D"),
                              pair_asymmetric(3, 0.3), gen)
    return {"inventory": inventory, "incoming": incoming}


def make_o2u(world, **kw):
    kw.setdefault("model_name", "mlp")
    kw.setdefault("model_kwargs", {"hidden": 32})
    kw.setdefault("warmup_epochs", 4)
    kw.setdefault("cycle_epochs", 3)
    kw.setdefault("cycles", 2)
    kw.setdefault("seed", 1)
    return O2UDetector(world["inventory"], 3, **kw)


class TestPerSampleLosses:
    def test_matches_manual(self, trained_blob_model, blobs):
        losses = per_sample_losses(trained_blob_model, blobs)
        assert losses.shape == (len(blobs),)
        assert (losses >= 0).all()
        # Mislabelled copies must have higher loss than originals.
        wrong = blobs.with_labels((blobs.y + 1) % 3)
        wrong_losses = per_sample_losses(trained_blob_model, wrong)
        assert wrong_losses.mean() > losses.mean()


class TestO2U:
    def test_detects_planted_noise(self, world):
        det = make_o2u(world)
        result = det.detect(world["incoming"])
        score = score_detection(result, world["incoming"])
        assert score.f1 > 0.5

    def test_flags_estimated_fraction(self, world):
        det = make_o2u(world, noise_rate_estimate=0.25)
        result = det.detect(world["incoming"])
        assert result.num_noisy == round(0.25 * len(world["incoming"]))

    def test_work_accounting(self, world):
        det = make_o2u(world)
        result = det.detect(world["incoming"])
        pool_size = 300  # 200 related inventory + 100 arriving
        total_epochs = 4 + 2 * 3
        assert result.train_samples == total_epochs * pool_size

    def test_missing_labels_excluded(self, world):
        d = world["incoming"]
        y = d.y.copy()
        y[:10] = MISSING_LABEL
        det = make_o2u(world)
        result = det.detect(LabeledDataset(d.x, y, true_y=d.true_y))
        assert not result.noisy_mask[:10].any()

    def test_validation(self, world):
        with pytest.raises(ValueError):
            O2UDetector(world["inventory"], 3, cycle_epochs=0)
        with pytest.raises(ValueError):
            O2UDetector(world["inventory"], 3, cycles=0)


class TestSmallLoss:
    def test_detects_planted_noise(self, world):
        det = SmallLossDetector(world["inventory"], 3, model_name="mlp",
                                model_kwargs={"hidden": 32},
                                train_epochs=8, seed=1)
        result = det.detect(world["incoming"])
        score = score_detection(result, world["incoming"])
        assert score.f1 > 0.5

    def test_explicit_noise_rate(self, world):
        det = SmallLossDetector(world["inventory"], 3, model_name="mlp",
                                model_kwargs={"hidden": 32},
                                train_epochs=4,
                                noise_rate_estimate=0.1, seed=1)
        result = det.detect(world["incoming"])
        assert result.num_noisy == round(0.1 * len(world["incoming"]))

    def test_validation(self, world):
        with pytest.raises(ValueError):
            SmallLossDetector(world["inventory"], 3, train_epochs=0)

    def test_names(self, world):
        assert SmallLossDetector(world["inventory"], 3).name == "small_loss"
        assert O2UDetector(world["inventory"], 3).name == "o2u"
