"""Tests for repro.index.balltree and backend interchangeability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.index.balltree import BallTree
from repro.index.classindex import BACKENDS, ClassFeatureIndex
from repro.index.kdtree import KDTree, brute_force_knn

point_clouds = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 60), st.integers(1, 8)),
    elements=st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False))


class TestBallTreeBasics:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            BallTree(np.zeros(5))

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            BallTree(np.zeros((3, 2)), leaf_size=0)

    def test_empty_tree(self):
        d, i = BallTree(np.zeros((0, 3))).query(np.zeros(3), k=2)
        assert d.size == 0 and i.size == 0

    def test_len(self):
        assert len(BallTree(np.zeros((7, 2)))) == 7

    def test_k_larger_than_n(self):
        pts = np.arange(6.0).reshape(3, 2)
        _, i = BallTree(pts).query(np.zeros(2), k=10)
        assert len(i) == 3

    def test_invalid_k_and_dim(self):
        tree = BallTree(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            tree.query(np.zeros(2), k=0)
        with pytest.raises(ValueError):
            tree.query(np.zeros(3))

    def test_exact_match_first(self):
        pts = np.random.default_rng(0).normal(size=(60, 5))
        d, i = BallTree(pts).query(pts[33], k=1)
        assert i[0] == 33 and np.isclose(d[0], 0.0)

    def test_duplicates(self):
        pts = np.zeros((12, 3))
        d, i = BallTree(pts).query(np.zeros(3), k=4)
        assert len(i) == 4 and np.allclose(d, 0.0)

    def test_sorted_output(self):
        pts = np.random.default_rng(1).normal(size=(100, 4))
        d, _ = BallTree(pts).query(np.zeros(4), k=9)
        assert np.all(np.diff(d) >= -1e-12)


class TestBallTreeCorrectness:
    @given(point_clouds, st.integers(1, 7))
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, pts, k):
        tree = BallTree(pts, leaf_size=4)
        q = pts.mean(axis=0) + 0.3
        d_tree, _ = tree.query(q, k=k)
        d_bf, _ = brute_force_knn(pts, q, k)
        assert np.allclose(np.sort(d_tree), np.sort(d_bf), atol=1e-9)

    def test_matches_kdtree_high_dim(self):
        """In the 64-dim regime ENLD actually uses."""
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(400, 64))
        ball = BallTree(pts)
        kd = KDTree(pts)
        for _ in range(10):
            q = rng.normal(size=64)
            d_b, _ = ball.query(q, k=5)
            d_k, _ = kd.query(q, k=5)
            assert np.allclose(d_b, d_k)

    def test_query_batch(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(50, 3))
        queries = rng.normal(size=(8, 3))
        dists, idx = BallTree(pts).query_batch(queries, k=3)
        assert dists.shape == (8, 3)
        for row, q in enumerate(queries):
            d_b, _ = brute_force_knn(pts, q, 3)
            assert np.allclose(dists[row], d_b)

    def test_query_batch_rejects_1d(self):
        with pytest.raises(ValueError):
            BallTree(np.zeros((4, 2))).query_batch(np.zeros(2))


class TestBackendInterchangeability:
    def test_backends_listed(self):
        assert set(BACKENDS) == {"kdtree", "balltree", "brute"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ClassFeatureIndex(np.zeros((2, 2)), np.zeros(2, dtype=int),
                              backend="octree")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_agree(self, backend):
        rng = np.random.default_rng(4)
        features = rng.normal(size=(60, 16))
        labels = np.repeat(np.arange(3), 20)
        index = ClassFeatureIndex(features, labels, backend=backend)
        reference = ClassFeatureIndex(features, labels, backend="brute")
        q = rng.normal(size=16)
        for cls in range(3):
            d1, _ = index.query(q, cls, k=4)
            d2, _ = reference.query(q, cls, k=4)
            assert np.allclose(d1, d2), (backend, cls)

    def test_legacy_use_kdtree_flag(self):
        index = ClassFeatureIndex(np.zeros((2, 2)),
                                  np.zeros(2, dtype=int),
                                  use_kdtree=False)
        assert index.backend == "brute"
