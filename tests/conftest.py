"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate, toy
from repro.nn.data import LabeledDataset
from repro.nn.models import MLPClassifier
from repro.nn.train import fit


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def blobs():
    """Three well-separated Gaussian blobs in 5-D, 60 samples each."""
    gen = np.random.default_rng(0)
    x = np.concatenate([gen.normal((i - 1) * 4.0, 1.0, size=(60, 5))
                        for i in range(3)])
    y = np.repeat(np.arange(3), 60)
    return LabeledDataset(x, y, true_y=y.copy(), name="blobs")


@pytest.fixture
def toy_dataset():
    """The standard toy synthetic dataset (6 classes, 40/class)."""
    return generate(toy(), seed=11)


@pytest.fixture
def trained_blob_model(blobs):
    """A small MLP trained to high accuracy on the blob data."""
    gen = np.random.default_rng(1)
    model = MLPClassifier(5, 3, hidden=32, rng=gen)
    fit(model, blobs, epochs=12, rng=gen, lr=0.05)
    return model
