"""Tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import Tensor, concatenate, no_grad_array, stack


def finite_diff(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        f1 = fn(x)
        x[i] = old - eps
        f2 = fn(x)
        x[i] = old
        grad[i] = (f1 - f2) / (2 * eps)
        it.iternext()
    return grad


small_arrays = hnp.arrays(
    dtype=np.float64, shape=hnp.array_shapes(min_dims=1, max_dims=2,
                                             min_side=1, max_side=4),
    elements=st.floats(-3.0, 3.0, allow_nan=False))


class TestBasics:
    def test_construction_converts_dtype(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64
        assert t.shape == (3,)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item_and_len(self):
        assert Tensor([[2.5]]).item() == 2.5
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        c = (b * 3).sum()
        assert not c.requires_grad

    def test_backward_requires_scalar_without_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (a * 2).backward()

    def test_numpy_returns_underlying(self):
        arr = np.array([1.0, 2.0])
        assert Tensor(arr).numpy() is arr

    def test_no_grad_array_accepts_both(self):
        arr = np.array([1.0])
        assert no_grad_array(Tensor(arr)) is arr
        assert np.array_equal(no_grad_array([1.0]), arr)


class TestArithmeticGradients:
    def check(self, op, *shapes, tol=1e-5):
        rng = np.random.default_rng(0)
        arrays = [rng.normal(size=s) + 2.5 for s in shapes]  # keep positive
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        out = op(*tensors).sum()
        out.backward()
        for i, (t, a) in enumerate(zip(tensors, arrays)):
            def f(x, i=i):
                vals = [Tensor(arr) for arr in arrays]
                vals[i] = Tensor(x)
                return op(*vals).sum().item()
            expected = finite_diff(f, a.copy())
            assert np.allclose(t.grad, expected, atol=tol), f"operand {i}"

    def test_add(self):
        self.check(lambda a, b: a + b, (3, 2), (3, 2))

    def test_add_broadcast(self):
        self.check(lambda a, b: a + b, (3, 2), (2,))

    def test_sub(self):
        self.check(lambda a, b: a - b, (4,), (4,))

    def test_rsub_scalar(self):
        self.check(lambda a: 5.0 - a, (3,))

    def test_mul(self):
        self.check(lambda a, b: a * b, (2, 3), (2, 3))

    def test_mul_broadcast_scalar_tensor(self):
        self.check(lambda a, b: a * b, (2, 3), (1,))

    def test_div(self):
        self.check(lambda a, b: a / b, (3,), (3,))

    def test_rdiv_scalar(self):
        self.check(lambda a: 2.0 / a, (3,))

    def test_pow(self):
        self.check(lambda a: a ** 3, (4,))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_neg(self):
        self.check(lambda a: -a, (3,))

    def test_matmul(self):
        self.check(lambda a, b: a @ b, (3, 4), (4, 2))

    def test_chained_expression(self):
        self.check(lambda a, b: (a * b + a) / (b + 10.0), (3,), (3,))


class TestNonlinearityGradients:
    def check(self, op, shape=(3, 2), shift=0.0, tol=1e-5):
        rng = np.random.default_rng(1)
        a = rng.normal(size=shape) + shift
        t = Tensor(a.copy(), requires_grad=True)
        op(t).sum().backward()
        expected = finite_diff(lambda x: op(Tensor(x)).sum().item(), a.copy())
        assert np.allclose(t.grad, expected, atol=tol)

    def test_relu(self):
        # Shift away from 0 to avoid the kink in finite differences.
        self.check(lambda t: t.relu(), shift=0.5)

    def test_exp(self):
        self.check(lambda t: t.exp())

    def test_log(self):
        self.check(lambda t: t.log(), shift=3.0)

    def test_tanh(self):
        self.check(lambda t: t.tanh())

    def test_sigmoid(self):
        self.check(lambda t: t.sigmoid())

    def test_sqrt(self):
        self.check(lambda t: t.sqrt(), shift=4.0)

    def test_abs(self):
        self.check(lambda t: t.abs(), shift=2.0)

    def test_relu_zeroes_negatives(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        assert np.array_equal(out.data, [0.0, 0.0, 2.0])


class TestReductions:
    def test_sum_axis_grad(self):
        a = np.arange(6.0).reshape(2, 3)
        t = Tensor(a, requires_grad=True)
        t.sum(axis=0).sum().backward()
        assert np.array_equal(t.grad, np.ones((2, 3)))

    def test_sum_keepdims_shape(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_value_and_grad(self):
        t = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        m = t.mean()
        m.backward()
        assert m.item() == 3.0
        assert np.allclose(t.grad, [0.5, 0.5])

    def test_mean_tuple_axis(self):
        t = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = t.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        assert np.allclose(t.grad, 1.0 / 12)

    def test_max_grad_splits_ties(self):
        t = Tensor(np.array([1.0, 3.0, 3.0]), requires_grad=True)
        t.max().backward()
        assert np.allclose(t.grad, [0.0, 0.5, 0.5])

    def test_max_axis(self):
        a = np.array([[1.0, 5.0], [7.0, 2.0]])
        t = Tensor(a, requires_grad=True)
        out = t.max(axis=1)
        assert np.array_equal(out.data, [5.0, 7.0])
        out.sum().backward()
        assert np.array_equal(t.grad, [[0, 1], [1, 0]])

    def test_var_matches_numpy(self):
        a = np.random.default_rng(3).normal(size=(4, 5))
        assert np.allclose(Tensor(a).var(axis=0).data, a.var(axis=0))


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        t.reshape(2, 3).sum().backward()
        assert t.grad.shape == (6,)

    def test_reshape_accepts_tuple(self):
        assert Tensor(np.zeros(6)).reshape((2, 3)).shape == (2, 3)

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)
        assert t.T.shape == (4, 3, 2)

    def test_transpose_grad(self):
        a = np.random.default_rng(0).normal(size=(2, 3))
        t = Tensor(a, requires_grad=True)
        (t.T * Tensor(np.ones((3, 2)))).sum().backward()
        assert t.grad.shape == (2, 3)

    def test_getitem_grad_accumulates_repeats(self):
        t = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        idx = np.array([0, 0, 2])
        t[idx].sum().backward()
        assert np.array_equal(t.grad, [2.0, 0.0, 1.0])

    def test_getitem_slice(self):
        t = Tensor(np.arange(5.0), requires_grad=True)
        t[1:3].sum().backward()
        assert np.array_equal(t.grad, [0, 1, 1, 0, 0])

    def test_pad2d_shape_and_grad(self):
        t = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        p = t.pad2d(1)
        assert p.shape == (1, 1, 4, 4)
        p.sum().backward()
        assert np.array_equal(t.grad, np.ones((1, 1, 2, 2)))

    def test_pad2d_zero_is_identity(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        assert t.pad2d(0) is t


class TestGraphStructure:
    def test_diamond_graph_single_closure_run(self):
        """Residual-style reuse must not double-count or blow up."""
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3
        c = b + b  # diamond: b consumed twice
        c.sum().backward()
        assert np.allclose(a.grad, [6.0])

    def test_deep_chain_does_not_recurse(self):
        t = Tensor(np.ones(4), requires_grad=True)
        out = t
        for _ in range(2000):
            out = out + 1.0
        out.sum().backward()
        assert np.allclose(t.grad, np.ones(4))

    def test_grad_accumulates_across_backwards(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        assert np.allclose(a.grad, [4.0])

    def test_zero_grad_resets(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_no_grad_for_untracked(self):
        a = Tensor(np.array([1.0]))
        b = Tensor(np.array([1.0]), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad is None
        assert b.grad is not None


class TestConcatStack:
    def test_concatenate_values_and_grads(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((3, 2), 2.0), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_concatenate_axis1(self):
        a = Tensor(np.ones((2, 1)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        out.sum().backward()
        assert a.grad.shape == (2, 1)
        assert b.grad.shape == (2, 3)

    def test_stack_new_axis(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b])
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)


class TestPropertyBased:
    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_sum_grad_is_ones(self, a):
        t = Tensor(a.copy(), requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, np.ones_like(a))

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_mul_by_constant_grad(self, a):
        t = Tensor(a.copy(), requires_grad=True)
        (t * 3.5).sum().backward()
        assert np.allclose(t.grad, 3.5)

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_tanh_bounded(self, a):
        out = Tensor(a).tanh().data
        assert (out >= -1).all() and (out <= 1).all()

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shape(self, n, m):
        a = Tensor(np.zeros((n, 3)))
        b = Tensor(np.zeros((3, m)))
        assert (a @ b).shape == (n, m)
