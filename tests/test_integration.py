"""Cross-module integration tests: the full platform lifecycle.

These run the complete paper pipeline — generate → split → corrupt →
initialise → stream of detections → catalog bookkeeping → model update —
on a small synthetic world and assert the paper's qualitative claims.
"""

import numpy as np
import pytest

from repro import ENLD, ArrivalStream, DataLakeCatalog, ENLDConfig
from repro.baselines import DefaultDetector, TopofilterDetector
from repro.datalake.catalog import DetectionRecord
from repro.datasets import (generate, paper_shard_plan,
                            split_inventory_incremental, toy)
from repro.eval import run_detector, score_detection
from repro.noise import corrupt_labels, pair_asymmetric
from repro.nn.metrics import evaluate_accuracy


@pytest.fixture(scope="module")
def platform():
    data = generate(toy(num_classes=6, samples_per_class=80), seed=21)
    rng = np.random.default_rng(22)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, 0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool, paper_shard_plan("toy"),
                             transition=transition, seed=23).arrivals()
    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=15, iterations=3, seed=24)
    enld = ENLD(config).initialize(inventory)
    return {"inventory": inventory, "pool": pool, "arrivals": arrivals,
            "enld": enld, "config": config}


class TestFullLifecycle:
    def test_catalog_driven_pipeline(self, platform):
        """The documented end-to-end usage: catalog + ENLD + records."""
        catalog = DataLakeCatalog(platform["inventory"])
        enld = platform["enld"]
        for arrival in platform["arrivals"]:
            catalog.register_arrival(arrival)
            result = enld.detect(arrival)
            catalog.record_detection(DetectionRecord(
                dataset_name=arrival.name,
                clean_ids=arrival.ids[result.clean_mask],
                noisy_ids=arrival.ids[result.noisy_mask],
                process_seconds=result.process_seconds))
            catalog.add_clean_inventory_ids(
                enld.inventory_candidates.ids[
                    result.inventory_clean_positions])
        report = catalog.quality_report()
        assert report["datasets_processed"] == len(platform["arrivals"])
        # Roughly 20% noise was injected; the flagged fraction should be
        # in a sane band around it.
        assert 0.05 < report["flagged_fraction"] < 0.5

    def test_enld_outperforms_default(self, platform):
        enld = ENLD(platform["config"]).initialize(platform["inventory"])
        enld_rep = run_detector(enld, platform["arrivals"], "enld")
        default_rep = run_detector(DefaultDetector(enld.model),
                                   platform["arrivals"], "default")
        assert enld_rep.mean_f1 > default_rep.mean_f1

    def test_enld_cheaper_than_topofilter_in_work(self, platform):
        """The paper's efficiency claim in the work model."""
        enld = ENLD(platform["config"]).initialize(platform["inventory"])
        enld_rep = run_detector(enld, platform["arrivals"], "enld")
        topo = TopofilterDetector(platform["inventory"], 6,
                                  model_name="mlp",
                                  model_kwargs={"hidden": 48},
                                  train_epochs=15, seed=1)
        topo_rep = run_detector(topo, platform["arrivals"], "topofilter")
        assert enld_rep.cost.work_speedup_over(topo_rep.cost) > 1.0

    def test_noise_rate_sensitivity(self, platform):
        """Detection stays meaningful across the paper's noise range."""
        data = generate(toy(num_classes=6, samples_per_class=80), seed=31)
        rng = np.random.default_rng(32)
        inventory_clean, pool = split_inventory_incremental(data, rng)
        for eta in (0.1, 0.4):
            transition = pair_asymmetric(6, eta)
            inventory = corrupt_labels(inventory_clean, transition,
                                       np.random.default_rng(33))
            arrivals = ArrivalStream(pool, paper_shard_plan("toy"),
                                     transition=transition,
                                     seed=34).arrivals()[:2]
            enld = ENLD(platform["config"]).initialize(inventory)
            scores = [score_detection(enld.detect(a), a) for a in arrivals]
            assert np.mean([s.f1 for s in scores]) > 0.4, f"eta={eta}"

    def test_model_update_improves_or_holds_accuracy(self, platform):
        """Table II's qualitative claim on the toy world."""
        enld = ENLD(platform["config"]).initialize(platform["inventory"])
        before = evaluate_accuracy(enld.model, platform["pool"],
                                   use_true_labels=True)
        for arrival in platform["arrivals"]:
            enld.detect(arrival)
        enld.update_model()
        after = evaluate_accuracy(enld.model, platform["pool"],
                                  use_true_labels=True)
        # Training on voted-clean data must not collapse the model; the
        # paper reports improvement, we allow a small tolerance band.
        assert after > before - 0.1

    def test_detection_works_after_model_update(self, platform):
        enld = ENLD(platform["config"]).initialize(platform["inventory"])
        for arrival in platform["arrivals"][:2]:
            enld.detect(arrival)
        enld.update_model(epochs=3)
        result = enld.detect(platform["arrivals"][-1])
        score = score_detection(result, platform["arrivals"][-1])
        assert score.f1 > 0.3


class TestCheckpointLifecycle:
    def test_save_and_resume_platform_model(self, platform, tmp_path):
        from repro.nn import load_checkpoint, save_checkpoint
        from repro.nn.models import build_model
        enld = platform["enld"]
        path = str(tmp_path / "general.npz")
        save_checkpoint(enld.model, path)
        fresh = build_model("mlp", platform["inventory"].feature_dim, 6,
                            hidden=48)
        load_checkpoint(fresh, path)
        x = platform["pool"].x[:20]
        assert np.allclose(fresh.predict_logits(x),
                           enld.model.predict_logits(x))
