"""Tests for repro.core.policies (§V-A5 sampling strategies)."""

import numpy as np
import pytest

from repro.core.policies import (ContrastivePolicy, EntropyPolicy,
                                 HighestConfidencePolicy,
                                 LeastConfidencePolicy, PolicySelection,
                                 PseudoLabelPolicy, RandomPolicy,
                                 SamplingRequest, available_policies,
                                 build_policy)
from repro.core.samplesets import ModelView
from repro.index.classindex import ClassFeatureIndex


def make_request(k=2, n_candidates=12, n_ambiguous=3, seed=0):
    rng = np.random.default_rng(seed)
    probs = rng.dirichlet(np.ones(3), size=n_candidates)
    features = rng.normal(size=(n_candidates, 4))
    labels = rng.integers(0, 3, size=n_candidates)
    view = ModelView(probs=probs, features=features)
    index = ClassFeatureIndex(features, labels)
    return SamplingRequest(
        candidate_view=view,
        candidate_labels=labels,
        hq_index=index,
        ambiguous_features=rng.normal(size=(n_ambiguous, 4)),
        ambiguous_labels=rng.integers(0, 3, size=n_ambiguous),
        cond_prob=np.eye(3),
        k=k,
        rng=rng,
    )


class TestRegistry:
    def test_all_policies_listed(self):
        assert set(available_policies()) == {
            "contrastive", "random", "highest_confidence",
            "least_confidence", "entropy", "pseudo"}

    def test_build_unknown(self):
        with pytest.raises(KeyError, match="available"):
            build_policy("magic")

    def test_names_match(self):
        for name in available_policies():
            assert build_policy(name).name == name


class TestBudget:
    def test_budget_is_k_times_ambiguous(self):
        req = make_request(k=3, n_ambiguous=4)
        assert req.budget == 12

    def test_budget_floor_of_one(self):
        req = make_request(k=3, n_ambiguous=0)
        assert req.budget == 3


class TestPolicySelection:
    def test_override_alignment_enforced(self):
        with pytest.raises(ValueError):
            PolicySelection(indices=np.array([1, 2]),
                            label_overrides=np.array([0]))

    def test_len(self):
        assert len(PolicySelection(indices=np.arange(4))) == 4


class TestRandomPolicy:
    def test_within_budget_no_duplicates(self):
        req = make_request(k=2, n_candidates=20, n_ambiguous=5)
        sel = RandomPolicy().select(req)
        assert len(sel) == 10
        assert len(np.unique(sel.indices)) == 10

    def test_capped_at_pool_size(self):
        req = make_request(k=5, n_candidates=6, n_ambiguous=5)
        sel = RandomPolicy().select(req)
        assert len(sel) == 6

    def test_empty_pool(self):
        req = make_request(n_candidates=0)
        # Rebuild with an empty pool.
        req = SamplingRequest(
            candidate_view=ModelView(np.zeros((0, 3)), np.zeros((0, 4))),
            candidate_labels=np.zeros(0, dtype=int),
            hq_index=ClassFeatureIndex(np.zeros((0, 4)),
                                       np.zeros(0, dtype=int)),
            ambiguous_features=np.zeros((2, 4)),
            ambiguous_labels=np.zeros(2, dtype=int),
            cond_prob=np.eye(3), k=2, rng=np.random.default_rng(0))
        assert len(RandomPolicy().select(req)) == 0


class TestScorePolicies:
    def test_highest_confidence_picks_top(self):
        req = make_request(k=1, n_ambiguous=2)
        sel = HighestConfidencePolicy().select(req)
        conf = req.candidate_view.confidences
        picked = set(sel.indices)
        top2 = set(np.argsort(-conf)[:2])
        assert picked == top2

    def test_least_confidence_picks_bottom(self):
        req = make_request(k=1, n_ambiguous=2)
        sel = LeastConfidencePolicy().select(req)
        conf = req.candidate_view.confidences
        assert set(sel.indices) == set(np.argsort(conf)[:2])

    def test_entropy_picks_most_uncertain(self):
        req = make_request(k=1, n_ambiguous=2)
        sel = EntropyPolicy().select(req)
        p = np.clip(req.candidate_view.probs, 1e-12, 1)
        ent = -(p * np.log(p)).sum(axis=1)
        assert set(sel.indices) == set(np.argsort(-ent)[:2])

    def test_hc_and_lc_disjoint_on_distinct_scores(self):
        req = make_request(k=1, n_candidates=30, n_ambiguous=3)
        hc = set(HighestConfidencePolicy().select(req).indices)
        lc = set(LeastConfidencePolicy().select(req).indices)
        assert hc != lc


class TestPseudoPolicy:
    def test_overrides_with_predictions(self):
        req = make_request(k=2, n_ambiguous=3)
        sel = PseudoLabelPolicy().select(req)
        assert sel.label_overrides is not None
        expected = req.candidate_view.predictions[sel.indices]
        assert np.array_equal(sel.label_overrides, expected)


class TestContrastivePolicyIntegration:
    def test_selects_from_hq_index(self):
        req = make_request(k=2, n_ambiguous=4)
        sel = ContrastivePolicy().select(req)
        assert len(sel) == 8
        assert sel.label_overrides is None

    def test_respects_probability_label_flag(self):
        req = make_request(k=1, n_ambiguous=4, seed=3)
        with_p = ContrastivePolicy(use_probability_label=True)
        without_p = ContrastivePolicy(use_probability_label=False)
        sel_without = without_p.select(req)
        # ENLD-4 mode: target class equals observed label, so selected
        # candidates carry the ambiguous samples' observed labels.
        labels = req.candidate_labels[sel_without.indices]
        expected = np.repeat(req.ambiguous_labels, 1)
        assert np.array_equal(labels, expected)
        assert with_p.select(req) is not None  # smoke: runs fine
