"""Tests for repro.core.scheduler (model-update triggers)."""

import numpy as np
import pytest

from repro.core.detector import DetectionResult
from repro.core.scheduler import (AnyOf, CleanPoolGrowth,
                                  DetectionDegradation, EveryNArrivals)


def make_result(n_clean=8, n_noisy=2, clean_positions=()):
    n = n_clean + n_noisy
    clean = np.zeros(n, dtype=bool)
    clean[:n_clean] = True
    return DetectionResult(
        clean_mask=clean, noisy_mask=~clean,
        inventory_clean_positions=np.asarray(clean_positions, dtype=int),
        pseudo_labels=np.full(n, -1))


class TestEveryN:
    def test_triggers_at_n(self):
        sched = EveryNArrivals(3)
        for _ in range(2):
            sched.observe(make_result())
            assert not sched.should_update()
        sched.observe(make_result())
        assert sched.should_update()

    def test_reset_after_update(self):
        sched = EveryNArrivals(1)
        sched.observe(make_result())
        assert sched.should_update()
        sched.notify_updated()
        assert not sched.should_update()

    def test_validation(self):
        with pytest.raises(ValueError):
            EveryNArrivals(0)


class TestCleanPoolGrowth:
    def test_counts_unique_positions(self):
        sched = CleanPoolGrowth(4)
        sched.observe(make_result(clean_positions=[1, 2]))
        assert not sched.should_update()
        sched.observe(make_result(clean_positions=[2, 3]))  # 2 is dup
        assert not sched.should_update()
        sched.observe(make_result(clean_positions=[4]))
        assert sched.should_update()

    def test_reset(self):
        sched = CleanPoolGrowth(1)
        sched.observe(make_result(clean_positions=[0]))
        sched.notify_updated()
        assert not sched.should_update()

    def test_validation(self):
        with pytest.raises(ValueError):
            CleanPoolGrowth(0)


class TestDegradation:
    def test_no_trigger_before_window_filled(self):
        sched = DetectionDegradation(window=3, tolerance=0.1)
        sched.observe(make_result(5, 5))
        sched.observe(make_result(5, 5))
        assert not sched.should_update()

    def test_stable_rate_no_trigger(self):
        sched = DetectionDegradation(window=3, tolerance=0.1)
        for _ in range(5):
            sched.observe(make_result(8, 2))
        assert not sched.should_update()

    def test_spike_triggers(self):
        sched = DetectionDegradation(window=3, tolerance=0.1)
        sched.observe(make_result(9, 1))
        sched.observe(make_result(9, 1))
        sched.observe(make_result(2, 8))  # flagged fraction jumps
        assert sched.should_update()

    def test_reset(self):
        sched = DetectionDegradation(window=2, tolerance=0.05)
        sched.observe(make_result(9, 1))
        sched.observe(make_result(1, 9))
        assert sched.should_update()
        sched.notify_updated()
        assert not sched.should_update()

    def test_validation(self):
        with pytest.raises(ValueError):
            DetectionDegradation(window=1)
        with pytest.raises(ValueError):
            DetectionDegradation(tolerance=0.0)


class TestAnyOf:
    def test_any_member_triggers(self):
        sched = AnyOf([EveryNArrivals(5), CleanPoolGrowth(1)])
        sched.observe(make_result(clean_positions=[7]))
        assert sched.should_update()

    def test_none_trigger(self):
        sched = AnyOf([EveryNArrivals(5), CleanPoolGrowth(10)])
        sched.observe(make_result(clean_positions=[7]))
        assert not sched.should_update()

    def test_reset_propagates(self):
        inner = EveryNArrivals(1)
        sched = AnyOf([inner])
        sched.observe(make_result())
        sched.notify_updated()
        assert not inner.should_update()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AnyOf([])

    def test_nested_anyof(self):
        sched = AnyOf([AnyOf([EveryNArrivals(2)]), CleanPoolGrowth(10)])
        sched.observe(make_result())
        assert not sched.should_update()
        sched.observe(make_result())
        assert sched.should_update()

    def test_recycles_after_reset(self):
        sched = AnyOf([EveryNArrivals(2)])
        for cycle in range(3):
            sched.observe(make_result())
            assert not sched.should_update(), f"cycle {cycle}"
            sched.observe(make_result())
            assert sched.should_update(), f"cycle {cycle}"
            sched.notify_updated()


class TestMarginalCases:
    def test_every_one_fires_each_arrival(self):
        sched = EveryNArrivals(1)
        for _ in range(3):
            sched.observe(make_result())
            assert sched.should_update()
            sched.notify_updated()

    def test_growth_forgets_positions_after_update(self):
        sched = CleanPoolGrowth(2)
        sched.observe(make_result(clean_positions=[1, 2]))
        assert sched.should_update()
        sched.notify_updated()
        # The same positions arriving again are new growth for the
        # *next* update cycle, not leftovers of the previous one.
        sched.observe(make_result(clean_positions=[1, 2]))
        assert sched.should_update()

    def test_degradation_all_noisy_window(self):
        sched = DetectionDegradation(window=2, tolerance=0.1)
        sched.observe(make_result(0, 10))
        sched.observe(make_result(0, 10))
        # Constant (if terrible) flagged rate is not degradation.
        assert not sched.should_update()
