"""Tests for repro.noise (transition matrices, corruption, missing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.injector import (MISSING_LABEL, corrupt_labels, drop_labels,
                                  observed_noise_rate)
from repro.noise.transition import (block_asymmetric, expected_noise_rate,
                                    identity, pair_asymmetric, symmetric,
                                    validate_transition)
from repro.nn.data import LabeledDataset


def clean_dataset(n_classes=5, per_class=200):
    y = np.repeat(np.arange(n_classes), per_class)
    x = np.zeros((len(y), 2))
    return LabeledDataset(x, y, true_y=y.copy())


class TestTransitionMatrices:
    @given(st.integers(2, 30), st.floats(0.0, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_pair_rows_stochastic(self, n, eta):
        matrix = pair_asymmetric(n, eta)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert (matrix >= 0).all()

    def test_pair_structure(self):
        m = pair_asymmetric(4, 0.3)
        assert np.allclose(np.diag(m), 0.7)
        for i in range(4):
            assert np.isclose(m[i, (i + 1) % 4], 0.3)

    @given(st.integers(2, 30), st.floats(0.0, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_symmetric_rows_stochastic(self, n, eta):
        m = symmetric(n, eta)
        assert np.allclose(m.sum(axis=1), 1.0)
        off = m[~np.eye(n, dtype=bool)]
        assert np.allclose(off, off[0])  # uniform off-diagonal

    def test_block_asymmetric_stochastic(self):
        m = block_asymmetric(12, 0.25, block_size=4,
                             rng=np.random.default_rng(0))
        validate_transition(m)
        assert np.allclose(np.diag(m).min(), 0.75, atol=1e-9)

    def test_identity(self):
        assert np.array_equal(identity(3), np.eye(3))

    def test_invalid_rates(self):
        for bad in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError):
                pair_asymmetric(3, bad)
            with pytest.raises(ValueError):
                symmetric(3, bad)

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            pair_asymmetric(1, 0.1)

    def test_validate_rejects_bad_matrices(self):
        with pytest.raises(ValueError, match="square"):
            validate_transition(np.ones((2, 3)))
        with pytest.raises(ValueError, match="negative"):
            validate_transition(np.array([[1.5, -0.5], [0.0, 1.0]]))
        with pytest.raises(ValueError, match="sums"):
            validate_transition(np.array([[0.5, 0.2], [0.0, 1.0]]))

    def test_expected_noise_rate(self):
        assert np.isclose(expected_noise_rate(pair_asymmetric(5, 0.3)), 0.3)
        prior = np.array([1.0, 0.0, 0.0])
        m = np.eye(3)
        m[0, 0], m[0, 1] = 0.6, 0.4
        assert np.isclose(expected_noise_rate(m, prior), 0.4)


class TestCorruption:
    def test_noise_rate_concentrates(self, rng):
        ds = clean_dataset()
        noisy = corrupt_labels(ds, pair_asymmetric(5, 0.3), rng)
        assert abs(noisy.noise_rate() - 0.3) < 0.05

    def test_truth_and_features_preserved(self, rng):
        ds = clean_dataset()
        noisy = corrupt_labels(ds, pair_asymmetric(5, 0.2), rng)
        assert np.array_equal(noisy.true_y, ds.true_y)
        assert noisy.x is ds.x
        assert np.array_equal(noisy.ids, ds.ids)

    def test_pair_noise_flips_to_next_class(self, rng):
        ds = clean_dataset()
        noisy = corrupt_labels(ds, pair_asymmetric(5, 0.4), rng)
        flipped = noisy.y != noisy.true_y
        assert np.array_equal(noisy.y[flipped],
                              (noisy.true_y[flipped] + 1) % 5)

    def test_identity_matrix_is_noop(self, rng):
        ds = clean_dataset()
        noisy = corrupt_labels(ds, identity(5), rng)
        assert np.array_equal(noisy.y, ds.y)

    def test_requires_truth(self, rng):
        ds = LabeledDataset(np.zeros((3, 1)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="true_y"):
            corrupt_labels(ds, identity(1), rng)

    def test_label_range_check(self, rng):
        ds = clean_dataset(n_classes=5)
        with pytest.raises(ValueError, match="exceed"):
            corrupt_labels(ds, identity(3), rng)

    def test_deterministic_with_seeded_rng(self):
        ds = clean_dataset()
        t = pair_asymmetric(5, 0.2)
        a = corrupt_labels(ds, t, np.random.default_rng(7))
        b = corrupt_labels(ds, t, np.random.default_rng(7))
        assert np.array_equal(a.y, b.y)

    @given(st.floats(0.05, 0.6))
    @settings(max_examples=15, deadline=None)
    def test_rate_concentration_property(self, eta):
        ds = clean_dataset(n_classes=4, per_class=400)
        noisy = corrupt_labels(ds, pair_asymmetric(4, eta),
                               np.random.default_rng(0))
        assert abs(noisy.noise_rate() - eta) < 0.06


class TestMissingLabels:
    def test_exact_count_dropped(self, rng):
        ds = clean_dataset(n_classes=3, per_class=40)
        out, mask = drop_labels(ds, 0.25, rng)
        assert mask.sum() == 30
        assert (out.y[mask] == MISSING_LABEL).all()
        assert (out.y[~mask] == ds.y[~mask]).all()

    def test_zero_and_full(self, rng):
        ds = clean_dataset(n_classes=3, per_class=10)
        out, mask = drop_labels(ds, 0.0, rng)
        assert mask.sum() == 0
        out, mask = drop_labels(ds, 1.0, rng)
        assert mask.all()

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            drop_labels(clean_dataset(), 1.5, rng)

    def test_observed_noise_rate_ignores_missing(self, rng):
        ds = clean_dataset(n_classes=3, per_class=40)
        noisy = corrupt_labels(ds, pair_asymmetric(3, 0.5),
                               np.random.default_rng(1))
        dropped, mask = drop_labels(noisy, 0.5, rng)
        rate = observed_noise_rate(dropped)
        manual = (dropped.y[~mask] != dropped.true_y[~mask]).mean()
        assert np.isclose(rate, manual)

    def test_observed_noise_rate_all_missing(self, rng):
        ds = clean_dataset(n_classes=3, per_class=5)
        dropped, _ = drop_labels(ds, 1.0, rng)
        assert observed_noise_rate(dropped) == 0.0
