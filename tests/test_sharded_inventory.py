"""Tests for repro.datalake.shards (DESIGN.md §14)."""

import os
import threading

import numpy as np
import pytest

from repro.datalake import (FaultPlan, FaultRule, InjectedFault,
                            NoisyLabelPlatform, ShardedInventory, bucket_of)
from repro.datalake.shards import MANIFEST_FILE
from repro.datasets import generate, toy
from repro.nn.data import LabeledDataset
from repro.noise import MISSING_LABEL, corrupt_labels, pair_asymmetric
from repro.obs import use_span_hook


@pytest.fixture(scope="module")
def inventory():
    data = generate(toy(num_classes=5, samples_per_class=60), seed=31)
    rng = np.random.default_rng(32)
    return corrupt_labels(data, pair_asymmetric(5, 0.25), rng,
                          name="shards/inventory")


def _same(a: LabeledDataset, b: LabeledDataset) -> bool:
    truth = ((a.true_y is None and b.true_y is None)
             or (a.true_y is not None and b.true_y is not None
                 and np.array_equal(a.true_y, b.true_y)))
    return (np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)
            and np.array_equal(a.ids, b.ids) and truth)


def test_bucket_of_deterministic_and_in_range():
    ids = np.arange(1000)
    first = bucket_of(ids, 4)
    second = bucket_of(ids, 4)
    assert np.array_equal(first, second)
    assert first.min() >= 0 and first.max() < 4
    # The Fibonacci hash must actually spread sequential ids.
    counts = np.bincount(first, minlength=4)
    assert counts.min() > 100


def test_as_dataset_round_trips_insertion_order(inventory):
    store = ShardedInventory.from_dataset(inventory, num_classes=5)
    assert len(store) == len(inventory)
    assert _same(store.as_dataset(), inventory)


def test_incremental_add_equals_monolithic_rebuild(inventory):
    """Shard-wise adds must equal the one-shot partition bit for bit."""
    parts = [inventory.subset(np.arange(0, 100), name="p0"),
             inventory.subset(np.arange(100, 180), name="p1"),
             inventory.subset(np.arange(180, len(inventory)), name="p2")]
    incremental = ShardedInventory(5)
    for part in parts:
        incremental.add(part)
    monolithic = ShardedInventory.from_dataset(inventory, num_classes=5)
    assert _same(incremental.as_dataset(name=inventory.name),
                 monolithic.as_dataset())
    assert incremental.shard_sizes() == monolithic.shard_sizes()


def test_merge_folds_other_store(inventory):
    left = ShardedInventory.from_dataset(
        inventory.subset(np.arange(0, 150), name="left"), num_classes=5)
    right = ShardedInventory.from_dataset(
        inventory.subset(np.arange(150, len(inventory)), name="right"),
        num_classes=5)
    left.merge(right)
    combined = left.as_dataset(name=inventory.name)
    assert _same(combined, inventory)
    with pytest.raises(ValueError):
        left.merge(ShardedInventory.from_dataset(
            inventory.subset(np.arange(3), name="bad"), num_classes=3))


def test_class_subset_touches_only_those_classes(inventory):
    store = ShardedInventory.from_dataset(inventory, num_classes=5)
    subset = store.class_subset([1, 3])
    mask = np.isin(inventory.y, [1, 3])
    assert _same(subset, inventory.mask(mask, name=subset.name))


def test_missing_labels_route_to_the_extra_group():
    x = np.random.default_rng(0).normal(size=(6, 4))
    y = np.array([0, 1, MISSING_LABEL, 1, MISSING_LABEL, 0])
    data = LabeledDataset(x, y, name="missing")
    store = ShardedInventory.from_dataset(data, num_classes=2,
                                          buckets_per_class=2)
    assert _same(store.as_dataset(name="missing"), data)
    keys = [store.shard_key(i) for i, n in enumerate(store.shard_sizes())
            if n]
    assert any(k.label == MISSING_LABEL for k in keys)
    with pytest.raises(ValueError):
        store.add(LabeledDataset(x, np.full(6, 7), name="out-of-range"))


def test_memmap_backing_round_trip(inventory, tmp_path):
    live = str(tmp_path / "live")
    store = ShardedInventory.from_dataset(
        inventory, num_classes=5, backing="memmap", directory=live)
    assert _same(store.as_dataset(), inventory)
    assert any(name.startswith("live_shard_")
               for name in os.listdir(live))
    saved = str(tmp_path / "ckpt")
    store.save(saved)
    # Reload the checkpoint onto every backing: bytes must match.
    for backing, directory in (("memory", None), ("shm", None),
                               ("memmap", str(tmp_path / "live2"))):
        loaded = ShardedInventory.load(saved, backing=backing,
                                       live_directory=directory)
        assert _same(loaded.as_dataset(), inventory)
        loaded.close()
    store.close()


def test_memmap_regrowth_preserves_rows(inventory, tmp_path):
    """Growing a memmap-backed shard maps a distinct file per capacity
    (mode "w+" truncates its target, so reusing the live file would
    zero the rows being copied out of it)."""
    live = str(tmp_path / "live")
    store = ShardedInventory(5, buckets_per_class=1,
                             backing="memmap", directory=live)
    third = len(inventory) // 3
    parts = [inventory.subset(np.arange(0, third), name="p0"),
             inventory.subset(np.arange(third, 2 * third), name="p1"),
             inventory.subset(np.arange(2 * third, len(inventory)),
                              name="p2")]
    for part in parts:
        store.add(part)
    assert _same(store.as_dataset(name=inventory.name), inventory)
    # Regrowth leaves exactly one live file per occupied shard — the
    # stale generations were deleted once their rows were copied.
    live_files = [n for n in os.listdir(live)
                  if n.startswith("live_shard_")]
    occupied = sum(1 for n in store.shard_sizes() if n)
    assert occupied and len(live_files) == occupied
    # At least one shard actually regrew (generation tag advanced).
    assert any(not n.endswith(".m1.dat") for n in live_files)


def test_concurrent_saves_are_serialized(inventory, tmp_path):
    """Racing saves reserve distinct generations: no filename
    collisions, no pruning of files another manifest references."""
    directory = str(tmp_path / "race")
    store = ShardedInventory.from_dataset(inventory, num_classes=5)
    errors = []

    def save():
        try:
            store.save(directory)
        except Exception as exc:  # pragma: no cover — fail loudly
            errors.append(exc)

    threads = [threading.Thread(target=save) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    import json
    with open(os.path.join(directory, MANIFEST_FILE)) as fh:
        manifest = json.load(fh)
    assert manifest["generation"] == 4
    assert _same(ShardedInventory.load(directory).as_dataset(),
                 inventory)


def test_shm_backing_appends_and_closes(inventory):
    with ShardedInventory.from_dataset(inventory, num_classes=5,
                                       backing="shm") as store:
        assert _same(store.as_dataset(), inventory)
        store.add(inventory.subset(np.arange(10), name="extra"))
        assert len(store) == len(inventory) + 10


def test_save_is_generation_versioned(inventory, tmp_path):
    directory = str(tmp_path / "gen")
    store = ShardedInventory.from_dataset(inventory, num_classes=5)
    store.save(directory)
    gen1 = {n for n in os.listdir(directory) if ".g1." in n}
    assert gen1
    store.add(inventory.subset(np.arange(20), name="growth"))
    store.save(directory)
    names = os.listdir(directory)
    # Older generation pruned only after the new manifest landed.
    assert not any(".g1." in n for n in names)
    assert any(".g2." in n for n in names)
    loaded = ShardedInventory.load(directory)
    assert len(loaded) == len(inventory) + 20
    assert _same(loaded.as_dataset(), store.as_dataset())


def test_killed_flush_preserves_previous_generation(inventory, tmp_path):
    """The shard_flush chaos contract: a kill mid-save is invisible."""
    directory = str(tmp_path / "chaos")
    store = ShardedInventory.from_dataset(inventory, num_classes=5)
    store.save(directory)
    golden = store.as_dataset()
    store.add(inventory.subset(np.arange(30), name="growth"))
    injector = FaultPlan([FaultRule("shard_flush", probability=1.0,
                                   times=1)], seed=7).injector()
    with pytest.raises(InjectedFault), use_span_hook(injector):
        store.save(directory)
    assert injector.injected["shard_flush"] == 1
    survivor = ShardedInventory.load(directory)
    assert _same(survivor.as_dataset(), golden)
    # A clean retry lands the grown state.
    store.save(directory)
    assert _same(ShardedInventory.load(directory).as_dataset(),
                 store.as_dataset())


def test_manifest_written_last(inventory, tmp_path):
    directory = str(tmp_path / "manifest")
    store = ShardedInventory.from_dataset(inventory, num_classes=5)
    path = store.save(directory)
    assert os.path.basename(path) == MANIFEST_FILE
    import json
    with open(path) as fh:
        manifest = json.load(fh)
    for entry in manifest["shards"]:
        assert os.path.exists(os.path.join(directory, entry["file"]))
    assert manifest["total"] == len(inventory)


def test_concurrent_adds_are_linearizable(inventory):
    """Parallel adds: every row lands exactly once, per-shard locks
    keep payloads consistent (order across threads is unspecified)."""
    store = ShardedInventory(5)
    chunks = [inventory.subset(np.arange(i, len(inventory), 8),
                               name=f"chunk{i}") for i in range(8)]
    threads = [threading.Thread(target=store.add, args=(chunk,))
               for chunk in chunks]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(store) == len(inventory)
    merged = store.as_dataset()
    order = np.argsort(merged.ids, kind="stable")
    reference = inventory.subset(np.argsort(inventory.ids,
                                            kind="stable"), name="ref")
    assert _same(merged.subset(order, name="ref"), reference)


def test_platform_accepts_sharded_inventory(inventory):
    from repro.core.config import ENLDConfig

    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 16},
                        init_epochs=2, iterations=1,
                        steps_per_iteration=1, warmup_epochs=0,
                        contrastive_k=1, seed=3)
    store = ShardedInventory.from_dataset(inventory, num_classes=5)
    from_shards = NoisyLabelPlatform(store, config=config, num_classes=5)
    from_dataset = NoisyLabelPlatform(inventory, config=config,
                                      num_classes=5)
    assert from_shards.sharded_inventory is store
    assert from_dataset.sharded_inventory is None
    assert np.array_equal(from_shards.enld.cond_prob,
                          from_dataset.enld.cond_prob)
    arrival = inventory.subset(np.arange(12), name="arrival")
    assert from_shards.absorb_arrival(arrival)
    assert len(store) == len(inventory) + 12
    assert not from_dataset.absorb_arrival(arrival)
