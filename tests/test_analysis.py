"""Tests for repro.analysis: the AST invariant checker behind
``repro lint``.

Each rule gets a positive fixture (violating snippet), a negative
fixture (the disciplined form), and the suppression channels (noqa,
baseline) are exercised end to end — finishing with the meta-test
that the live tree itself is clean against the committed baseline.
"""

import json
import os

import pytest

from repro.analysis import (DEFAULT_BASELINE_PATH, GRAPH_RULES, RULES,
                            AnalysisConfig, Severity, analyze_paths,
                            analyze_source, load_baseline, module_key,
                            render_json, render_sarif, render_text,
                            write_baseline)
from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def rules_of(findings):
    return sorted({f.rule for f in findings if f.suppressed is None})


def check(source, key="repro/somemodule.py"):
    """Analyze a snippet under a chosen module key."""
    return analyze_source(source, key)


# ----------------------------------------------------------------------
# REP101 / REP102: RNG discipline
# ----------------------------------------------------------------------
class TestRngRules:
    def test_legacy_np_random_flagged(self):
        findings = check(
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "x = np.random.rand(3)\n")
        assert rules_of(findings) == ["REP101"]
        assert len(findings) == 2

    def test_numpy_alias_resolved(self):
        findings = check(
            "import numpy\n"
            "numpy.random.shuffle([1, 2])\n")
        assert rules_of(findings) == ["REP101"]

    def test_from_numpy_random_member_import(self):
        findings = check("from numpy.random import rand\n")
        assert rules_of(findings) == ["REP101"]

    def test_stdlib_random_flagged(self):
        findings = check(
            "import random\n"
            "random.choice([1, 2])\n")
        assert all(f.rule == "REP101" for f in findings)
        assert len(findings) == 2

    def test_generator_discipline_clean(self):
        findings = check(
            "import numpy as np\n"
            "def draw(rng: np.random.Generator):\n"
            "    return rng.normal()\n"
            "rng = np.random.default_rng(7)\n")
        assert rules_of(findings) == []

    def test_unseeded_default_rng_flagged(self):
        findings = check(
            "import numpy as np\n"
            "rng = np.random.default_rng()\n")
        assert rules_of(findings) == ["REP102"]

    def test_seeded_default_rng_clean(self):
        assert rules_of(check(
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n")) == []
        assert rules_of(check(
            "from numpy.random import default_rng\n"
            "rng = default_rng(seed=3)\n")) == []

    def test_unseeded_via_member_import(self):
        findings = check(
            "from numpy.random import default_rng\n"
            "rng = default_rng()\n")
        assert rules_of(findings) == ["REP102"]


# ----------------------------------------------------------------------
# REP201: atomic-write discipline (scoped to repro/datalake)
# ----------------------------------------------------------------------
class TestAtomicWriteRule:
    SNIPPET = (
        "import json\n"
        "import numpy as np\n"
        "def save(path, payload, arr):\n"
        "    with open(path, 'w') as fh:\n"
        "        json.dump(payload, fh)\n"
        "    np.save(path + '.npy', arr)\n")

    def test_datalake_writes_flagged(self):
        findings = analyze_source(self.SNIPPET,
                                  "repro/datalake/state.py")
        assert rules_of(findings) == ["REP201"]
        assert len(findings) == 3

    def test_outside_datalake_not_flagged(self):
        findings = analyze_source(self.SNIPPET, "repro/eval/export.py")
        assert rules_of(findings) == []

    def test_persistence_module_exempt(self):
        findings = analyze_source(self.SNIPPET,
                                  "repro/datalake/persistence.py")
        assert rules_of(findings) == []

    def test_reads_are_fine(self):
        findings = analyze_source(
            "def load(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n",
            "repro/datalake/state.py")
        assert rules_of(findings) == []

    def test_dynamic_mode_flagged_conservatively(self):
        findings = analyze_source(
            "def touch(path, mode):\n"
            "    open(path, mode)\n",
            "repro/datalake/state.py")
        assert rules_of(findings) == ["REP201"]


# ----------------------------------------------------------------------
# REP301: tracer discipline (manifest-driven)
# ----------------------------------------------------------------------
class TestTracerRule:
    KEY = "repro/core/enld.py"

    def test_untraced_entry_point_flagged(self):
        findings = analyze_source(
            "class ENLD:\n"
            "    def initialize(self): pass\n"
            "    def detect(self):\n"
            "        with trace_span('detect'): pass\n"
            "    def update_model(self):\n"
            "        with use_tracer(None): pass\n",
            self.KEY)
        assert rules_of(findings) == ["REP301"]
        assert len(findings) == 1
        assert "ENLD.initialize" in findings[0].message

    def test_stale_manifest_entry_flagged(self):
        findings = analyze_source("class ENLD:\n    pass\n", self.KEY)
        assert rules_of(findings) == ["REP301"]
        assert all("not found" in f.message for f in findings)

    def test_unlisted_module_unchecked(self):
        findings = analyze_source(
            "class ENLD:\n    def initialize(self): pass\n",
            "repro/core/other.py")
        assert rules_of(findings) == []


# ----------------------------------------------------------------------
# REP401: wall-clock discipline
# ----------------------------------------------------------------------
class TestWallClockRule:
    def test_clock_reads_flagged(self):
        findings = check(
            "import time\n"
            "from datetime import datetime\n"
            "a = time.time()\n"
            "b = time.perf_counter()\n"
            "c = datetime.now()\n")
        assert rules_of(findings) == ["REP401"]
        assert len(findings) == 3

    def test_obs_module_allowed(self):
        findings = analyze_source(
            "import time\nstart = time.perf_counter()\n",
            "repro/obs/clock.py")
        assert rules_of(findings) == []

    def test_eval_timer_allowed(self):
        findings = analyze_source(
            "import time\nstart = time.perf_counter()\n",
            "repro/eval/timer.py")
        assert rules_of(findings) == []

    def test_sleep_is_not_a_clock_read(self):
        assert rules_of(check("import time\ntime.sleep(0)\n")) == []


# ----------------------------------------------------------------------
# REP501 / REP502 / REP503: API hygiene
# ----------------------------------------------------------------------
class TestApiHygieneRules:
    def test_mutable_defaults_flagged(self):
        findings = check(
            "def f(a, b=[], c={}, d=set(), *, e=[1]):\n"
            "    return a\n")
        assert rules_of(findings) == ["REP501"]
        assert len(findings) == 4

    def test_none_default_clean(self):
        assert rules_of(check("def f(a, b=None, c=()):\n"
                              "    return a\n")) == []

    def test_phantom_all_export_flagged(self):
        findings = check(
            "__all__ = ['real', 'phantom']\n"
            "def real(): pass\n")
        assert rules_of(findings) == ["REP502"]

    def test_consistent_all_clean(self):
        findings = check(
            "from os import path\n"
            "__all__ = ['path', 'helper', 'CONST']\n"
            "CONST = 1\n"
            "def helper(): pass\n")
        assert rules_of(findings) == []

    def test_init_reexport_missing_from_all_warns(self):
        findings = analyze_source(
            "from .mod import exported, hidden\n"
            "__all__ = ['exported']\n",
            "repro/pkg/__init__.py")
        assert rules_of(findings) == ["REP503"]
        assert all(f.severity is Severity.WARNING for f in findings)

    def test_warning_does_not_fail_unless_strict(self, tmp_path):
        pkg = tmp_path / "repro" / "pkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text(
            "from os.path import join\n__all__ = []\n")
        result = analyze_paths([str(tmp_path)])
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 1


# ----------------------------------------------------------------------
# Engine mechanics: noqa, baseline, fingerprints, parse errors
# ----------------------------------------------------------------------
class TestSuppression:
    def test_noqa_with_rule_id(self):
        findings = check(
            "import numpy as np\n"
            "np.random.seed(0)  # repro: noqa[REP101]\n")
        assert rules_of(findings) == []
        assert findings[0].suppressed == "noqa"

    def test_blanket_noqa(self):
        findings = check(
            "import numpy as np\n"
            "np.random.seed(0)  # repro: noqa\n")
        assert rules_of(findings) == []

    def test_noqa_for_other_rule_does_not_apply(self):
        findings = check(
            "import numpy as np\n"
            "np.random.seed(0)  # repro: noqa[REP401]\n")
        assert rules_of(findings) == ["REP101"]

    def test_baseline_suppression_and_staleness(self, tmp_path):
        bad = tmp_path / "repro" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nnp.random.seed(0)\n")
        first = analyze_paths([str(tmp_path)])
        assert first.exit_code() == 1

        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, first.findings)
        baseline = load_baseline(baseline_path)
        assert len(baseline) == 1

        second = analyze_paths([str(tmp_path)], baseline=baseline)
        assert second.exit_code() == 0
        assert [f.suppressed for f in second.findings] == ["baseline"]
        assert second.stale_baseline == []

        # Fixing the module strands the baseline entry -> stale.
        bad.write_text("import numpy as np\n"
                       "rng = np.random.default_rng(0)\n")
        third = analyze_paths([str(tmp_path)], baseline=baseline)
        assert third.exit_code() == 0
        assert len(third.stale_baseline) == 1

    def test_fingerprints_stable_across_line_shifts(self):
        a = check("import numpy as np\nnp.random.seed(0)\n")
        b = check("import numpy as np\n\n\nnp.random.seed(0)\n")
        fp = {f.fingerprint for f in a if f.rule == "REP101"
              and "seed" in f.source_line}
        fp2 = {f.fingerprint for f in b if f.rule == "REP101"
               and "seed" in f.source_line}
        assert fp == fp2

    def test_identical_lines_get_distinct_fingerprints(self):
        findings = check("import random\n"
                         "random.random()\n"
                         "random.random()\n")
        fps = [f.fingerprint for f in findings]
        assert len(fps) == len(set(fps))

    def test_syntax_error_reported_not_raised(self):
        findings = check("def broken(:\n")
        assert [f.rule for f in findings] == ["REP001"]
        assert findings[0].severity is Severity.ERROR


class TestEngineHelpers:
    def test_module_key_strips_checkout_prefix(self):
        assert module_key("src/repro/datalake/stream.py") == \
            "repro/datalake/stream.py"
        assert module_key("/tmp/x/repro/core/enld.py") == \
            "repro/core/enld.py"
        assert module_key("scratch.py") == "scratch.py"

    def test_module_key_outside_repro_uses_scan_root(self, tmp_path):
        # Two same-named files under different subdirectories of one
        # scan root must not collide on a bare-filename key.
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        (tmp_path / "a" / "util.py").write_text("x = 1\n")
        (tmp_path / "b" / "util.py").write_text("x = 2\n")
        root = str(tmp_path)
        key_a = module_key(str(tmp_path / "a" / "util.py"), root)
        key_b = module_key(str(tmp_path / "b" / "util.py"), root)
        assert key_a != key_b
        assert key_a.endswith("a/util.py")
        assert key_b.endswith("b/util.py")
        base = os.path.basename(root)
        assert key_a == f"{base}/a/util.py"

    def test_rule_catalog_complete(self):
        assert sorted(RULES) == ["REP101", "REP102", "REP201",
                                 "REP301", "REP401", "REP501",
                                 "REP502", "REP503"]
        assert sorted(GRAPH_RULES) == ["REP601", "REP602",
                                       "REP603", "REP604",
                                       "REP701", "REP702",
                                       "REP703", "REP704", "REP705",
                                       "REP801", "REP802",
                                       "REP803", "REP804", "REP805"]
        assert not set(RULES) & set(GRAPH_RULES)

    def test_config_is_immutable(self):
        with pytest.raises(Exception):
            AnalysisConfig().atomic_scope_prefixes = ()


# ----------------------------------------------------------------------
# Report formats
# ----------------------------------------------------------------------
class TestReports:
    def make_result(self, tmp_path):
        mod = tmp_path / "repro" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import numpy as np\nnp.random.seed(0)\n")
        return analyze_paths([str(tmp_path)])

    def test_text_report(self, tmp_path):
        text = render_text(self.make_result(tmp_path))
        assert "REP101" in text and "1 error(s)" in text

    def test_json_report_roundtrips(self, tmp_path):
        payload = json.loads(
            json.dumps(render_json(self.make_result(tmp_path))))
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "REP101"

    def test_sarif_report_shape(self, tmp_path):
        sarif = render_sarif(self.make_result(tmp_path))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == \
            set(RULES) | set(GRAPH_RULES)
        result = run["results"][0]
        assert result["ruleId"] == "REP101"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2

    def test_sarif_rule_entries_have_required_fields(self, tmp_path):
        # Every driver rule needs the fields code-scanning UIs rely
        # on; every reported rule id must resolve to a driver entry.
        sarif = render_sarif(self.make_result(tmp_path))
        driver = sarif["runs"][0]["tool"]["driver"]
        ids = set()
        for rule in driver["rules"]:
            ids.add(rule["id"])
            assert rule["name"]
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning")
        for result in sarif["runs"][0]["results"]:
            assert result["ruleId"] in ids

    def test_sarif_regions_are_one_based(self, tmp_path):
        # SARIF regions are 1-based for both line and column; a 0
        # anywhere means an off-by-one in the renderer.
        sarif = render_sarif(self.make_result(tmp_path))
        for result in sarif["runs"][0]["results"]:
            for location in result["locations"]:
                region = location["physicalLocation"]["region"]
                assert region["startLine"] >= 1
                assert region["startColumn"] >= 1

    def test_write_baseline_roundtrip_suppresses_everything(
            self, tmp_path):
        result = self.make_result(tmp_path)
        assert result.active
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), result.findings)
        reloaded = load_baseline(str(baseline_path))
        rerun = analyze_paths([str(tmp_path)], baseline=reloaded)
        assert rerun.active == []
        assert rerun.stale_baseline == []
        assert rerun.exit_code(strict=True) == 0


# ----------------------------------------------------------------------
# CLI integration (`repro lint`)
# ----------------------------------------------------------------------
class TestLintCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        mod = tmp_path / "repro" / "ok.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import numpy as np\n"
                       "rng = np.random.default_rng(1)\n")
        code = cli_main(["lint", str(tmp_path), "--no-baseline",
                         "--no-cache"])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_exit_one_on_violation(self, tmp_path, capsys):
        mod = tmp_path / "repro" / "bad.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import numpy as np\nnp.random.seed(0)\n")
        code = cli_main(["lint", str(tmp_path), "--no-baseline",
                         "--no-cache"])
        assert code == 1
        assert "REP101" in capsys.readouterr().out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        mod = tmp_path / "repro" / "bad.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import numpy as np\nnp.random.seed(0)\n")
        baseline = str(tmp_path / "baseline.json")
        assert cli_main(["lint", str(tmp_path), "--no-cache",
                         "--baseline", baseline,
                         "--write-baseline"]) == 0
        assert cli_main(["lint", str(tmp_path), "--no-cache",
                         "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_malformed_baseline_is_usage_error(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"version": 99}))
        assert cli_main(["lint", str(tmp_path), "--no-cache",
                         "--baseline", str(baseline)]) == 2

    def test_sarif_output_parses(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text("x = 1\n")
        cli_main(["lint", str(tmp_path), "--no-baseline", "--no-cache",
                  "--format", "sarif"])
        json.loads(capsys.readouterr().out)

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (*RULES, *GRAPH_RULES):
            assert rule_id in out


# ----------------------------------------------------------------------
# Violating each shipped rule must fail the gate (acceptance check)
# ----------------------------------------------------------------------
VIOLATIONS = {
    "REP101": ("repro/x.py", "import numpy as np\nnp.random.seed(0)\n"),
    "REP102": ("repro/x.py",
               "import numpy as np\nr = np.random.default_rng()\n"),
    "REP201": ("repro/datalake/x.py",
               "import json\n"
               "def f(p, d):\n"
               "    with open(p, 'w') as fh:\n"
               "        json.dump(d, fh)\n"),
    "REP301": ("repro/core/enld.py",
               "class ENLD:\n"
               "    def initialize(self): pass\n"
               "    def detect(self): pass\n"
               "    def update_model(self): pass\n"),
    "REP401": ("repro/x.py", "import time\nt = time.time()\n"),
    "REP501": ("repro/x.py", "def f(a=[]):\n    return a\n"),
    "REP502": ("repro/x.py", "__all__ = ['ghost']\n"),
}


@pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
def test_each_rule_fails_the_gate(rule_id, tmp_path):
    key, source = VIOLATIONS[rule_id]
    path = tmp_path / key
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    result = analyze_paths([str(tmp_path)])
    assert rule_id in {f.rule for f in result.errors}
    assert result.exit_code() == 1


# ----------------------------------------------------------------------
# Meta-test: the live tree is clean against the committed baseline
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_src_tree_clean(self):
        baseline = load_baseline(
            os.path.join(REPO_ROOT, DEFAULT_BASELINE_PATH))
        result = analyze_paths([os.path.join(REPO_ROOT, "src")],
                               baseline=baseline)
        messages = [f.format() for f in result.errors]
        assert not messages, "\n".join(messages)
        assert not result.stale_baseline

    def test_committed_baseline_holds_only_the_facade_entry(self):
        # Policy: the baseline only ever shrinks.  The per-file sweep
        # fixed every true positive; the REP6xx sweep grandfathered
        # exactly one finding — the dead ``Stopwatch`` re-export on the
        # ``repro.eval.timer`` facade, kept for external callers
        # (DESIGN.md §10).  Grandfathering anything further needs a
        # justification in DESIGN.md.
        baseline = load_baseline(
            os.path.join(REPO_ROOT, DEFAULT_BASELINE_PATH))
        assert len(baseline) == 1
        (entry,) = baseline.values()
        assert entry["rule"] == "REP603"
        assert entry["path"] == "repro/eval/timer.py"
        assert "Stopwatch" in entry["message"]
        # Every surviving grandfather must say *why* it stays; the
        # reason rides along through ``--write-baseline`` rewrites.
        assert "facade" in str(entry["reason"])
