"""Tests for repro.datalake.resilience (admission, degradation, chaos)."""

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.missing import missing_label_report
from repro.core.scheduler import EveryNArrivals
from repro.datalake import (ArrivalStream, FaultPlan, FaultRule,
                            InjectedFault, NO_WAIT_RETRY, NoisyLabelPlatform,
                            RetryPolicy, admission_errors,
                            coarse_fallback_detect)
from repro.datasets import generate, split_inventory_incremental, toy
from repro.datasets.splits import ShardPlan
from repro.nn.data import LabeledDataset
from repro.noise import MISSING_LABEL, corrupt_labels, pair_asymmetric
from repro.obs import use_span_hook


@pytest.fixture(scope="module")
def world():
    data = generate(toy(num_classes=6, samples_per_class=80), seed=50)
    rng = np.random.default_rng(51)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, 0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool,
                             ShardPlan(num_shards=5, classes_per_shard=3),
                             transition=transition, seed=52).arrivals()
    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=10, iterations=2,
                        steps_per_iteration=3, seed=53)
    return {"inventory": inventory, "arrivals": arrivals, "config": config}


def make_platform(world, **kwargs):
    kwargs.setdefault("retry", NO_WAIT_RETRY)
    return NoisyLabelPlatform(world["inventory"], config=world["config"],
                              **kwargs)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_clean_arrival_passes(self, world):
        assert admission_errors(world["arrivals"][0], 6) == []

    def test_empty_dataset(self):
        ds = LabeledDataset(np.zeros((0, 2)), np.zeros(0, dtype=int),
                            name="empty")
        assert any("empty" in e for e in admission_errors(ds, 3))

    def test_nan_and_inf_features(self):
        x = np.zeros((4, 2))
        x[1, 0] = np.nan
        x[3, 1] = np.inf
        ds = LabeledDataset(x, np.zeros(4, dtype=int), name="nan")
        errors = admission_errors(ds, 3)
        assert any("non-finite" in e and "2 sample" in e for e in errors)

    def test_label_out_of_range(self):
        ds = LabeledDataset(np.zeros((3, 2)), np.array([0, 7, -4]),
                            name="bad-labels")
        errors = admission_errors(ds, 3)
        assert any("outside" in e for e in errors)

    def test_missing_label_sentinel_is_admissible(self):
        ds = LabeledDataset(np.zeros((3, 2)),
                            np.array([0, MISSING_LABEL, 2]), name="miss")
        assert admission_errors(ds, 3) == []

    def test_duplicate_ids(self):
        ds = LabeledDataset(np.zeros((3, 2)), np.zeros(3, dtype=int),
                            ids=np.array([5, 5, 6]), name="dups")
        assert any("duplicate ids" in e for e in admission_errors(ds, 3))

    def test_non_integer_labels(self):
        ds = LabeledDataset(np.zeros((3, 2)), np.zeros(3),  # float labels
                            name="floaty")
        assert any("non-integer labels" in e
                   for e in admission_errors(ds, 3))

    def test_name_collision(self, world):
        arrival = world["arrivals"][0]
        errors = admission_errors(arrival, 6,
                                  existing_names=[arrival.name])
        assert any("collision" in e for e in errors)

    def test_platform_quarantines_instead_of_raising(self, world):
        platform = make_platform(world)
        x = np.full((5, world["inventory"].feature_dim), np.nan)
        bad = LabeledDataset(x, np.zeros(5, dtype=int), name="poison")
        report = platform.submit(bad)
        assert report.quarantined and not report.degraded
        assert report.result is None and report.record is None
        q = platform.catalog.get_quarantine("poison")
        assert q.num_samples == 5
        assert any("non-finite" in r for r in q.reasons)
        assert platform.quality_report()["quarantined_submissions"] == 1
        # The lake never registered the reject.
        assert "poison" not in platform.catalog.arrival_names


# ----------------------------------------------------------------------
# Fault plan / injector determinism
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ValueError, match="fires never"):
            FaultRule("detect")
        with pytest.raises(ValueError, match="not both"):
            FaultRule("detect", probability=0.5, on_call=1)
        with pytest.raises(ValueError, match="1-based"):
            FaultRule("detect", on_call=0)
        with pytest.raises(ValueError, match="probability"):
            FaultRule("detect", probability=1.5)

    def test_on_call_triggers_nth_entry(self):
        injector = FaultPlan([FaultRule("vote", on_call=3)]).injector()
        injector("vote")
        injector("vote")
        with pytest.raises(InjectedFault) as exc:
            injector("vote")
        assert exc.value.stage == "vote"
        assert injector.injected == {"vote": 1}

    def test_times_budget_consecutive(self):
        injector = FaultPlan(
            [FaultRule("detect", on_call=1, times=2)]).injector()
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector("detect")
        injector("detect")  # budget spent: passes
        assert injector.injected == {"detect": 2}

    def test_probability_rules_replay_identically(self):
        plan = FaultPlan([FaultRule("fine_tune", probability=0.3,
                                    times=10 ** 9)], seed=7)

        def run(injector):
            fired = []
            for i in range(200):
                try:
                    injector("fine_tune")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        a, b = run(plan.injector()), run(plan.injector())
        assert a == b
        assert any(a) and not all(a)

    def test_span_hook_integration(self):
        from repro.obs import trace_span

        plan = FaultPlan([FaultRule("stage_x", on_call=1)])
        with use_span_hook(plan.injector()):
            with trace_span("other"):
                pass
            with pytest.raises(InjectedFault):
                with trace_span("stage_x"):
                    pass


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_retry_then_success(self, world):
        plan = FaultPlan([FaultRule("detect", on_call=1)])
        platform = make_platform(world, fault_plan=plan, trace=True)
        report = platform.submit(world["arrivals"][0])
        assert not report.degraded and not report.quarantined
        assert report.retries == 1
        assert len(report.failures) == 1
        assert report.failures[0].stage == "detect"
        assert report.trace["counters"]["platform.retries"] == 1
        assert "platform.degraded" not in report.trace["counters"]

    def test_exhausted_retries_fall_back_to_coarse(self, world):
        # times = max_retries + 1 exhausts the whole attempt budget.
        plan = FaultPlan([FaultRule("iteration", on_call=1, times=3)])
        platform = make_platform(world, fault_plan=plan, trace=True)
        report = platform.submit(world["arrivals"][0])
        assert report.degraded and not report.quarantined
        assert report.retries == 2
        assert [f.stage for f in report.failures] == ["iteration"] * 3
        assert report.record.detector == "coarse-fallback"
        assert report.result.pseudo_labels is None
        assert report.trace["counters"]["platform.degraded"] == 1
        # Degraded submissions still land in the catalog.
        assert world["arrivals"][0].name in platform.catalog.processed_names
        assert platform.quality_report()["degraded_submissions"] == 1

    def test_fallback_disabled_raises(self, world):
        plan = FaultPlan([FaultRule("detect", on_call=1, times=2)])
        platform = make_platform(
            world, fault_plan=plan, fallback=False,
            retry=RetryPolicy(max_retries=1, backoff_base=0.0,
                              sleep=lambda _s: None))
        with pytest.raises(RuntimeError, match="after 2 attempt"):
            platform.submit(world["arrivals"][0])

    def test_coarse_fallback_partitions_labeled_rows(self, world):
        platform = make_platform(world)
        arrival = world["arrivals"][0]
        result = coarse_fallback_detect(platform.enld.model, arrival)
        labeled = arrival.y != MISSING_LABEL
        assert (result.clean_mask | result.noisy_mask == labeled).all()
        assert result.detector_name == "coarse-fallback"
        assert len(result.inventory_clean_positions) == 0

    def test_missing_report_guards_fallback_result(self, world):
        platform = make_platform(world)
        arrival = world["arrivals"][0]
        result = coarse_fallback_detect(platform.enld.model, arrival)
        with pytest.raises(ValueError, match="don't vote"):
            missing_label_report(result, arrival)

    def test_backoff_schedule(self):
        policy = RetryPolicy(max_retries=4, backoff_base=0.1,
                             max_backoff=0.3)
        assert policy.backoff_seconds(0) == pytest.approx(0.1)
        assert policy.backoff_seconds(1) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.3)  # capped


class TestBackoffJitter:
    def test_seeded_rng_replays_identically(self):
        policy = RetryPolicy(backoff_base=0.1, max_backoff=10.0,
                             jitter=0.25)
        a = [policy.backoff_seconds(i, rng=np.random.default_rng(7))
             for i in range(4)]
        b = [policy.backoff_seconds(i, rng=np.random.default_rng(7))
             for i in range(4)]
        assert a == b  # same seed → byte-identical replay

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(backoff_base=0.1, max_backoff=0.5,
                             jitter=0.25)
        rng = np.random.default_rng(11)
        for attempt in range(6):
            base = min(0.1 * 2 ** attempt, 0.5)
            value = policy.backoff_seconds(attempt, rng=rng)
            assert base * 0.75 <= value <= min(base * 1.25, 0.5)

    def test_no_rng_keeps_exact_schedule(self):
        # Replay determinism: callers that pass no rng (the blocking
        # detection-retry path before seeded jitter existed) still get
        # the exact exponential schedule.
        policy = RetryPolicy(backoff_base=0.1, max_backoff=0.3,
                             jitter=0.25)
        assert policy.backoff_seconds(1) == pytest.approx(0.2)

    def test_zero_jitter_ignores_rng(self):
        policy = RetryPolicy(backoff_base=0.1, max_backoff=0.3,
                             jitter=0.0)
        rng = np.random.default_rng(3)
        assert policy.backoff_seconds(1, rng=rng) == pytest.approx(0.2)
        # The rng was never consumed.
        assert rng.random() == np.random.default_rng(3).random()

    def test_jitter_validation(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)

    def test_model_update_fault_does_not_fail_submission(self, world):
        plan = FaultPlan([FaultRule("model_update", on_call=1)])
        platform = make_platform(world, fault_plan=plan,
                                 scheduler=EveryNArrivals(1), trace=True)
        report = platform.submit(world["arrivals"][0])
        assert not report.quarantined
        if len(platform.catalog.clean_inventory_ids):
            # Update fired and was injected: submission survives,
            # model not updated, scheduler stays armed.
            assert not report.updated_model
            assert platform.model_updates == 0
            assert any(f.stage == "model_update" for f in report.failures)
            assert report.trace["counters"]["platform.update_failures"] == 1


# ----------------------------------------------------------------------
# The acceptance scenario: every non-setup stage faulted across a
# 5-arrival toy stream; everything completes, counters match the plan.
# ----------------------------------------------------------------------
class TestChaosAcceptance:
    def test_five_arrival_chaos_run(self, world):
        # Nine detection stages in first-entry order; probability-1
        # single-shot rules fire one per attempt, so arrivals 1-3 each
        # exhaust their 3 attempts (3 stages × 3 arrivals) and degrade,
        # arrivals 4-5 run clean.
        stages = ["detect", "initial_views", "contrastive_sampling",
                  "warmup", "iteration", "fine_tune", "vote",
                  "recompute_views", "resample"]
        plan = FaultPlan([FaultRule(s, probability=1.0) for s in stages])
        platform = make_platform(world, fault_plan=plan, trace=True)

        reports = [platform.submit(a) for a in world["arrivals"][:5]]
        x = np.full((3, world["inventory"].feature_dim), np.inf)
        bad = LabeledDataset(x, np.zeros(3, dtype=int), name="corrupt")
        reports.append(platform.submit(bad))

        assert [r.degraded for r in reports] == [True] * 3 + [False] * 3
        assert [r.quarantined for r in reports] == [False] * 5 + [True]
        assert [r.retries for r in reports] == [2, 2, 2, 0, 0, 0]

        injected = platform._fault_injector.injected
        assert injected == {s: 1 for s in stages}

        merged = platform.quality_report()["trace"]["counters"]
        assert merged["platform.retries"] == 6
        assert merged["platform.degraded"] == 3
        assert merged["platform.quarantined"] == 1
        assert merged["platform.submissions"] == 5

        report = platform.quality_report()
        assert report["datasets_processed"] == 5
        assert report["datasets_quarantined"] == 1
        assert report["degraded_submissions"] == 3
        assert report["retries"] == 6
