"""Tests for repro.nn.functional (softmax family, conv2d, pooling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F
from repro.nn.tensor import Tensor

logits_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
    elements=st.floats(-30.0, 30.0, allow_nan=False))


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        out = F.softmax(x).data
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out > 0).all()

    def test_invariant_to_shift(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_stable_for_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 0.0]]))).data
        assert np.isfinite(out).all()
        assert out[0, 0] > 0.99

    def test_log_softmax_consistency(self):
        x = np.random.default_rng(2).normal(size=(3, 5))
        assert np.allclose(F.log_softmax(Tensor(x)).data,
                           np.log(F.softmax(Tensor(x)).data))

    def test_softmax_gradient(self):
        x = np.random.default_rng(3).normal(size=(2, 3))
        t = Tensor(x.copy(), requires_grad=True)
        # Pick out one probability and differentiate.
        F.softmax(t)[0, 1].backward()
        eps = 1e-6
        num = np.zeros_like(x)
        for i in np.ndindex(*x.shape):
            xp = x.copy(); xp[i] += eps
            xm = x.copy(); xm[i] -= eps
            num[i] = (F.softmax(Tensor(xp)).data[0, 1]
                      - F.softmax(Tensor(xm)).data[0, 1]) / (2 * eps)
        assert np.allclose(t.grad, num, atol=1e-6)

    @given(logits_arrays)
    @settings(max_examples=30, deadline=None)
    def test_softmax_is_distribution(self, x):
        out = F.softmax(Tensor(x)).data
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out >= 0).all()

    @given(logits_arrays)
    @settings(max_examples=30, deadline=None)
    def test_log_softmax_nonpositive(self, x):
        assert (F.log_softmax(Tensor(x)).data <= 1e-12).all()


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        assert np.array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError, match="out of range"):
            F.one_hot(np.array([-1]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty(self):
        assert F.one_hot(np.array([], dtype=int), 4).shape == (0, 4)


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones((4, 4)))
        assert F.dropout(x, 0.5, training=False) is x

    def test_zero_p_identity(self):
        x = Tensor(np.ones((4, 4)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng).data
        assert abs(out.mean() - 1.0) < 0.02

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)


def naive_conv2d(x, w, b, stride=1, padding=0):
    """Reference direct convolution for validation."""
    if padding:
        x = np.pad(x, [(0, 0), (0, 0), (padding, padding),
                       (padding, padding)])
    n, c_in, h, wd = x.shape
    c_out, _, kh, kw = w.shape
    oh = (h - kh) // stride + 1
    ow = (wd - kw) // stride + 1
    out = np.zeros((n, c_out, oh, ow))
    for ni in range(n):
        for co in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = x[ni, :, i * stride:i * stride + kh,
                              j * stride:j * stride + kw]
                    out[ni, co, i, j] = (patch * w[co]).sum()
            if b is not None:
                out[ni, co] += b[co]
    return out


class TestConv2d:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b)).data
        assert np.allclose(out, naive_conv2d(x, w, b), atol=1e-10)

    def test_matches_naive_stride_padding(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 7, 7))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1).data
        assert np.allclose(out, naive_conv2d(x, w, None, 2, 1), atol=1e-10)

    def test_gradients_match_finite_diff(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3))
        b = rng.normal(size=2)
        tx = Tensor(x.copy(), requires_grad=True)
        tw = Tensor(w.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        F.conv2d(tx, tw, tb, padding=1).sum().backward()
        eps = 1e-6
        for arr, tensor in ((x, tx), (w, tw), (b, tb)):
            num = np.zeros_like(arr)
            for i in np.ndindex(*arr.shape):
                ap = arr.copy(); ap[i] += eps
                am = arr.copy(); am[i] -= eps
                args = {id(x): ap if arr is x else x,
                        id(w): ap if arr is w else w,
                        id(b): ap if arr is b else b}
                fp = F.conv2d(Tensor(args[id(x)]), Tensor(args[id(w)]),
                              Tensor(args[id(b)]), padding=1).sum().item()
                args2 = {id(x): am if arr is x else x,
                         id(w): am if arr is w else w,
                         id(b): am if arr is b else b}
                fm = F.conv2d(Tensor(args2[id(x)]), Tensor(args2[id(w)]),
                              Tensor(args2[id(b)]), padding=1).sum().item()
                num[i] = (fp - fm) / (2 * eps)
            assert np.allclose(tensor.grad, num, atol=1e-5)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4))),
                     Tensor(np.zeros((2, 4, 3, 3))))

    def test_non_nchw_raises(self):
        with pytest.raises(ValueError, match="NCHW"):
            F.conv2d(Tensor(np.zeros((3, 4, 4))),
                     Tensor(np.zeros((2, 3, 3, 3))))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_routes_to_max(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        assert np.array_equal(t.grad[0, 0], expected)

    def test_max_pool_rejects_nondivisible(self):
        with pytest.raises(NotImplementedError):
            F.max_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)

    def test_global_avg_pool(self):
        x = np.arange(8.0).reshape(1, 2, 2, 2)
        out = F.global_avg_pool2d(Tensor(x)).data
        assert np.allclose(out, [[1.5, 5.5]])


class TestLinearFn:
    def test_matches_manual(self):
        rng = np.random.default_rng(0)
        x, w, b = (rng.normal(size=(4, 3)), rng.normal(size=(2, 3)),
                   rng.normal(size=2))
        out = F.linear(Tensor(x), Tensor(w), Tensor(b)).data
        assert np.allclose(out, x @ w.T + b)

    def test_no_bias(self):
        x, w = np.ones((2, 3)), np.ones((4, 3))
        assert np.allclose(F.linear(Tensor(x), Tensor(w)).data, 3.0)
