"""Tests for repro.core.contrastive (Algorithm 2 and Corollaries 1–2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contrastive import (contrastive_sampling,
                                    expected_contrastive_distribution,
                                    label_distribution, prob_class_absent)
from repro.index.classindex import ClassFeatureIndex


def make_index(n_classes=3, per_class=10, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    # Class c lives around c * 10 in every coordinate.
    features = np.concatenate([
        rng.normal(c * 10.0, 0.5, size=(per_class, dim))
        for c in range(n_classes)])
    labels = np.repeat(np.arange(n_classes), per_class)
    return features, labels, ClassFeatureIndex(features, labels)


class TestContrastiveSampling:
    def test_returns_k_per_ambiguous_sample(self, rng):
        features, labels, index = make_index()
        amb_features = np.zeros((5, 4))
        amb_labels = np.zeros(5, dtype=int)
        out = contrastive_sampling(amb_features, amb_labels, index,
                                   np.eye(3), k=3, rng=rng)
        assert len(out) == 15

    def test_identity_prob_selects_same_class(self, rng):
        features, labels, index = make_index()
        amb_features = np.full((4, 4), 10.0)  # near class 1
        amb_labels = np.full(4, 1, dtype=int)
        out = contrastive_sampling(amb_features, amb_labels, index,
                                   np.eye(3), k=2, rng=rng)
        assert (labels[out.indices] == 1).all()

    def test_nearest_selection(self, rng):
        features, labels, index = make_index()
        query = features[labels == 2][0]
        out = contrastive_sampling(query[None, :], np.array([2]), index,
                                   np.eye(3), k=1, rng=rng)
        # The single nearest class-2 sample to itself is itself.
        assert out.indices[0] == np.nonzero(labels == 2)[0][0]

    def test_probability_label_redirects_class(self, rng):
        features, labels, index = make_index()
        # Observed label 0 always truly class 2.
        cond = np.array([[0.0, 0.0, 1.0],
                         [0.0, 1.0, 0.0],
                         [0.0, 0.0, 1.0]])
        out = contrastive_sampling(np.zeros((6, 4)), np.zeros(6, dtype=int),
                                   index, cond, k=2, rng=rng)
        assert (labels[out.indices] == 2).all()
        assert (out.target_labels == 2).all()

    def test_enld4_mode_uses_observed_label(self, rng):
        features, labels, index = make_index()
        cond = np.array([[0.0, 0.0, 1.0],
                         [0.0, 1.0, 0.0],
                         [0.0, 0.0, 1.0]])
        out = contrastive_sampling(np.zeros((6, 4)), np.zeros(6, dtype=int),
                                   index, cond, k=2, rng=rng,
                                   use_probability_label=False)
        assert (labels[out.indices] == 0).all()

    def test_empty_ambiguous_set(self, rng):
        _, _, index = make_index()
        out = contrastive_sampling(np.zeros((0, 4)),
                                   np.zeros(0, dtype=int), index,
                                   np.eye(3), k=3, rng=rng)
        assert len(out) == 0

    def test_empty_index(self, rng):
        index = ClassFeatureIndex(np.zeros((0, 4)), np.zeros(0, dtype=int))
        out = contrastive_sampling(np.zeros((2, 4)), np.zeros(2, dtype=int),
                                   index, np.eye(3), k=3, rng=rng)
        assert len(out) == 0

    def test_multiplicity_acts_as_weights(self, rng):
        features, labels, index = make_index(per_class=2)
        # Many ambiguous samples at the same spot → same neighbours
        # repeatedly chosen.
        out = contrastive_sampling(np.full((10, 4), 10.0),
                                   np.ones(10, dtype=int), index,
                                   np.eye(3), k=2, rng=rng)
        uniq, counts = out.unique_counts()
        assert counts.max() > 1
        assert counts.sum() == len(out)

    def test_alignment_check(self, rng):
        _, _, index = make_index()
        with pytest.raises(ValueError):
            contrastive_sampling(np.zeros((2, 4)), np.zeros(3, dtype=int),
                                 index, np.eye(3), k=1, rng=rng)


class TestCorollaries:
    def test_prob_class_absent_formula(self):
        assert prob_class_absent(0.9, 3) == pytest.approx(0.1 ** 3)
        assert prob_class_absent(1.0, 5) == 0.0
        assert prob_class_absent(0.0, 5) == 1.0
        assert prob_class_absent(0.5, 0) == 1.0

    def test_prob_class_absent_validation(self):
        with pytest.raises(ValueError):
            prob_class_absent(1.5, 2)
        with pytest.raises(ValueError):
            prob_class_absent(0.5, -1)

    @given(st.floats(0.01, 0.99), st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_prob_absent_decreases_with_count(self, p, n):
        assert prob_class_absent(p, n + 1) <= prob_class_absent(p, n)

    def test_corollary2_identity(self):
        """With P̃ = identity, E(L(C)) equals L(A)."""
        dist = np.array([0.5, 0.3, 0.2])
        out = expected_contrastive_distribution(dist, np.eye(3))
        assert np.allclose(out, dist)

    def test_corollary2_total_probability(self):
        cond = np.array([[0.7, 0.3], [0.1, 0.9]])
        dist = np.array([4.0, 6.0])
        out = expected_contrastive_distribution(dist, cond)
        assert np.allclose(out.sum(), 1.0)
        assert np.allclose(out, [0.4 * 0.7 + 0.6 * 0.1,
                                 0.4 * 0.3 + 0.6 * 0.9])

    def test_corollary2_matches_sampling(self):
        """Empirical contrastive label distribution ≈ Corollary 2."""
        rng = np.random.default_rng(0)
        features, labels, index = make_index(per_class=30)
        cond = np.array([[0.6, 0.2, 0.2],
                         [0.1, 0.8, 0.1],
                         [0.25, 0.25, 0.5]])
        amb_labels = rng.integers(0, 3, size=3000)
        amb_features = rng.normal(10.0, 5.0, size=(3000, 4))
        out = contrastive_sampling(amb_features, amb_labels, index, cond,
                                   k=1, rng=rng)
        expected = expected_contrastive_distribution(
            label_distribution(amb_labels, 3), cond)
        empirical = label_distribution(out.target_labels, 3)
        assert np.allclose(empirical, expected, atol=0.03)

    def test_corollary2_validation(self):
        with pytest.raises(ValueError):
            expected_contrastive_distribution(np.zeros(3), np.eye(2))
        with pytest.raises(ValueError):
            expected_contrastive_distribution(np.zeros(2), np.eye(2))

    def test_label_distribution(self):
        out = label_distribution(np.array([0, 0, 2]), 3)
        assert np.allclose(out, [2 / 3, 0, 1 / 3])
        assert label_distribution(np.array([], dtype=int), 2).sum() == 0
