"""Tests for repro.nn.data (LabeledDataset, DataLoader, splits)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.data import DataLoader, LabeledDataset, train_test_split


def make_dataset(n=20, classes=4, seed=0):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n, 3))
    y = gen.integers(0, classes, size=n)
    return LabeledDataset(x, y, true_y=y.copy(), name="t")


class TestLabeledDataset:
    def test_basic_properties(self):
        ds = make_dataset(15, classes=4)
        assert len(ds) == 15
        assert ds.feature_dim == 3
        assert ds.num_classes == int(ds.y.max()) + 1

    def test_auto_ids_sequential(self):
        ds = make_dataset(5)
        assert np.array_equal(ds.ids, np.arange(5))

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="1-D"):
            LabeledDataset(np.zeros((2, 2)), np.zeros((2, 1), dtype=int))
        with pytest.raises(ValueError, match="rows"):
            LabeledDataset(np.zeros((3, 2)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError, match="true_y"):
            LabeledDataset(np.zeros((2, 2)), np.zeros(2, dtype=int),
                           true_y=np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="ids"):
            LabeledDataset(np.zeros((2, 2)), np.zeros(2, dtype=int),
                           ids=np.zeros(3, dtype=int))

    def test_subset_preserves_ids_and_truth(self):
        ds = make_dataset(10)
        sub = ds.subset([2, 5, 7])
        assert np.array_equal(sub.ids, [2, 5, 7])
        assert np.array_equal(sub.true_y, ds.true_y[[2, 5, 7]])

    def test_mask_equivalent_to_subset(self):
        ds = make_dataset(8)
        mask = ds.y == ds.y[0]
        assert np.array_equal(ds.mask(mask).ids,
                              ds.subset(np.nonzero(mask)[0]).ids)

    def test_mask_shape_check(self):
        ds = make_dataset(4)
        with pytest.raises(ValueError):
            ds.mask(np.ones(5, dtype=bool))

    def test_concat(self):
        a, b = make_dataset(4, seed=1), make_dataset(6, seed=2)
        c = a.concat(b)
        assert len(c) == 10
        assert np.array_equal(c.y, np.concatenate([a.y, b.y]))

    def test_concat_drops_truth_if_either_missing(self):
        a = make_dataset(3)
        b = LabeledDataset(np.zeros((2, 3)), np.zeros(2, dtype=int))
        assert a.concat(b).true_y is None

    def test_with_labels(self):
        ds = make_dataset(5)
        new = ds.with_labels(np.zeros(5, dtype=int))
        assert (new.y == 0).all()
        assert np.array_equal(new.true_y, ds.true_y)  # truth kept
        with pytest.raises(ValueError):
            ds.with_labels(np.zeros(6, dtype=int))

    def test_flat_x(self):
        ds = LabeledDataset(np.zeros((4, 2, 3)), np.zeros(4, dtype=int))
        assert ds.flat_x().shape == (4, 6)

    def test_class_counts(self):
        ds = LabeledDataset(np.zeros((5, 1)), np.array([0, 0, 1, 2, 2]))
        assert np.array_equal(ds.class_counts(), [2, 1, 2])
        assert np.array_equal(ds.class_counts(num_classes=5), [2, 1, 2, 0, 0])

    def test_labels_present(self):
        ds = LabeledDataset(np.zeros((3, 1)), np.array([5, 1, 5]))
        assert np.array_equal(ds.labels_present(), [1, 5])

    def test_noise_mask_and_rate(self):
        ds = LabeledDataset(np.zeros((4, 1)), np.array([0, 1, 1, 0]),
                            true_y=np.array([0, 1, 0, 1]))
        assert np.array_equal(ds.noise_mask(), [False, False, True, True])
        assert ds.noise_rate() == 0.5

    def test_noise_mask_requires_truth(self):
        ds = LabeledDataset(np.zeros((2, 1)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError, match="ground truth"):
            ds.noise_mask()

    def test_empty_dataset_noise_rate(self):
        ds = LabeledDataset(np.zeros((0, 1)), np.zeros(0, dtype=int),
                            true_y=np.zeros(0, dtype=int))
        assert ds.noise_rate() == 0.0


class TestDataLoader:
    def test_batch_count(self):
        ds = make_dataset(10)
        assert len(DataLoader(ds, batch_size=3)) == 4
        assert len(DataLoader(ds, batch_size=3, drop_last=True)) == 3

    def test_batches_cover_everything_unshuffled(self):
        ds = make_dataset(10)
        loader = DataLoader(ds, batch_size=4, shuffle=False)
        xs = np.concatenate([xb for xb, _ in loader])
        assert np.array_equal(xs, ds.x)

    def test_shuffle_is_seeded(self):
        ds = make_dataset(16)
        a = [yb.tolist() for _, yb in
             DataLoader(ds, 4, rng=np.random.default_rng(5))]
        b = [yb.tolist() for _, yb in
             DataLoader(ds, 4, rng=np.random.default_rng(5))]
        assert a == b

    def test_shuffle_permutes(self):
        ds = make_dataset(64)
        loader = DataLoader(ds, 64, rng=np.random.default_rng(0))
        (_, yb), = list(loader)
        assert sorted(yb.tolist()) == sorted(ds.y.tolist())

    def test_drop_last_drops_remainder(self):
        ds = make_dataset(10)
        loader = DataLoader(ds, 4, shuffle=False, drop_last=True)
        total = sum(len(xb) for xb, _ in loader)
        assert total == 8

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(4), batch_size=0)


class TestTrainTestSplit:
    def test_partition(self, rng):
        ds = make_dataset(30)
        train, test = train_test_split(ds, 0.3, rng)
        assert len(train) + len(test) == 30
        assert set(train.ids) & set(test.ids) == set()
        assert len(test) == 9

    def test_stratified_preserves_proportions(self, rng):
        y = np.repeat(np.arange(3), 20)
        ds = LabeledDataset(np.zeros((60, 2)), y)
        train, test = train_test_split(ds, 0.25, rng, stratify=True)
        assert np.array_equal(np.bincount(test.y), [5, 5, 5])

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_test_split(make_dataset(4), 0.0, rng)
        with pytest.raises(ValueError):
            train_test_split(make_dataset(4), 1.0, rng)

    @given(st.integers(10, 60), st.floats(0.1, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_partition_property(self, n, frac):
        ds = make_dataset(n)
        train, test = train_test_split(ds, frac, np.random.default_rng(0))
        ids = np.concatenate([train.ids, test.ids])
        assert sorted(ids.tolist()) == list(range(n))
