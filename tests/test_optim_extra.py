"""Additional optimiser-path tests (Nesterov momentum, LR interplay)."""

import numpy as np

from repro.nn.optim import SGD
from repro.nn.tensor import Tensor


class TestNesterov:
    def test_nesterov_differs_from_plain_momentum(self):
        def run(nesterov):
            p = Tensor(np.array([0.0]), requires_grad=True)
            opt = SGD([p], lr=0.1, momentum=0.9, nesterov=nesterov)
            for _ in range(3):
                p.grad = np.array([1.0])
                opt.step()
            return p.data[0]

        assert run(True) != run(False)

    def test_nesterov_first_step(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=1.0, momentum=0.5, nesterov=True)
        p.grad = np.array([1.0])
        opt.step()
        # v = 1; update = grad + mu*v = 1.5
        assert np.allclose(p.data, [-1.5])

    def test_nesterov_converges_on_quadratic(self):
        p = Tensor(np.array([4.0]), requires_grad=True)
        opt = SGD([p], lr=0.05, momentum=0.9, nesterov=True)
        for _ in range(150):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 0.05


class TestLRMutation:
    def test_manual_lr_change_takes_effect(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        p.grad = np.array([1.0])
        opt.step()
        opt.lr = 0.1
        p.grad = np.array([1.0])
        opt.step()
        assert np.allclose(p.data, [-1.1])
