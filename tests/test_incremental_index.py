"""Incremental index maintenance ≡ fresh rebuild, and end-to-end
verdict parity across index backends and cache settings."""

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.enld import ENLD
from repro.datasets import generate, split_inventory_incremental, toy
from repro.index.classindex import ClassFeatureIndex
from repro.noise import corrupt_labels, pair_asymmetric

BACKENDS = ("kdtree", "balltree", "brute", "auto")


def _features_labels(n, d, num_classes, seed):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=(n, d)),
            rng.integers(num_classes, size=n))


def _assert_same_answers(a: ClassFeatureIndex, b: ClassFeatureIndex,
                         queries, classes, k=3):
    ra = a.query_batch(queries, classes, k)
    rb = b.query_batch(queries, classes, k)
    for (da, ia), (db, ib) in zip(ra, rb):
        assert np.array_equal(ia, ib)
        assert np.array_equal(da, db)


class TestIncrementalEqualsRebuild:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_add_matches_fresh_build(self, backend):
        f1, y1 = _features_labels(120, 6, 4, seed=1)
        f2, y2 = _features_labels(50, 6, 4, seed=2)
        grown = ClassFeatureIndex(f1, y1, backend=backend)
        grown.add(f2, y2)
        fresh = ClassFeatureIndex(np.concatenate([f1, f2]),
                                  np.concatenate([y1, y2]),
                                  backend=backend)
        queries, classes = _features_labels(25, 6, 4, seed=3)
        _assert_same_answers(grown, fresh, queries, classes)
        assert grown.total_indexed() == fresh.total_indexed() == 170

    @pytest.mark.parametrize("backend", ("kdtree", "brute"))
    def test_add_introduces_new_class(self, backend):
        f1, y1 = _features_labels(60, 5, 2, seed=4)
        f2 = np.random.default_rng(5).normal(size=(20, 5))
        y2 = np.full(20, 7)
        grown = ClassFeatureIndex(f1, y1, backend=backend)
        assert grown.backend_for(7) is None
        grown.add(f2, y2)
        assert 7 in grown.classes
        d, pos = grown.query(f2[3], 7, k=1)
        assert pos[0] == 60 + 3 and np.isclose(d[0], 0.0)

    def test_add_preserves_source_indices(self):
        f1, y1 = _features_labels(30, 4, 3, seed=6)
        src1 = np.arange(100, 130)
        index = ClassFeatureIndex(f1, y1, source_indices=src1,
                                  backend="brute")
        f2, y2 = _features_labels(10, 4, 3, seed=7)
        index.add(f2, y2, source_indices=np.arange(500, 510))
        d, pos = index.query(f2[0], int(y2[0]), k=1)
        assert pos[0] == 500

    def test_add_empty_batch_is_noop(self):
        f1, y1 = _features_labels(30, 4, 3, seed=8)
        index = ClassFeatureIndex(f1, y1, backend="auto")
        index.add(np.empty((0, 4)), np.empty(0, dtype=int))
        assert index.total_indexed() == 30

    def test_add_validates_shapes(self):
        f1, y1 = _features_labels(10, 4, 2, seed=9)
        index = ClassFeatureIndex(f1, y1)
        with pytest.raises(ValueError):
            index.add(np.zeros((2, 5)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            index.add(np.zeros((2, 4)), np.zeros(3, dtype=int))

    @pytest.mark.parametrize("backend", ("balltree", "brute"))
    def test_merge_matches_fresh_build(self, backend):
        f1, y1 = _features_labels(80, 6, 3, seed=10)
        f2, y2 = _features_labels(40, 6, 3, seed=11)
        left = ClassFeatureIndex(f1, y1, backend=backend,
                                 source_indices=np.arange(80))
        right = ClassFeatureIndex(f2, y2, backend=backend,
                                  source_indices=np.arange(80, 120))
        left.merge(right)
        fresh = ClassFeatureIndex(np.concatenate([f1, f2]),
                                  np.concatenate([y1, y2]),
                                  backend=backend)
        queries, classes = _features_labels(20, 6, 3, seed=12)
        _assert_same_answers(left, fresh, queries, classes)

    def test_merge_rejects_dim_mismatch(self):
        a = ClassFeatureIndex(*_features_labels(10, 4, 2, seed=13))
        b = ClassFeatureIndex(*_features_labels(10, 5, 2, seed=14))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_brute_classes_extend_in_place(self):
        f1, y1 = _features_labels(40, 64, 2, seed=15)
        index = ClassFeatureIndex(f1, y1, backend="auto")
        trees_before = {c: index._trees[c] for c in index.classes}
        f2, y2 = _features_labels(10, 64, 2, seed=16)
        index.add(f2, y2)
        for c in index.classes:
            assert index._trees[c] is trees_before[c]


class TestDetectionVerdictParity:
    """ENLD.detect flags must be byte-identical across backends/cache."""

    @pytest.fixture(scope="class")
    def world(self):
        data = generate(toy(num_classes=4, samples_per_class=40), seed=3)
        rng = np.random.default_rng(4)
        inventory_clean, pool = split_inventory_incremental(data, rng)
        transition = pair_asymmetric(4, 0.2)
        inventory = corrupt_labels(inventory_clean, transition, rng)
        arrivals = [
            corrupt_labels(pool.subset(np.arange(i * 20, (i + 1) * 20),
                                       name=f"d{i}"),
                           transition, np.random.default_rng(5 + i))
            for i in range(2)
        ]
        return inventory, arrivals

    def _run(self, world, **overrides):
        inventory, arrivals = world
        config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 16},
                            init_epochs=2, iterations=2, seed=6,
                            **overrides)
        enld = ENLD(config).initialize(inventory, num_classes=4)
        out = []
        for arrival in arrivals:
            r = enld.detect(arrival)
            out.append((r.clean_mask.tobytes(), r.noisy_mask.tobytes(),
                        r.inventory_clean_positions.tobytes(),
                        r.pseudo_labels.tobytes()))
        out.append(enld._rng.bit_generator.state["state"])
        return out

    def test_all_modes_bit_identical(self, world):
        reference = self._run(world)  # auto + cache (defaults)
        for overrides in (
                dict(index_backend="kdtree", feature_cache=False),
                dict(index_backend="balltree"),
                dict(index_backend="brute", feature_cache_entries=0),
                dict(use_kdtree=False),
        ):
            assert self._run(world, **overrides) == reference, overrides
