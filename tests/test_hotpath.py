"""The hot-path A/B bench harness and its perf-bench gate logic."""

import numpy as np
import pytest

from repro.core.samplesets import compute_view
from repro.experiments.hotpath import (HOTPATH_SPEEDUP_FLOOR,
                                       baseline_payload,
                                       format_hotpath_report, gate_hotpath,
                                       run_hotpath_bench, seed_cost_structure)
from repro.nn.models import build_model


def _result(**overrides):
    base = {
        "meta": {"seed": 11},
        "legacy": {"setup_seconds": 1.0, "arrival_seconds": [0.5, 0.4],
                   "mean_arrival_seconds": 0.4},
        "hot": {"setup_seconds": 1.0, "arrival_seconds": [0.2, 0.1],
                "mean_arrival_seconds": 0.1, "feature_cache": None},
        "speedup": 4.0,
        "verdicts_identical": True,
        "stage_seconds": {},
        "trace": {"spans": {}, "counters": {}},
        "counters": {"classindex.queries": 100},
        "fig12": {"4": {"kdtree_seconds": 0.4, "brute_seconds": 0.01,
                        "speedup": 40.0}},
    }
    base.update(overrides)
    return base


def _baseline():
    return baseline_payload(_result())


class TestGate:
    def test_passes_on_matching_run(self):
        assert gate_hotpath(_result(), _baseline()) == []

    def test_flags_verdict_mismatch(self):
        violations = gate_hotpath(_result(verdicts_identical=False),
                                  _baseline())
        assert any("verdict parity" in v for v in violations)

    def test_flags_floor_breach(self):
        violations = gate_hotpath(_result(speedup=2.0), _baseline())
        assert any("floor" in v for v in violations)

    def test_flags_regression_from_baseline(self):
        baseline = _baseline()
        baseline["speedup"] = 8.0
        violations = gate_hotpath(_result(speedup=4.0), baseline)
        assert any("regressed" in v for v in violations)

    def test_tolerates_small_speedup_drift(self):
        baseline = _baseline()
        baseline["speedup"] = 4.4
        assert gate_hotpath(_result(speedup=4.0), baseline) == []

    def test_flags_counter_drift(self):
        violations = gate_hotpath(
            _result(counters={"classindex.queries": 10}), _baseline())
        assert any("classindex.queries" in v for v in violations)

    def test_flags_fig12_inversion(self):
        result = _result()
        result["fig12"]["4"]["speedup"] = 0.5
        violations = gate_hotpath(result, _baseline())
        assert any("fig12" in v for v in violations)

    def test_baseline_payload_carries_floor(self):
        assert _baseline()["floor"] == HOTPATH_SPEEDUP_FLOOR


class TestHarness:
    def test_seed_cost_structure_restores(self):
        before = compute_view
        import repro.core.detector as det
        with seed_cost_structure():
            assert det.compute_view is not before
        assert det.compute_view is before

    def test_twopass_matches_fused(self):
        from repro.experiments.hotpath import _twopass_view
        from repro.nn.data import LabeledDataset

        rng = np.random.default_rng(0)
        model = build_model("mlp", 8, 3, rng=rng, hidden=16)
        data = LabeledDataset(rng.normal(size=(30, 8)),
                              rng.integers(3, size=30))
        legacy = _twopass_view(model, data)
        fused = compute_view(model, data)
        assert np.array_equal(legacy.probs, fused.probs)
        assert np.array_equal(legacy.features, fused.features)

    def test_tiny_end_to_end_run(self):
        result = run_hotpath_bench(samples_per_class=300, num_arrivals=2,
                                   arrival_size=40)
        assert result["verdicts_identical"]
        assert result["speedup"] > 0
        assert result["counters"]["classindex.queries"] > 0
        assert set(result["fig12"]) == {"1", "4", "8"}
        assert "detect" in result["stage_seconds"]
        report = format_hotpath_report(result)
        assert "per-arrival" in report and "fig12" in report

    def test_world_rejects_oversubscribed_pool(self):
        from repro.experiments.hotpath import build_world
        with pytest.raises(ValueError, match="pool"):
            build_world(samples_per_class=30, num_arrivals=10,
                        arrival_size=100)
