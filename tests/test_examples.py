"""Smoke tests: every shipped example must run cleanly end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_scores():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=600)
    assert "precision=" in proc.stdout
    assert "f1=" in proc.stdout
