"""Tests for repro.datalake.ingest (concurrent submission pipeline)."""

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.scheduler import EveryNArrivals
from repro.datalake import (ArrivalStream, IngestConfig, IngestPipeline,
                            NO_WAIT_RETRY, NoisyLabelPlatform,
                            ShardedInventory, arrival_rng)
from repro.datalake.ingest import retry_detect
from repro.datasets import generate, split_inventory_incremental, toy
from repro.datasets.splits import ShardPlan
from repro.nn.data import LabeledDataset
from repro.noise import corrupt_labels, pair_asymmetric
from repro.obs import Tracer, use_tracer


@pytest.fixture(scope="module")
def world():
    data = generate(toy(num_classes=6, samples_per_class=80), seed=60)
    rng = np.random.default_rng(61)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, 0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    stream = ArrivalStream(pool,
                           ShardPlan(num_shards=6, classes_per_shard=3),
                           transition=transition, seed=62)
    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 32},
                        init_epochs=4, iterations=1,
                        steps_per_iteration=2, warmup_epochs=0,
                        contrastive_k=2, seed=63)
    return {"inventory": inventory, "stream": stream, "config": config}


def make_platform(world, **kwargs):
    kwargs.setdefault("retry", NO_WAIT_RETRY)
    return NoisyLabelPlatform(world["inventory"], config=world["config"],
                              **kwargs)


def _fingerprints(report):
    """name -> verdict fingerprint, interleaving-independent."""
    prints = {}
    for name, sub in report.reports.items():
        if sub.quarantined:
            prints[name] = "quarantined"
            continue
        r = sub.result
        pseudo = (b"" if r.pseudo_labels is None
                  else np.asarray(r.pseudo_labels).tobytes())
        prints[name] = (r.clean_mask.tobytes(), r.noisy_mask.tobytes(),
                        np.sort(r.inventory_clean_positions).tobytes(),
                        pseudo)
    return prints


# ----------------------------------------------------------------------
# RNG derivation + stream splitting
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_arrival_rng_is_keyed_not_ordered(self):
        a = arrival_rng(7, "shard-3").random(4)
        b = arrival_rng(7, "shard-3").random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, arrival_rng(7, "shard-4").random(4))
        assert not np.array_equal(
            a, arrival_rng(7, "shard-3", attempt=1).random(4))

    def test_split_partitions_bit_identically(self, world):
        parent = world["stream"].arrivals()
        children = world["stream"].split(3)
        assert sum(len(c) for c in children) == len(parent)
        # Child i holds parent arrivals i, i+3, i+6, ... unchanged.
        for i, child in enumerate(children):
            for j, arrival in enumerate(child.arrivals()):
                source = parent[i + 3 * j]
                assert arrival.name == source.name
                assert np.array_equal(arrival.x, source.x)
                assert np.array_equal(arrival.y, source.y)
                assert np.array_equal(arrival.ids, source.ids)

    def test_split_validates(self, world):
        with pytest.raises(ValueError):
            world["stream"].split(0)


# ----------------------------------------------------------------------
# Retry ladder
# ----------------------------------------------------------------------
class TestRetryDetect:
    def test_flaky_detect_retries_then_succeeds(self, world):
        platform = make_platform(world)
        calls = []

        def flaky(dataset, rng):
            calls.append(rng.random())
            if len(calls) < 2:
                raise RuntimeError("transient")
            return platform.enld.detect_stateless(dataset, rng)

        arrival = world["stream"].arrivals()[0]
        result, retries, failures, degraded = retry_detect(
            flaky, platform.enld.model, arrival,
            world["config"].seed, NO_WAIT_RETRY, True)
        assert retries == 1 and not degraded
        assert len(failures) == 1 and "transient" in failures[0].error
        # Attempt 1 drew from a different derived stream than attempt 0.
        assert calls[0] != calls[1]
        reference = platform.enld.detect_stateless(
            arrival, arrival_rng(world["config"].seed, arrival.name,
                                 attempt=1))
        assert np.array_equal(result.clean_mask, reference.clean_mask)

    def test_exhausted_budget_degrades_to_coarse(self, world):
        platform = make_platform(world)

        def broken(dataset, rng):
            raise RuntimeError("permanent")

        arrival = world["stream"].arrivals()[0]
        result, retries, failures, degraded = retry_detect(
            broken, platform.enld.model, arrival,
            world["config"].seed, NO_WAIT_RETRY, True)
        assert degraded and result.detector_name == "coarse-fallback"
        assert len(failures) == 1 + NO_WAIT_RETRY.max_retries
        with pytest.raises(RuntimeError, match="permanent"):
            retry_detect(broken, platform.enld.model, arrival,
                         world["config"].seed, NO_WAIT_RETRY, False)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestIngestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            IngestConfig(mode="fork")
        with pytest.raises(ValueError):
            IngestConfig(workers=0)
        with pytest.raises(ValueError):
            IngestConfig(queue_capacity=0)


# ----------------------------------------------------------------------
# Storm: concurrent == sequential
# ----------------------------------------------------------------------
class TestStormParity:
    def test_thread_storm_matches_serial_bit_for_bit(self, world):
        streams = world["stream"].split(3)
        serial = IngestPipeline(
            make_platform(world),
            IngestConfig(mode="serial")).run(streams)
        concurrent = IngestPipeline(
            make_platform(world),
            IngestConfig(mode="thread", workers=2,
                         queue_capacity=4)).run(streams)
        assert serial.datasets == concurrent.datasets == 6
        assert serial.samples == concurrent.samples
        assert serial.quarantined == concurrent.quarantined == 0
        serial_prints = _fingerprints(serial)
        mismatch = [n for n, p in _fingerprints(concurrent).items()
                    if serial_prints[n] != p]
        assert mismatch == []

    def test_platform_state_matches_serial(self, world):
        streams = world["stream"].split(2)
        serial_platform = make_platform(world)
        IngestPipeline(serial_platform,
                       IngestConfig(mode="serial")).run(streams)
        storm_platform = make_platform(world)
        IngestPipeline(storm_platform,
                       IngestConfig(mode="thread", workers=3,
                                    queue_capacity=3)).run(streams)
        assert (storm_platform.submissions
                == serial_platform.submissions == 6)
        assert np.array_equal(
            np.sort(storm_platform.catalog.clean_inventory_ids),
            np.sort(serial_platform.catalog.clean_inventory_ids))
        # Commit order follows admission order, which races across
        # producers — the processed *set* is what must agree.
        assert (sorted(storm_platform.catalog.processed_names)
                == sorted(serial_platform.catalog.processed_names))

    def test_backpressure_caps_queue_depth(self, world):
        streams = world["stream"].split(3)
        report = IngestPipeline(
            make_platform(world),
            IngestConfig(mode="thread", workers=2,
                         queue_capacity=2)).run(streams)
        assert report.datasets == 6
        assert 1 <= report.max_queue_depth <= 2
        assert report.max_inflight <= 2
        assert report.seconds > 0
        assert report.datasets_per_second > 0
        assert report.samples_per_second > 0

    def test_gauges_and_counters_emitted(self, world):
        tracer = Tracer()
        with use_tracer(tracer):
            IngestPipeline(
                make_platform(world),
                IngestConfig(mode="thread", workers=2,
                             queue_capacity=4)
            ).run(world["stream"].split(2))
        snapshot = tracer.to_dict()
        assert snapshot["counters"]["ingest.datasets"] == 6
        assert snapshot["counters"]["ingest.samples"] > 0
        assert "ingest.queue_depth" in snapshot["metrics"]
        assert "ingest.inflight_workers" in snapshot["metrics"]
        work = tracer.stage_work()
        assert any(path.split("/")[0] == "ingest_run" for path in work)
        assert any("detect" in path for path in work)


# ----------------------------------------------------------------------
# Quarantine + absorption under concurrency
# ----------------------------------------------------------------------
class TestStormResilience:
    def test_quarantine_under_concurrency(self, world):
        arrivals = world["stream"].arrivals()
        bad_x = np.full_like(arrivals[1].x, np.nan)
        bad = LabeledDataset(bad_x, arrivals[1].y, ids=arrivals[1].ids,
                             name="storm/poison")
        streams = [[arrivals[0], bad], [arrivals[2], arrivals[3]]]
        platform = make_platform(world)
        report = IngestPipeline(
            platform, IngestConfig(mode="thread", workers=2,
                                   queue_capacity=2)).run(streams)
        assert report.datasets == 4
        assert report.quarantined == 1
        assert report.reports["storm/poison"].quarantined
        assert platform.catalog.quarantined_names == ["storm/poison"]
        assert all(report.reports[a.name].ok
                   for a in (arrivals[0], arrivals[2], arrivals[3]))

    def test_absorb_grows_sharded_archive(self, world):
        store = ShardedInventory.from_dataset(world["inventory"],
                                              num_classes=6)
        platform = NoisyLabelPlatform(store, config=world["config"],
                                      retry=NO_WAIT_RETRY)
        report = IngestPipeline(
            platform,
            IngestConfig(mode="thread", workers=2, queue_capacity=4,
                         absorb=True)).run(world["stream"].split(2))
        clean = sum(r.result.num_clean for r in report.reports.values())
        assert clean > 0
        assert len(store) == len(world["inventory"]) + clean

    def test_duplicate_names_raise_in_every_mode(self, world):
        """Reports and detection RNG streams are keyed by dataset
        name; a repeated name must fail loudly instead of silently
        overwriting the first arrival's report."""
        arrivals = world["stream"].arrivals()
        dup = [arrivals[0], arrivals[0]]
        for config in (IngestConfig(mode="serial"),
                       IngestConfig(mode="thread", workers=2,
                                    queue_capacity=2)):
            platform = make_platform(world, admission=False)
            with pytest.raises(ValueError,
                               match="duplicate dataset name"):
                IngestPipeline(platform, config).run([dup])

    def test_epoch_guard_redetects_after_hot_swap(self, world):
        """A synchronous scheduler swap mid-storm must not let verdicts
        computed under the old model reach the catalog.

        One producer stream keeps the admission order deterministic
        (multiple producers race, so the swap would land after a
        different arrival pair than in the serial arm); workers still
        run ahead of the commits, which is what forces the re-judge.
        """
        streams = [world["stream"]]
        serial_platform = make_platform(
            world, scheduler=EveryNArrivals(2))
        serial = IngestPipeline(
            serial_platform, IngestConfig(mode="serial")).run(streams)
        storm_platform = make_platform(
            world, scheduler=EveryNArrivals(2))
        tracer = Tracer()
        with use_tracer(tracer):
            storm = IngestPipeline(
                storm_platform,
                IngestConfig(mode="thread", workers=2,
                             queue_capacity=4)).run(streams)
        assert (len(storm_platform.catalog.versions)
                == len(serial_platform.catalog.versions) > 1)
        serial_prints = _fingerprints(serial)
        mismatch = [n for n, p in _fingerprints(storm).items()
                    if serial_prints[n] != p]
        assert mismatch == []
        # With capacity 4 and swaps every 2 commits, some in-flight
        # detection was dispatched under a stale epoch and re-judged.
        counters = tracer.to_dict()["counters"]
        assert counters.get("ingest.epoch_redetect", 0) >= 1


# ----------------------------------------------------------------------
# Process mode (smoke — spawn cost keeps this tiny)
# ----------------------------------------------------------------------
class _InlinePool:
    """ProcessPoolExecutor stand-in running tasks inline.

    Preserves the real pool's semantics — every task detects under the
    state the initializer froze at executor creation — without the
    spawn cost, so the epoch guard is testable with a live scheduler.
    """

    def __init__(self, max_workers=None, mp_context=None,
                 initializer=None, initargs=()):
        initializer(*initargs)

    def submit(self, fn, *args):
        from concurrent.futures import Future
        future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # pragma: no cover — fail loudly
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True):
        pass


class TestProcessMode:
    def test_process_epoch_guard_pins_pool_epoch(self, world,
                                                 monkeypatch):
        """Pool workers detect under the snapshot frozen at executor
        init, so tasks must carry the *pool* epoch: a mid-storm hot
        swap then forces the owner's re-detection instead of letting a
        stale-model verdict commit under the new version."""
        import concurrent.futures
        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            _InlinePool)
        streams = [world["stream"]]
        serial = IngestPipeline(
            make_platform(world, scheduler=EveryNArrivals(2)),
            IngestConfig(mode="serial")).run(streams)
        storm_platform = make_platform(world,
                                       scheduler=EveryNArrivals(2))
        tracer = Tracer()
        with use_tracer(tracer):
            storm = IngestPipeline(
                storm_platform,
                IngestConfig(mode="process", workers=1,
                             queue_capacity=4)).run(streams)
        assert len(storm_platform.catalog.versions) > 1
        serial_prints = _fingerprints(serial)
        mismatch = [n for n, p in _fingerprints(storm).items()
                    if serial_prints[n] != p]
        assert mismatch == []
        # Detections dispatched after the swap ran under the stale
        # pool snapshot and were re-judged at commit time.
        counters = tracer.to_dict()["counters"]
        assert counters.get("ingest.epoch_redetect", 0) >= 1

    def test_process_storm_matches_serial(self, world):
        arrivals = world["stream"].arrivals()[:2]
        serial = IngestPipeline(
            make_platform(world),
            IngestConfig(mode="serial")).run([arrivals])
        storm = IngestPipeline(
            make_platform(world),
            IngestConfig(mode="process", workers=1,
                         queue_capacity=2)).run([arrivals])
        assert storm.datasets == serial.datasets == 2
        serial_prints = _fingerprints(serial)
        mismatch = [n for n, p in _fingerprints(storm).items()
                    if serial_prints[n] != p]
        assert mismatch == []
