"""Tests for the concurrency-safety analysis (REP7xx).

Covers extraction (locks, guards, spawns, blocking calls), the
whole-program index (escape reachability, lock-order graph), each of
the five rules on minimal fixture trees, the ``repro deps --locks``
CLI, cache replay of the new summary facts, and the live-tree
meta-tests that keep the real codebase REP7xx-clean.
"""

import dataclasses
import os

from repro.analysis import analyze_paths
from repro.analysis.concurrency import (concurrency_index,
                                        extract_concurrency,
                                        render_locks_dot)
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.deps import build_graph
from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LIVE_SRC = os.path.join(REPO_ROOT, "src")


def write_tree(tmp_path, files):
    """Write ``{relpath: source}`` under ``tmp_path`` and return it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return str(tmp_path)


def active_rules(result):
    return sorted({f.rule for f in result.findings
                   if f.suppressed is None})


def active(result, rule):
    return [f for f in result.findings
            if f.rule == rule and f.suppressed is None]


#: Config whose escape roots point at the fixture service below.
FIXTURE_CONFIG = dataclasses.replace(
    DEFAULT_CONFIG,
    concurrency_foreground_roots=(
        "repro.datalake.svc:Service.poll",),
    concurrency_shared_state_prefixes=("repro/datalake/",))

_SERVICE_HEADER = """\
import threading


class Service:
    def __init__(self):
        self.results = []
        self._lock = threading.Lock()

    def start(self):
        worker = threading.Thread(target=self._main)
        worker.start()

"""


def service_module(worker_body, poll_body="        return len(self.results)\n"):
    return (_SERVICE_HEADER
            + "    def _main(self):\n" + worker_body + "\n"
            + "    def poll(self):\n" + poll_body)


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
class TestExtraction:
    def parse(self, source, lines=True):
        import ast
        from repro.analysis.rules import ImportMap
        tree = ast.parse(source)
        return extract_concurrency(
            tree, ImportMap(tree),
            source.splitlines() if lines else None)

    def test_lock_acquires_and_nesting(self):
        facts = self.parse(
            "import threading\n"
            "class C:\n"
            "    def m(self):\n"
            "        with self._lock:\n"
            "            with self._swap_lock:\n"
            "                pass\n")
        assert [(a.lock, a.held) for a in facts.acquires] == [
            ("C._lock", ()), ("C._swap_lock", ("C._lock",))]

    def test_non_lock_with_is_not_an_acquire(self):
        facts = self.parse(
            "class C:\n"
            "    def m(self):\n"
            "        with open('f') as fh:\n"
            "            fh.read()\n")
        assert facts.acquires == []
        # ... but open() is recorded as a blocking call (no locks).
        assert [(b.what, b.locks) for b in facts.blocking] == [
            ("open()", ())]

    def test_guard_annotation_in_init(self):
        facts = self.parse(
            "class C:\n"
            "    def __init__(self):\n"
            "        self.items = []  # repro: guarded-by(_lock)\n")
        assert facts.guards == {"C.items": "_lock"}

    def test_guard_annotation_needs_source_lines(self):
        facts = self.parse(
            "class C:\n"
            "    def __init__(self):\n"
            "        self.items = []  # repro: guarded-by(_lock)\n",
            lines=False)
        assert facts.guards == {}

    def test_mutation_kinds(self):
        facts = self.parse(
            "class C:\n"
            "    def m(self):\n"
            "        self.a = 1\n"
            "        self.b += 1\n"
            "        self.c[0] = 1\n"
            "        self.d.append(1)\n")
        kinds = {m.attr: m.kind for m in facts.mutations}
        assert kinds == {"C.a": "assign", "C.b": "aug",
                        "C.c": "item", "C.d": "method:append"}

    def test_mutation_locks_reflect_with_scope(self):
        facts = self.parse(
            "class C:\n"
            "    def m(self):\n"
            "        with self._lock:\n"
            "            self.a = 1\n"
            "        self.b = 2\n")
        locks = {m.attr: m.locks for m in facts.mutations}
        assert locks == {"C.a": ("C._lock",), "C.b": ()}

    def test_nested_def_resets_lock_stack(self):
        # The nested function's body runs later, on an unknown thread
        # with unknown locks — a sleep inside it is not "under lock".
        facts = self.parse(
            "import time\n"
            "class C:\n"
            "    def m(self):\n"
            "        with self._lock:\n"
            "            def cb():\n"
            "                time.sleep(1)\n"
            "            return cb\n")
        assert [(b.what, b.locks) for b in facts.blocking] == [
            ("time.sleep", ())]

    def test_str_join_is_not_blocking(self):
        facts = self.parse(
            "class C:\n"
            "    def m(self, parts):\n"
            "        return ', '.join(parts)\n")
        assert facts.blocking == []

    def test_worker_join_is_blocking(self):
        facts = self.parse(
            "class C:\n"
            "    def m(self, worker):\n"
            "        with self._lock:\n"
            "            worker.join(1.0)\n")
        assert [(b.what, b.locks) for b in facts.blocking] == [
            (".join()", ("C._lock",))]

    def test_roundtrip_serialization(self):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.items = []  # repro: guarded-by(_lock)\n"
            "    def m(self):\n"
            "        with self._lock:\n"
            "            self.items.append(1)\n"
            "        threading.Thread(target=self.m)\n")
        facts = self.parse(source)
        from repro.analysis.concurrency import ModuleConcurrency
        replayed = ModuleConcurrency.from_dict(facts.to_dict())
        assert replayed.to_dict() == facts.to_dict()


class TestSpawnEncoding:
    def parse(self, source):
        import ast
        from repro.analysis.rules import ImportMap
        tree = ast.parse(source)
        return extract_concurrency(tree, ImportMap(tree),
                                   source.splitlines())

    def test_thread_bound_method_target(self):
        facts = self.parse(
            "import threading\n"
            "class C:\n"
            "    def m(self):\n"
            "        threading.Thread(target=self.w)\n")
        assert [(s.kind, s.target) for s in facts.spawns] == [
            ("thread", "self:C.w")]

    def test_process_module_level_target(self):
        facts = self.parse(
            "import multiprocessing\n"
            "def top():\n"
            "    pass\n"
            "def go():\n"
            "    multiprocessing.Process(target=top)\n")
        assert [(s.kind, s.target) for s in facts.spawns] == [
            ("process", "local:top")]

    def test_process_lambda_and_nested_targets(self):
        facts = self.parse(
            "import multiprocessing\n"
            "def go():\n"
            "    def inner():\n"
            "        pass\n"
            "    multiprocessing.Process(target=lambda: 0)\n"
            "    multiprocessing.Process(target=inner)\n")
        assert sorted(s.target for s in facts.spawns) == [
            "lambda", "nested:inner"]

    def test_ctx_process_attr_fallback(self):
        facts = self.parse(
            "import multiprocessing\n"
            "def top():\n"
            "    pass\n"
            "def go():\n"
            "    ctx = multiprocessing.get_context()\n"
            "    ctx.Process(target=top)\n")
        assert [(s.kind, s.target) for s in facts.spawns] == [
            ("process", "local:top")]


# ----------------------------------------------------------------------
# REP701: thread-escape
# ----------------------------------------------------------------------
class TestThreadEscape:
    def test_unlocked_shared_mutation_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/datalake/__init__.py": "",
            "repro/datalake/svc.py": service_module(
                "        self.results.append(1)\n"),
        })
        result = analyze_paths([root], config=FIXTURE_CONFIG)
        findings = active(result, "REP701")
        assert len(findings) == 1
        assert "Service.results" in findings[0].message
        assert "_main()" in findings[0].message

    def test_locked_mutation_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/datalake/__init__.py": "",
            "repro/datalake/svc.py": service_module(
                "        with self._lock:\n"
                "            self.results.append(1)\n"),
        })
        result = analyze_paths([root], config=FIXTURE_CONFIG)
        assert "REP701" not in active_rules(result)

    def test_guarded_attr_deferred_to_rep702(self, tmp_path):
        # A declared contract moves enforcement to REP702: the
        # unlocked write is reported once, as a contract violation.
        source = service_module(
            "        self.results.append(1)\n").replace(
            "self.results = []",
            "self.results = []  # repro: guarded-by(_lock)")
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/datalake/__init__.py": "",
            "repro/datalake/svc.py": source,
        })
        result = analyze_paths([root], config=FIXTURE_CONFIG)
        assert "REP701" not in active_rules(result)
        assert len(active(result, "REP702")) == 1

    def test_worker_private_state_clean(self, tmp_path):
        # Mutated in the worker but never touched by the foreground
        # path: not shared, not flagged.
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/datalake/__init__.py": "",
            "repro/datalake/svc.py": service_module(
                "        self.scratch = 1\n",
                poll_body="        return 0\n"),
        })
        result = analyze_paths([root], config=FIXTURE_CONFIG)
        assert "REP701" not in active_rules(result)

    def test_foreground_write_worker_read_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/datalake/__init__.py": "",
            "repro/datalake/svc.py": service_module(
                "        return len(self.results)\n",
                poll_body="        self.results.append(1)\n"),
        })
        result = analyze_paths([root], config=FIXTURE_CONFIG)
        findings = active(result, "REP701")
        assert len(findings) == 1
        assert "poll()" in findings[0].message

    def test_out_of_scope_module_clean(self, tmp_path):
        # Same race, but outside the configured shared-state prefixes.
        config = dataclasses.replace(
            FIXTURE_CONFIG,
            concurrency_foreground_roots=(
                "repro.other.svc:Service.poll",))
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/other/__init__.py": "",
            "repro/other/svc.py": service_module(
                "        self.results.append(1)\n"),
        })
        result = analyze_paths([root], config=config)
        assert "REP701" not in active_rules(result)

    def test_init_writes_exempt(self, tmp_path):
        # __init__ constructs the instance before it is shared.
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/datalake/__init__.py": "",
            "repro/datalake/svc.py": service_module(
                "        with self._lock:\n"
                "            self.results.append(1)\n"),
        })
        result = analyze_paths([root], config=FIXTURE_CONFIG)
        assert "REP701" not in active_rules(result)


# ----------------------------------------------------------------------
# REP702: guarded-by contracts
# ----------------------------------------------------------------------
GUARDED_BOX = """\
import threading


class Box:
    def __init__(self):
        self.items = []  # repro: guarded-by(_lock)
        self._lock = threading.Lock()

    def good(self):
        with self._lock:
            self.items.append(1)

"""


class TestGuardedBy:
    def test_unlocked_mutation_of_guarded_attr_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/box.py": GUARDED_BOX + (
                "    def bad(self):\n"
                "        self.items.append(2)\n"),
        })
        findings = active(analyze_paths([root]), "REP702")
        assert len(findings) == 1
        assert "bad()" in findings[0].message
        assert "guarded-by(_lock)" in findings[0].message

    def test_locked_mutations_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/box.py": GUARDED_BOX,
        })
        assert "REP702" not in active_rules(analyze_paths([root]))

    def test_wrong_lock_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/box.py": GUARDED_BOX.replace(
                "self._lock = threading.Lock()",
                "self._lock = threading.Lock()\n"
                "        self._other_lock = threading.Lock()") + (
                "    def sneaky(self):\n"
                "        with self._other_lock:\n"
                "            self.items.append(3)\n"),
        })
        findings = active(analyze_paths([root]), "REP702")
        assert len(findings) == 1
        assert "sneaky()" in findings[0].message

    def test_reassignment_is_also_a_mutation(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/box.py": GUARDED_BOX + (
                "    def reset(self):\n"
                "        self.items = []\n"),
        })
        assert len(active(analyze_paths([root]), "REP702")) == 1


# ----------------------------------------------------------------------
# REP703: lock-order cycles
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_inverted_nesting_is_a_cycle(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/locks.py": (
                "import threading\n"
                "class A:\n"
                "    def __init__(self):\n"
                "        self._a_lock = threading.Lock()\n"
                "        self._b_lock = threading.Lock()\n"
                "    def one(self):\n"
                "        with self._a_lock:\n"
                "            with self._b_lock:\n"
                "                pass\n"
                "    def two(self):\n"
                "        with self._b_lock:\n"
                "            with self._a_lock:\n"
                "                pass\n"),
        })
        findings = active(analyze_paths([root]), "REP703")
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message

    def test_consistent_nesting_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/locks.py": (
                "import threading\n"
                "class A:\n"
                "    def one(self):\n"
                "        with self._a_lock:\n"
                "            with self._b_lock:\n"
                "                pass\n"
                "    def two(self):\n"
                "        with self._a_lock:\n"
                "            with self._b_lock:\n"
                "                pass\n"),
        })
        assert "REP703" not in active_rules(analyze_paths([root]))

    def test_reacquisition_self_edge_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/locks.py": (
                "class A:\n"
                "    def re(self):\n"
                "        with self._lock:\n"
                "            with self._lock:\n"
                "                pass\n"),
        })
        findings = active(analyze_paths([root]), "REP703")
        assert len(findings) == 1
        assert "not reentrant" in findings[0].message

    def test_cycle_through_call_edge(self, tmp_path):
        # one() holds _a_lock and calls helper(), which takes _b_lock;
        # two() nests them directly in the other order.
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/locks.py": (
                "class A:\n"
                "    def one(self):\n"
                "        with self._a_lock:\n"
                "            self.helper()\n"
                "    def helper(self):\n"
                "        with self._b_lock:\n"
                "            pass\n"
                "    def two(self):\n"
                "        with self._b_lock:\n"
                "            with self._a_lock:\n"
                "                pass\n"),
        })
        findings = active(analyze_paths([root]), "REP703")
        assert len(findings) == 1

    def test_call_edge_without_inversion_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/locks.py": (
                "class A:\n"
                "    def one(self):\n"
                "        with self._a_lock:\n"
                "            self.helper()\n"
                "    def helper(self):\n"
                "        with self._b_lock:\n"
                "            pass\n"),
        })
        result = analyze_paths([root])
        assert "REP703" not in active_rules(result)
        graph = build_graph([root])
        index = concurrency_index(graph, DEFAULT_CONFIG)
        assert [(e.source.split(":")[1], e.target.split(":")[1],
                 e.via) for e in index.lock_edges] == [
            ("A._a_lock", "A._b_lock", "A.helper")]


# ----------------------------------------------------------------------
# REP704: process-worker targets
# ----------------------------------------------------------------------
class TestProcessTarget:
    def analyze(self, tmp_path, body):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/proc.py": "import multiprocessing\n" + body,
        })
        return analyze_paths([root])

    def test_bound_method_target_flagged(self, tmp_path):
        result = self.analyze(tmp_path, (
            "class R:\n"
            "    def run(self):\n"
            "        multiprocessing.Process(target=self._main)\n"
            "    def _main(self):\n"
            "        pass\n"))
        findings = active(result, "REP704")
        assert len(findings) == 1
        assert "bound method" in findings[0].message

    def test_lambda_target_flagged(self, tmp_path):
        result = self.analyze(tmp_path, (
            "def run():\n"
            "    multiprocessing.Process(target=lambda: 0)\n"))
        assert "lambda" in active(result, "REP704")[0].message

    def test_nested_function_target_flagged(self, tmp_path):
        result = self.analyze(tmp_path, (
            "def run():\n"
            "    def inner():\n"
            "        pass\n"
            "    multiprocessing.Process(target=inner)\n"))
        assert "nested" in active(result, "REP704")[0].message

    def test_module_level_target_clean(self, tmp_path):
        result = self.analyze(tmp_path, (
            "def worker():\n"
            "    pass\n"
            "def run():\n"
            "    multiprocessing.Process(target=worker)\n"))
        assert "REP704" not in active_rules(result)

    def test_thread_bound_method_is_fine(self, tmp_path):
        # Threads share the address space; bound methods are the norm.
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/thr.py": (
                "import threading\n"
                "class R:\n"
                "    def run(self):\n"
                "        threading.Thread(target=self._main)\n"
                "    def _main(self):\n"
                "        pass\n"),
        })
        assert "REP704" not in active_rules(analyze_paths([root]))


# ----------------------------------------------------------------------
# REP705: blocking under lock
# ----------------------------------------------------------------------
class TestBlockingUnderLock:
    def test_sleep_under_lock_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/poll.py": (
                "import time\n"
                "class P:\n"
                "    def bad(self):\n"
                "        with self._lock:\n"
                "            time.sleep(0.1)\n"),
        })
        findings = active(analyze_paths([root]), "REP705")
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        assert findings[0].severity.value == "warning"

    def test_sleep_outside_lock_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/poll.py": (
                "import time\n"
                "class P:\n"
                "    def ok(self):\n"
                "        with self._lock:\n"
                "            pass\n"
                "        time.sleep(0.1)\n"),
        })
        assert "REP705" not in active_rules(analyze_paths([root]))

    def test_transitive_blocking_call_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/poll.py": (
                "import time\n"
                "class P:\n"
                "    def bad(self):\n"
                "        with self._lock:\n"
                "            self.helper()\n"
                "    def helper(self):\n"
                "        time.sleep(0.1)\n"),
        })
        findings = active(analyze_paths([root]), "REP705")
        assert len(findings) == 1
        assert "may block" in findings[0].message

    def test_join_under_lock_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/poll.py": (
                "class P:\n"
                "    def bad(self, worker):\n"
                "        with self._lock:\n"
                "            worker.join(1.0)\n"),
        })
        assert len(active(analyze_paths([root]), "REP705")) == 1

    def test_noqa_suppresses(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/poll.py": (
                "import time\n"
                "class P:\n"
                "    def bad(self):\n"
                "        with self._lock:\n"
                "            time.sleep(0.1)  # repro: noqa[REP705]\n"),
        })
        result = analyze_paths([root])
        assert "REP705" not in active_rules(result)
        assert any(f.rule == "REP705" and f.suppressed == "noqa"
                   for f in result.findings)


# ----------------------------------------------------------------------
# Cache replay
# ----------------------------------------------------------------------
class TestCacheReplay:
    def test_warm_run_replays_concurrency_findings(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/box.py": GUARDED_BOX + (
                "    def bad(self):\n"
                "        self.items.append(2)\n"),
        })
        cache_dir = str(tmp_path / "cache")
        cold = analyze_paths([root], cache_dir=cache_dir)
        warm = analyze_paths([root], cache_dir=cache_dir)
        assert cold.cache_misses == 2 and warm.cache_hits == 2
        assert ([f.fingerprint for f in cold.findings]
                == [f.fingerprint for f in warm.findings])
        assert len(active(warm, "REP702")) == 1


# ----------------------------------------------------------------------
# ``repro deps --locks``
# ----------------------------------------------------------------------
class TestLocksCLI:
    def test_text_lists_edges(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/locks.py": (
                "class A:\n"
                "    def m(self):\n"
                "        with self._a_lock:\n"
                "            with self._b_lock:\n"
                "                pass\n"),
        })
        assert cli_main(["deps", root, "--locks"]) == 0
        out = capsys.readouterr().out
        assert "A._a_lock -> " in out and "A._b_lock" in out

    def test_dot_format(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/locks.py": (
                "class A:\n"
                "    def m(self):\n"
                "        with self._a_lock:\n"
                "            with self._b_lock:\n"
                "                pass\n"),
        })
        assert cli_main(["deps", root, "--locks",
                         "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph repro_locks {")
        assert '"repro.locks:A._a_lock" -> "repro.locks:A._b_lock"' \
            in out

    def test_cycle_exits_one_and_marks_red(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/locks.py": (
                "class A:\n"
                "    def one(self):\n"
                "        with self._a_lock:\n"
                "            with self._b_lock:\n"
                "                pass\n"
                "    def two(self):\n"
                "        with self._b_lock:\n"
                "            with self._a_lock:\n"
                "                pass\n"),
        })
        assert cli_main(["deps", root, "--locks",
                         "--format", "dot"]) == 1
        assert "color=red" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Live tree
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_no_unbaselined_rep7xx_findings(self):
        # The concurrency contract of the real codebase: every REP7xx
        # finding is either fixed or explicitly suppressed.  New shared
        # state must arrive guarded (or argued inline via noqa).
        result = analyze_paths([LIVE_SRC])
        rep7 = [f"{f.key}:{f.line} {f.rule} {f.message}"
                for f in result.findings
                if f.rule.startswith("REP7") and f.suppressed is None]
        assert rep7 == []

    def test_updater_spawn_sites_resolved(self):
        # Escape analysis only protects what it can see: both worker
        # entry points must keep resolving from their spawn sites.
        graph = build_graph([LIVE_SRC])
        index = concurrency_index(graph, DEFAULT_CONFIG)
        targets = {(m, s.kind, s.target) for m, s in index.spawns}
        assert ("repro.datalake.updater", "thread",
                "self:ModelUpdateService._thread_main") in targets
        assert ("repro.datalake.updater", "process",
                "local:_process_worker") in targets
        assert ("repro.datalake.updater",
                "ModelUpdateService._thread_main") \
            in index.worker_reachable

    def test_declared_guard_contracts(self):
        # The annotations REP702 enforces on the live tree.
        graph = build_graph([LIVE_SRC])
        index = concurrency_index(graph, DEFAULT_CONFIG)
        lock = "repro.datalake.updater:ModelUpdateService._lock"
        for attr in ("_outcome", "_error", "_done", "_gen"):
            key = f"repro.datalake.updater:ModelUpdateService.{attr}"
            assert index.guards.get(key) == lock
        cache_lock = "repro.nn.featurecache:FeatureCache._lock"
        for attr in ("_entries", "hits", "misses", "evictions"):
            key = f"repro.nn.featurecache:FeatureCache.{attr}"
            assert index.guards.get(key) == cache_lock
        tracer_lock = "repro.obs.tracer:Tracer._lock"
        for attr in ("counters", "metrics"):
            key = f"repro.obs.tracer:Tracer.{attr}"
            assert index.guards.get(key) == tracer_lock

    def test_lock_order_graph_acyclic(self):
        graph = build_graph([LIVE_SRC])
        index = concurrency_index(graph, DEFAULT_CONFIG)
        assert index.lock_cycles() == []
        # DOT export renders every live lock.
        dot = render_locks_dot(index)
        assert "ModelUpdateService._lock" in dot
        assert "FeatureCache._lock" in dot
        assert "Tracer._lock" in dot
