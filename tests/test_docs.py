"""Documentation-consistency checks.

The docs promise specific modules, benches and examples; these tests
keep them honest as the code evolves.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"{name} is missing"
    return path.read_text()


class TestTopLevelDocs:
    def test_required_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "pyproject.toml"):
            assert (ROOT / name).exists(), name

    def test_readme_quickstart_imports_resolve(self):
        """Every `from repro... import ...` line in README must work."""
        readme = read("README.md")
        imports = re.findall(r"^(?:from|import) repro[^\n]*", readme,
                             re.MULTILINE)
        assert imports, "README lost its quickstart imports"
        namespace: dict = {}
        for line in imports:
            exec(line, namespace)  # raises on a broken public API

    def test_design_mentions_every_subpackage(self):
        design = read("DESIGN.md")
        for pkg in ("repro.nn", "repro.datasets", "repro.noise",
                    "repro.index", "repro.datalake", "repro.core",
                    "repro.baselines", "repro.eval", "repro.experiments"):
            assert pkg in design, pkg

    def test_design_paper_match_note_present(self):
        design = read("DESIGN.md")
        assert "ENLD" in design and "ICDE 2023" in design


class TestBenchCoverage:
    """DESIGN.md §4 promises a bench per figure/table — verify on disk."""

    EXPECTED = [
        "test_fig03_contribution.py", "test_fig04_emnist_methods.py",
        "test_fig05_cifar_methods.py", "test_fig06_networks.py",
        "test_fig07_tiny_methods.py", "test_fig08_timecost.py",
        "test_fig09_process.py", "test_fig10_policies.py",
        "test_fig11_k_sweep.py", "test_fig12_k_time.py",
        "test_table2_model_update.py", "test_fig13a_missing.py",
        "test_fig13b_ambiguous.py", "test_fig14_ablation.py",
        "test_kdtree_speedup.py",
    ]

    @pytest.mark.parametrize("name", EXPECTED)
    def test_bench_file_exists(self, name):
        assert (ROOT / "benchmarks" / name).exists()

    def test_design_experiment_index_matches_benches(self):
        design = read("DESIGN.md")
        for name in self.EXPECTED[:-1]:  # kdtree is in the §5 list
            assert name in design, f"DESIGN.md does not index {name}"


class TestExamplesPromised:
    def test_readme_examples_exist(self):
        readme = read("README.md")
        promised = re.findall(r"examples/(\w+\.py)", readme)
        assert len(promised) >= 4
        for script in set(promised):
            assert (ROOT / "examples" / script).exists(), script
