"""Tests for repro.nn.losses and repro.nn.optim."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.losses import cross_entropy, mse_loss, soft_cross_entropy
from repro.nn.optim import SGD, Adam, CosineLR, StepLR, clip_grad_norm
from repro.nn.tensor import Tensor


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.0]])
        labels = np.array([0, 1])
        expected = -np.log(
            np.exp(logits[np.arange(2), labels])
            / np.exp(logits).sum(axis=1)).mean()
        loss = cross_entropy(Tensor(logits), labels)
        assert np.isclose(loss.item(), expected)

    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0]])
        assert cross_entropy(Tensor(logits), np.array([0])).item() < 1e-6

    def test_reduction_sum_vs_mean(self):
        logits = np.random.default_rng(0).normal(size=(4, 3))
        labels = np.array([0, 1, 2, 0])
        s = cross_entropy(Tensor(logits), labels, reduction="sum").item()
        m = cross_entropy(Tensor(logits), labels, reduction="mean").item()
        assert np.isclose(s, 4 * m)

    def test_reduction_none_shape(self):
        logits = np.zeros((5, 3))
        out = cross_entropy(Tensor(logits), np.zeros(5, dtype=int),
                            reduction="none")
        assert out.shape == (5,)

    def test_invalid_reduction(self):
        with pytest.raises(ValueError, match="reduction"):
            cross_entropy(Tensor(np.zeros((1, 2))), np.array([0]),
                          reduction="bogus")

    def test_label_shape_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_gradient_is_softmax_minus_onehot(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        t = Tensor(logits.copy(), requires_grad=True)
        cross_entropy(t, labels, reduction="sum").backward()
        expected = F.softmax(Tensor(logits)).data - F.one_hot(labels, 4)
        assert np.allclose(t.grad, expected, atol=1e-10)


class TestSoftCrossEntropy:
    def test_reduces_to_hard_ce_on_onehot(self):
        logits = np.random.default_rng(2).normal(size=(4, 5))
        labels = np.array([0, 3, 2, 4])
        hard = cross_entropy(Tensor(logits), labels).item()
        soft = soft_cross_entropy(Tensor(logits),
                                  F.one_hot(labels, 5)).item()
        assert np.isclose(hard, soft)

    def test_mixture_is_convex_combination(self):
        logits = np.random.default_rng(3).normal(size=(2, 3))
        t1 = F.one_hot(np.array([0, 1]), 3)
        t2 = F.one_hot(np.array([2, 0]), 3)
        lam = 0.3
        mixed = soft_cross_entropy(Tensor(logits),
                                   lam * t1 + (1 - lam) * t2).item()
        separate = (lam * soft_cross_entropy(Tensor(logits), t1).item()
                    + (1 - lam) * soft_cross_entropy(Tensor(logits),
                                                     t2).item())
        assert np.isclose(mixed, separate)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="match"):
            soft_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 4)))


class TestMSE:
    def test_value(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        assert np.isclose(mse_loss(pred, np.array([[0.0, 0.0]])).item(), 5.0)

    def test_zero_at_target(self):
        pred = Tensor(np.ones((3, 2)))
        assert mse_loss(pred, np.ones((3, 2))).item() == 0.0


class TestSGD:
    def test_vanilla_step(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        p.grad = np.array([0.5])
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, p=-2.9
        assert np.allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = Tensor(np.array([2.0]), requires_grad=True)
        p.grad = np.array([0.0])
        SGD([p], lr=0.5, weight_decay=0.1).step()
        assert np.allclose(p.data, [2.0 - 0.5 * 0.2])

    def test_skips_none_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0])

    def test_rejects_bad_lr_and_empty(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestAdam:
    def test_first_step_is_lr_sized(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([p], lr=0.01)
        p.grad = np.array([3.0])
        opt.step()
        # Bias-corrected first step ≈ lr * sign(grad).
        assert np.allclose(p.data, [-0.01], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Tensor(np.array([5.0]), requires_grad=True)
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert abs(p.data[0]) < 0.05

    def test_weight_decay_applied(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0


class TestSchedulers:
    def test_step_lr(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert np.isclose(opt.lr, 0.1)

    def test_cosine_endpoints(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        sched = CosineLR(opt, total_epochs=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.0, atol=1e-12)

    def test_cosine_monotone_decrease(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        sched = CosineLR(opt, total_epochs=5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert all(a > b for a, b in zip(lrs, lrs[1:]))

    def test_invalid_args(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineLR(opt, total_epochs=0)


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Tensor(np.array([0.0, 0.0]), requires_grad=True)
        p.grad = np.array([3.0, 4.0])  # norm 5
        pre = clip_grad_norm([p], max_norm=1.0)
        assert np.isclose(pre, 5.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_no_clip_below_threshold(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        p.grad = np.array([0.5])
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.5])
