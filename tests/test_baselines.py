"""Tests for repro.baselines (Default, Confident Learning, Topofilter)."""

import numpy as np
import pytest

from repro.baselines.base import NoisyLabelDetector
from repro.baselines.confident_learning import (ConfidentLearningDetector,
                                                class_thresholds,
                                                confident_joint)
from repro.baselines.default import DefaultDetector
from repro.baselines.topofilter import (TopofilterDetector,
                                        knn_graph_components)
from repro.noise import MISSING_LABEL, corrupt_labels, pair_asymmetric
from repro.nn.data import LabeledDataset


@pytest.fixture(scope="module")
def world():
    gen = np.random.default_rng(7)
    x = np.concatenate([gen.normal((i - 1) * 4.0, 1.0, size=(100, 5))
                        for i in range(3)])
    y = np.repeat(np.arange(3), 100)
    order = gen.permutation(len(y))
    full = LabeledDataset(x[order], y[order], true_y=y[order].copy())
    inventory = corrupt_labels(full.subset(np.arange(200), name="inv"),
                               pair_asymmetric(3, 0.2), gen)
    incoming = corrupt_labels(full.subset(np.arange(200, 300), name="D"),
                              pair_asymmetric(3, 0.3), gen)
    from repro.nn.models import MLPClassifier
    from repro.nn.train import fit
    model = MLPClassifier(5, 3, hidden=32, rng=gen)
    fit(model, inventory, epochs=15, rng=gen, lr=0.05)
    return {"model": model, "inventory": inventory, "incoming": incoming}


class TestDefault:
    def test_flags_disagreements(self, world):
        det = DefaultDetector(world["model"])
        result = det.detect(world["incoming"])
        preds = world["model"].predict(world["incoming"].flat_x())
        expected = preds != world["incoming"].y
        assert np.array_equal(result.noisy_mask, expected)

    def test_reasonable_quality(self, world):
        from repro.eval.metrics import score_detection
        result = DefaultDetector(world["model"]).detect(world["incoming"])
        assert score_detection(result, world["incoming"]).f1 > 0.6

    def test_timed_and_named(self, world):
        result = DefaultDetector(world["model"]).detect(world["incoming"])
        assert result.process_seconds >= 0
        assert result.detector_name == "default"

    def test_missing_labels_excluded(self, world):
        d = world["incoming"]
        y = d.y.copy()
        y[:10] = MISSING_LABEL
        with_missing = LabeledDataset(d.x, y, true_y=d.true_y)
        result = DefaultDetector(world["model"]).detect(with_missing)
        assert not result.noisy_mask[:10].any()
        assert not result.clean_mask[:10].any()


class TestThresholdsAndJoint:
    def test_class_thresholds(self):
        probs = np.array([[0.9, 0.1], [0.7, 0.3], [0.2, 0.8]])
        labels = np.array([0, 0, 1])
        t = class_thresholds(probs, labels, 2)
        assert np.isclose(t[0], 0.8)
        assert np.isclose(t[1], 0.8)

    def test_empty_class_threshold_inf(self):
        t = class_thresholds(np.array([[1.0, 0.0]]), np.array([0]), 2)
        assert np.isinf(t[1])

    def test_confident_joint_counts(self):
        probs = np.array([[0.9, 0.1],   # confidently class 0
                          [0.1, 0.9],   # confidently class 1
                          [0.5, 0.5]])  # below both thresholds
        labels = np.array([0, 0, 1])
        joint = confident_joint(probs, labels, np.array([0.8, 0.8]))
        assert joint[0, 0] == 1   # labeled 0, predicted 0
        assert joint[0, 1] == 1   # labeled 0, confidently 1 → noise!
        assert joint.sum() == 2   # ambiguous sample not counted

    def test_joint_total_bounded(self):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(4), size=100)
        labels = rng.integers(0, 4, size=100)
        t = class_thresholds(probs, labels, 4)
        joint = confident_joint(probs, labels, t)
        assert joint.sum() <= 100


class TestConfidentLearning:
    def test_invalid_method(self, world):
        with pytest.raises(ValueError):
            ConfidentLearningDetector(world["model"], world["inventory"],
                                      method="prune_everything")

    @pytest.mark.parametrize("method", ["prune_by_class",
                                        "prune_by_noise_rate"])
    def test_detects_noise(self, world, method):
        from repro.eval.metrics import score_detection
        det = ConfidentLearningDetector(world["model"], world["inventory"],
                                        method=method)
        result = det.detect(world["incoming"])
        score = score_detection(result, world["incoming"])
        assert score.f1 > 0.5

    def test_names_differ(self, world):
        a = ConfidentLearningDetector(world["model"], world["inventory"],
                                      method="prune_by_class")
        b = ConfidentLearningDetector(world["model"], world["inventory"],
                                      method="prune_by_noise_rate")
        assert a.name != b.name

    def test_clean_dataset_few_detections(self, world):
        clean = world["incoming"].with_labels(world["incoming"].true_y)
        det = ConfidentLearningDetector(world["model"], world["inventory"])
        result = det.detect(clean)
        assert result.noisy_mask.mean() < 0.15

    def test_missing_labels_handled(self, world):
        d = world["incoming"]
        y = d.y.copy()
        y[:15] = MISSING_LABEL
        det = ConfidentLearningDetector(world["model"], world["inventory"])
        result = det.detect(LabeledDataset(d.x, y, true_y=d.true_y))
        assert not result.noisy_mask[:15].any()


class TestKnnComponents:
    def test_two_clusters_two_components(self):
        a = np.random.default_rng(0).normal(0.0, 0.1, size=(10, 2))
        b = np.random.default_rng(1).normal(10.0, 0.1, size=(10, 2))
        comp = knn_graph_components(np.concatenate([a, b]), k=3)
        # The two clusters never share a component.
        assert set(comp[:10]) & set(comp[10:]) == set()
        # Non-mutual graph links each tight cluster into one component.
        loose = knn_graph_components(np.concatenate([a, b]), k=3,
                                     mutual=False)
        assert len(np.unique(loose[:10])) == 1
        assert len(np.unique(loose[10:])) == 1

    def test_isolated_point_separate(self):
        cluster = np.random.default_rng(2).normal(0, 0.1, size=(12, 2))
        outlier = np.array([[50.0, 50.0]])
        comp = knn_graph_components(np.concatenate([cluster, outlier]), k=3,
                                    mutual=True)
        assert comp[-1] not in comp[:12]

    def test_empty_and_single(self):
        assert knn_graph_components(np.zeros((0, 2)), 3).size == 0
        assert knn_graph_components(np.zeros((1, 2)), 3).size == 1

    def test_non_mutual_more_connected(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(30, 2))
        mutual = len(np.unique(knn_graph_components(pts, 2, mutual=True)))
        loose = len(np.unique(knn_graph_components(pts, 2, mutual=False)))
        assert loose <= mutual


class TestTopofilter:
    def test_detects_noise(self, world):
        from repro.eval.metrics import score_detection
        det = TopofilterDetector(world["inventory"], 3, model_name="mlp",
                                 model_kwargs={"hidden": 32},
                                 train_epochs=10, seed=1)
        result = det.detect(world["incoming"])
        score = score_detection(result, world["incoming"])
        assert score.f1 > 0.5

    def test_training_cost_recorded(self, world):
        det = TopofilterDetector(world["inventory"], 3, model_name="mlp",
                                 model_kwargs={"hidden": 16},
                                 train_epochs=4, seed=1)
        result = det.detect(world["incoming"])
        # Trains on related inventory + arriving dataset for 4 epochs.
        assert result.train_samples == 4 * (len(world["inventory"])
                                            + len(world["incoming"]))

    def test_missing_labels_excluded(self, world):
        d = world["incoming"]
        y = d.y.copy()
        y[:10] = MISSING_LABEL
        det = TopofilterDetector(world["inventory"], 3, model_name="mlp",
                                 model_kwargs={"hidden": 16},
                                 train_epochs=2, seed=1)
        result = det.detect(LabeledDataset(d.x, y, true_y=d.true_y))
        assert not result.noisy_mask[:10].any()

    def test_is_detector_subclass(self, world):
        det = TopofilterDetector(world["inventory"], 3)
        assert isinstance(det, NoisyLabelDetector)
        assert det.name == "topofilter"
