"""Integration: paired bootstrap on real detector reports.

Ties the significance machinery to the actual experiment pipeline —
the statistical claim behind every "method A beats method B" statement
in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro import ENLD, ArrivalStream, ENLDConfig
from repro.baselines import DefaultDetector
from repro.datasets import (generate, paper_shard_plan,
                            split_inventory_incremental, toy)
from repro.eval import paired_bootstrap, run_detector
from repro.noise import corrupt_labels, pair_asymmetric


@pytest.fixture(scope="module")
def reports():
    data = generate(toy(num_classes=6, samples_per_class=90), seed=81)
    rng = np.random.default_rng(82)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, 0.25)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool, paper_shard_plan("toy"),
                             transition=transition, seed=83).arrivals()
    enld = ENLD(ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                           init_epochs=15, iterations=3,
                           seed=84)).initialize(inventory)
    return {
        "enld": run_detector(enld, arrivals, "enld"),
        "default": run_detector(DefaultDetector(enld.model), arrivals,
                                "default"),
    }


class TestBootstrapOnRealRuns:
    def test_comparison_runs(self, reports):
        cmp = paired_bootstrap(reports["enld"], reports["default"],
                               num_resamples=3000, seed=1)
        assert cmp.method_a == "enld"
        assert cmp.num_shards == len(reports["enld"].outcomes)
        assert cmp.ci_low <= cmp.mean_difference <= cmp.ci_high

    def test_direction_matches_means(self, reports):
        cmp = paired_bootstrap(reports["enld"], reports["default"],
                               num_resamples=3000, seed=1)
        expected = (reports["enld"].mean_f1
                    - reports["default"].mean_f1)
        assert np.isclose(cmp.mean_difference, expected)

    def test_other_metrics_supported(self, reports):
        cmp = paired_bootstrap(reports["enld"], reports["default"],
                               metric="recall", num_resamples=1000)
        assert -1.0 <= cmp.mean_difference <= 1.0
