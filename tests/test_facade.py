"""Backend-parity tests for the auto-selecting index facade.

The contract everything rests on: every backend returns the *same*
neighbour set with the *same* distances for a given query, so detection
verdicts depend only on the data — never on the backend choice.
"""

import numpy as np
import pytest

from repro.index.balltree import BallTree
from repro.index.facade import (AUTO, CONCRETE_BACKENDS, HIGH_DIM_THRESHOLD,
                                KDTREE_MAX_DIM, SMALL_N_THRESHOLD, BruteIndex,
                                build_backend, resolve_backend, select_backend,
                                supports_extend)
from repro.index.kdtree import KDTree, brute_force_knn


def _cloud(n, d, seed=0):
    return np.random.default_rng(seed).normal(size=(n, d))


class TestBruteIndexBasics:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            BruteIndex(np.zeros(5))

    def test_len(self):
        assert len(BruteIndex(np.zeros((7, 2)))) == 7

    def test_empty_index_query(self):
        idx = BruteIndex(np.zeros((0, 3)))
        d, i = idx.query(np.zeros(3), k=2)
        assert d.size == 0 and i.size == 0

    def test_query_dim_mismatch(self):
        with pytest.raises(ValueError, match="dim"):
            BruteIndex(np.zeros((3, 2))).query(np.zeros(3))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            BruteIndex(np.zeros((3, 2))).query(np.zeros(2), k=0)
        with pytest.raises(ValueError):
            BruteIndex(np.zeros((3, 2))).query_batch(np.zeros((1, 2)), k=0)

    def test_k_larger_than_n(self):
        d, i = BruteIndex(_cloud(3, 2)).query(np.zeros(2), k=10)
        assert len(i) == 3

    def test_exact_match_is_first(self):
        pts = _cloud(50, 4)
        d, i = BruteIndex(pts).query(pts[17], k=1)
        assert i[0] == 17 and np.isclose(d[0], 0.0)

    def test_duplicate_points_tie_break_by_index(self):
        pts = np.zeros((10, 3))
        d, i = BruteIndex(pts).query(np.zeros(3), k=5)
        assert np.allclose(d, 0.0)
        assert list(i) == [0, 1, 2, 3, 4]

    def test_empty_query_batch(self):
        d, i = BruteIndex(_cloud(5, 3)).query_batch(np.zeros((0, 3)), k=2)
        assert d.shape == (0, 2) and i.shape == (0, 2)


class TestBruteMatchesReference:
    """BruteIndex must be bit-identical to the validation brute force."""

    @pytest.mark.parametrize("n,d,k", [(10, 3, 1), (100, 8, 5),
                                       (600, 64, 4), (37, 2, 40)])
    def test_bit_identical_to_brute_force_knn(self, n, d, k):
        pts = _cloud(n, d, seed=n + d)
        queries = _cloud(16, d, seed=99)
        index = BruteIndex(pts)
        bd, bi = index.query_batch(queries, k=k)
        for row, q in enumerate(queries):
            rd, ri = brute_force_knn(pts, q, k)
            assert np.array_equal(bi[row], ri)
            assert np.array_equal(bd[row], rd)
            qd, qi = index.query(q, k=k)
            assert np.array_equal(qi, ri)
            assert np.array_equal(qd, rd)


class TestCrossBackendParity:
    @pytest.mark.parametrize("n,d,k", [(80, 4, 3), (200, 12, 5),
                                       (150, 64, 4)])
    def test_all_backends_agree(self, n, d, k):
        pts = _cloud(n, d, seed=7)
        queries = _cloud(20, d, seed=8)
        results = {}
        for name in CONCRETE_BACKENDS:
            backend = build_backend(pts, backend=name)
            results[name] = backend.query_batch(queries, k=k)
        ref_d, ref_i = results["brute"]
        for name in ("kdtree", "balltree"):
            d_, i_ = results[name]
            assert np.array_equal(i_, ref_i), f"{name} indices differ"
            assert np.array_equal(d_, ref_d), f"{name} distances differ"


class TestExtend:
    def test_extend_matches_fresh_build(self):
        first, second = _cloud(60, 5, seed=1), _cloud(40, 5, seed=2)
        grown = BruteIndex(first)
        grown.extend(second)
        fresh = BruteIndex(np.concatenate([first, second]))
        queries = _cloud(10, 5, seed=3)
        gd, gi = grown.query_batch(queries, k=4)
        fd, fi = fresh.query_batch(queries, k=4)
        assert np.array_equal(gi, fi)
        assert np.array_equal(gd, fd)

    def test_extend_dim_mismatch(self):
        with pytest.raises(ValueError):
            BruteIndex(np.zeros((3, 2))).extend(np.zeros((2, 3)))

    def test_supports_extend(self):
        assert supports_extend(BruteIndex(np.zeros((1, 2))))
        assert not supports_extend(KDTree(np.zeros((1, 2))))
        assert not supports_extend(BallTree(np.zeros((1, 2))))


class TestSelection:
    def test_small_sets_go_brute(self):
        assert select_backend(SMALL_N_THRESHOLD, 4) == "brute"

    def test_high_dim_goes_brute(self):
        assert select_backend(10_000, HIGH_DIM_THRESHOLD) == "brute"
        assert select_backend(10_000, 64) == "brute"

    def test_low_dim_large_goes_kdtree(self):
        assert select_backend(SMALL_N_THRESHOLD + 1,
                              KDTREE_MAX_DIM) == "kdtree"

    def test_mid_dim_large_goes_balltree(self):
        assert select_backend(SMALL_N_THRESHOLD + 1,
                              KDTREE_MAX_DIM + 1) == "balltree"

    def test_resolve_passthrough_and_auto(self):
        assert resolve_backend("brute", 10_000, 2) == "brute"
        assert resolve_backend(AUTO, 10_000, 64) == "brute"
        assert resolve_backend(AUTO, 10_000, 2) == "kdtree"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("faiss", 10, 2)

    def test_build_backend_types(self):
        assert isinstance(build_backend(_cloud(10, 64)), BruteIndex)
        assert isinstance(build_backend(_cloud(600, 4)), KDTree)
        assert isinstance(build_backend(_cloud(600, 16)), BallTree)
        assert isinstance(
            build_backend(_cloud(600, 4), backend="brute"), BruteIndex)
