"""Tests for the whole-program analysis layer (REP6xx).

Covers the project graph (cycles, layering, dead exports, RNG
threading), the incremental cache, the ``repro deps`` CLI, and the
meta-tests pinning the live tree's graph facts.
"""

import json
import os

import pytest

from repro.analysis import analyze_paths, load_baseline, write_baseline
from repro.analysis.cache import AnalysisCache, config_digest
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.deps import build_graph
from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LIVE_SRC = os.path.join(REPO_ROOT, "src")


def write_tree(tmp_path, files):
    """Write ``{relpath: source}`` under ``tmp_path`` and return it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return str(tmp_path)


def active_rules(result):
    return sorted({f.rule for f in result.findings
                   if f.suppressed is None})


# ----------------------------------------------------------------------
# REP601: import cycles
# ----------------------------------------------------------------------
class TestImportCycles:
    def test_two_module_cycle_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/a.py": "from repro.b import f\n",
            "repro/b.py": "import repro.a\n\n\ndef f():\n    pass\n",
        })
        result = analyze_paths([root])
        cycles = [f for f in result.findings if f.rule == "REP601"]
        assert len(cycles) == 1
        assert "repro.a -> repro.b -> repro.a" in cycles[0].message

    def test_typeonly_import_cannot_cycle(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/a.py": ("from typing import TYPE_CHECKING\n"
                           "if TYPE_CHECKING:\n"
                           "    from repro.b import f\n"),
            "repro/b.py": "import repro.a\n",
        })
        assert "REP601" not in active_rules(analyze_paths([root]))

    def test_deferred_import_cannot_cycle(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/a.py": ("def g():\n"
                           "    from repro.b import f\n"
                           "    return f\n"),
            "repro/b.py": "import repro.a\n",
        })
        assert "REP601" not in active_rules(analyze_paths([root]))

    def test_init_submodule_reexport_is_not_a_cycle(self, tmp_path):
        # ``from . import functional`` must edge to the submodule, not
        # back to the package __init__ importing it.
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/pkg/__init__.py": "from . import functional\n",
            "repro/pkg/functional.py": "def act(x):\n    return x\n",
        })
        assert "REP601" not in active_rules(analyze_paths([root]))


# ----------------------------------------------------------------------
# REP602: layering + facades
# ----------------------------------------------------------------------
class TestLayering:
    def test_upward_import_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/nn/__init__.py": "",
            "repro/nn/thing.py": "from repro.datalake.stuff import g\n",
            "repro/datalake/__init__.py": "",
            "repro/datalake/stuff.py": "def g():\n    pass\n",
        })
        result = analyze_paths([root])
        layering = [f for f in result.findings if f.rule == "REP602"]
        assert len(layering) == 1
        assert "layering violation" in layering[0].message
        assert layering[0].key == "repro/nn/thing.py"

    def test_downward_and_same_rank_imports_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/nn/__init__.py": "",
            "repro/nn/blocks.py": "def block():\n    pass\n",
            "repro/noise/__init__.py": "",
            "repro/noise/model.py": "from repro.nn.blocks import block\n",
            "repro/core/__init__.py": "from repro.nn.blocks import block\n",
        })
        assert "REP602" not in active_rules(analyze_paths([root]))

    def test_deferred_upward_import_still_flagged(self, tmp_path):
        # Deferring an upward import hides the cycle, not the
        # layering breach.
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/nn/__init__.py": "",
            "repro/nn/thing.py": ("def f():\n"
                                  "    from repro.datalake.stuff "
                                  "import g\n"
                                  "    return g\n"),
            "repro/datalake/__init__.py": "",
            "repro/datalake/stuff.py": "def g():\n    pass\n",
        })
        assert "REP602" in active_rules(analyze_paths([root]))

    def test_typeonly_upward_import_exempt(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/nn/__init__.py": "",
            "repro/nn/thing.py": ("from typing import TYPE_CHECKING\n"
                                  "if TYPE_CHECKING:\n"
                                  "    from repro.datalake.stuff "
                                  "import g\n"),
            "repro/datalake/__init__.py": "",
            "repro/datalake/stuff.py": "def g():\n    pass\n",
        })
        assert "REP602" not in active_rules(analyze_paths([root]))

    def test_facade_import_flagged_inside_library(self, tmp_path):
        # datalake (rank 4) may import eval (rank 3), but must take
        # Stopwatch from its canonical home, not the timer facade.
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/eval/__init__.py": "",
            "repro/eval/timer.py": "Stopwatch = object\n",
            "repro/datalake/__init__.py": "",
            "repro/datalake/x.py":
                "from repro.eval.timer import Stopwatch\n",
        })
        result = analyze_paths([root])
        facade = [f for f in result.findings if f.rule == "REP602"]
        assert len(facade) == 1
        assert "repro.obs.clock" in facade[0].message

    def test_noqa_suppresses_graph_finding(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/nn/__init__.py": "",
            "repro/nn/thing.py":
                ("from repro.datalake.stuff import g  "
                 "# repro: noqa[REP602]\n"),
            "repro/datalake/__init__.py": "",
            "repro/datalake/stuff.py": "def g():\n    pass\n",
        })
        result = analyze_paths([root])
        flagged = [f for f in result.findings if f.rule == "REP602"]
        assert len(flagged) == 1
        assert flagged[0].suppressed == "noqa"
        assert "REP602" not in active_rules(result)


# ----------------------------------------------------------------------
# REP603: dead public exports
# ----------------------------------------------------------------------
class TestDeadExports:
    def test_unreferenced_export_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/lib.py": ("__all__ = ['used', 'dead']\n\n\n"
                             "def used():\n    pass\n\n\n"
                             "def dead():\n    pass\n"),
            "repro/user.py": "from repro.lib import used\n",
        })
        result = analyze_paths([root])
        dead = [f for f in result.findings if f.rule == "REP603"]
        assert len(dead) == 1
        assert "'dead'" in dead[0].message
        assert dead[0].line == 1   # anchored at the __all__ line

    def test_attribute_reference_counts_as_use(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/lib.py": ("__all__ = ['used']\n\n\n"
                             "def used():\n    pass\n"),
            "repro/user.py": ("import repro.lib\n\n"
                              "x = repro.lib.used\n"),
        })
        assert "REP603" not in active_rules(analyze_paths([root]))

    def test_star_import_marks_all_exports_used(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/lib.py": ("__all__ = ['a', 'b']\n\n\n"
                             "def a():\n    pass\n\n\n"
                             "def b():\n    pass\n"),
            "repro/user.py": "from repro.lib import *\n",
        })
        assert "REP603" not in active_rules(analyze_paths([root]))

    def test_package_init_exports_exempt(self, tmp_path):
        # __init__ re-export hubs exist *for* external consumers.
        root = write_tree(tmp_path, {
            "repro/__init__.py": ("from repro.lib import helper\n\n"
                                  "__all__ = ['helper']\n"),
            "repro/lib.py": "def helper():\n    pass\n",
        })
        assert "REP603" not in active_rules(analyze_paths([root]))


# ----------------------------------------------------------------------
# REP604: RNG threading across calls
# ----------------------------------------------------------------------
class TestRngThreading:
    def test_dropped_rng_flagged_same_module(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/x.py": ("def helper(x, rng=None):\n"
                           "    return x\n\n\n"
                           "def caller(data, rng):\n"
                           "    return helper(data)\n"),
        })
        result = analyze_paths([root])
        findings = [f for f in result.findings if f.rule == "REP604"]
        assert len(findings) == 1
        assert "helper()" in findings[0].message
        assert "'rng'" in findings[0].message

    def test_threaded_rng_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/x.py": ("def helper(x, rng=None):\n"
                           "    return x\n\n\n"
                           "def kw(data, rng):\n"
                           "    return helper(data, rng=rng)\n\n\n"
                           "def pos(data, rng):\n"
                           "    return helper(data, rng)\n"),
        })
        assert "REP604" not in active_rules(analyze_paths([root]))

    def test_required_rng_param_exempt(self, tmp_path):
        # A required rng fails loudly at runtime; only the silent
        # optional-fallback case is the rule's business.
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/x.py": ("def helper(x, rng):\n"
                           "    return x\n\n\n"
                           "def caller(data, rng):\n"
                           "    return helper(data)\n"),
        })
        assert "REP604" not in active_rules(analyze_paths([root]))

    def test_kwargs_splat_exempt(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/x.py": ("def helper(x, rng=None):\n"
                           "    return x\n\n\n"
                           "def caller(data, rng, **kw):\n"
                           "    return helper(data, **kw)\n"),
        })
        assert "REP604" not in active_rules(analyze_paths([root]))

    def test_dropped_rng_flagged_cross_module(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/util.py": ("def helper(x, rng=None):\n"
                              "    return x\n"),
            "repro/main.py": ("from repro.util import helper\n\n\n"
                              "def run(data, rng):\n"
                              "    return helper(data)\n"),
        })
        result = analyze_paths([root])
        findings = [f for f in result.findings if f.rule == "REP604"]
        assert len(findings) == 1
        assert findings[0].key == "repro/main.py"

    def test_self_method_call_with_held_rng_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/x.py": (
                "import numpy as np\n\n\n"
                "class Runner:\n"
                "    def __init__(self, seed):\n"
                "        self._rng = np.random.default_rng(seed)\n\n"
                "    def helper(self, x, rng=None):\n"
                "        return x\n\n"
                "    def run(self, data):\n"
                "        noise = self._rng.normal(size=3)\n"
                "        return self.helper(data)\n"),
        })
        result = analyze_paths([root])
        findings = [f for f in result.findings if f.rule == "REP604"]
        assert len(findings) == 1
        assert "Runner.helper()" in findings[0].message

    def test_constructor_resolution(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/x.py": (
                "class Model:\n"
                "    def __init__(self, size, rng=None):\n"
                "        self.size = size\n\n\n"
                "def build(size, rng):\n"
                "    return Model(size)\n"),
        })
        result = analyze_paths([root])
        findings = [f for f in result.findings if f.rule == "REP604"]
        assert len(findings) == 1
        assert "Model.__init__()" in findings[0].message

    def test_external_callees_never_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/x.py": ("import numpy as np\n\n\n"
                           "def caller(data, rng):\n"
                           "    return np.asarray(data)\n"),
        })
        assert "REP604" not in active_rules(analyze_paths([root]))


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
class TestIncrementalCache:
    FILES = {
        "repro/__init__.py": "",
        "repro/nn/__init__.py": "",
        "repro/nn/thing.py": "from repro.datalake.stuff import g\n",
        "repro/datalake/__init__.py": "",
        "repro/datalake/stuff.py": ("import numpy as np\n"
                                    "np.random.seed(0)\n"
                                    "def g():\n    pass\n"),
    }

    def run(self, root, cache_dir, baseline=None):
        return analyze_paths([root], baseline=baseline,
                             cache_dir=cache_dir)

    def test_cold_then_warm_counts(self, tmp_path):
        root = write_tree(tmp_path / "proj", self.FILES)
        cache_dir = str(tmp_path / "cache")
        cold = self.run(root, cache_dir)
        assert cold.cache_hits == 0
        assert cold.cache_misses == cold.files_scanned == 5
        warm = self.run(root, cache_dir)
        assert warm.cache_hits == 5
        assert warm.cache_misses == 0

    def test_warm_run_reports_identical_findings(self, tmp_path):
        root = write_tree(tmp_path / "proj", self.FILES)
        cache_dir = str(tmp_path / "cache")
        cold = self.run(root, cache_dir)
        warm = self.run(root, cache_dir)
        snap = lambda r: [(f.rule, f.key, f.line, f.col, f.suppressed,
                           f.fingerprint) for f in r.findings]
        assert snap(cold) == snap(warm)
        # Both per-file (REP101) and graph (REP602) findings survive
        # the replay.
        assert {"REP101", "REP602"} <= {f.rule for f in warm.findings}

    def test_only_changed_file_reanalyzed(self, tmp_path):
        root = write_tree(tmp_path / "proj", self.FILES)
        cache_dir = str(tmp_path / "cache")
        self.run(root, cache_dir)
        edited = tmp_path / "proj" / "repro" / "datalake" / "stuff.py"
        edited.write_text(edited.read_text() + "\n# touched\n")
        third = self.run(root, cache_dir)
        assert third.cache_misses == 1
        assert third.cache_hits == 4

    def test_baseline_applied_to_cached_findings(self, tmp_path):
        root = write_tree(tmp_path / "proj", self.FILES)
        cache_dir = str(tmp_path / "cache")
        cold = self.run(root, cache_dir)
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, cold.findings)
        warm = self.run(root, cache_dir,
                        baseline=load_baseline(baseline_path))
        assert warm.cache_hits == 5
        assert warm.active == []
        assert warm.exit_code(strict=True) == 0

    def test_corrupt_cache_file_reads_as_empty(self, tmp_path):
        root = write_tree(tmp_path / "proj", self.FILES)
        cache_dir = tmp_path / "cache"
        self.run(root, str(cache_dir))
        (cache_dir / "cache.json").write_text("{not json")
        rerun = self.run(root, str(cache_dir))
        assert rerun.cache_misses == rerun.files_scanned

    def test_config_change_invalidates_everything(self, tmp_path):
        from dataclasses import replace
        other = replace(DEFAULT_CONFIG,
                        rng_param_names=("rng", "generator", "seed"))
        assert config_digest(other) != config_digest(DEFAULT_CONFIG)
        root = write_tree(tmp_path / "proj", self.FILES)
        cache_dir = str(tmp_path / "cache")
        analyze_paths([root], cache_dir=cache_dir)
        rerun = analyze_paths([root], config=other, cache_dir=cache_dir)
        assert rerun.cache_hits == 0

    def test_deleted_files_pruned_from_store(self, tmp_path):
        root = write_tree(tmp_path / "proj", self.FILES)
        cache_dir = str(tmp_path / "cache")
        self.run(root, cache_dir)
        removed = tmp_path / "proj" / "repro" / "nn" / "thing.py"
        removed_abs = os.path.abspath(str(removed))
        removed.unlink()
        self.run(root, cache_dir)
        cache = AnalysisCache(cache_dir, DEFAULT_CONFIG)
        assert removed_abs not in cache._entries


# ----------------------------------------------------------------------
# `repro deps` CLI
# ----------------------------------------------------------------------
class TestDepsCli:
    CLEAN = {
        "repro/__init__.py": "",
        "repro/a.py": "from repro.b import f\n",
        "repro/b.py": "def f():\n    pass\n",
    }
    CYCLIC = {
        "repro/__init__.py": "",
        "repro/a.py": "from repro.b import f\n",
        "repro/b.py": "import repro.a\n\n\ndef f():\n    pass\n",
    }

    def test_text_tree(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.CLEAN)
        assert cli_main(["deps", root]) == 0
        out = capsys.readouterr().out
        assert "repro.a" in out
        assert "-> repro.b" in out

    def test_cycles_clean_exits_zero(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.CLEAN)
        assert cli_main(["deps", root, "--cycles"]) == 0
        assert "no import cycles" in capsys.readouterr().out

    def test_cycles_found_exits_one(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.CYCLIC)
        assert cli_main(["deps", root, "--cycles"]) == 1
        assert "repro.a -> repro.b -> repro.a" in \
            capsys.readouterr().out

    def test_why_prints_chain(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.CLEAN)
        assert cli_main(["deps", root, "--why",
                         "repro.a", "repro.b"]) == 0
        assert "repro.a -> repro.b" in capsys.readouterr().out

    def test_why_no_path_exits_one(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.CLEAN)
        assert cli_main(["deps", root, "--why",
                         "repro.b", "repro.a"]) == 1
        assert "does not import" in capsys.readouterr().out

    def test_why_unknown_module_is_usage_error(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.CLEAN)
        assert cli_main(["deps", root, "--why",
                         "repro.a", "repro.ghost"]) == 2

    def test_json_format(self, tmp_path, capsys):
        root = write_tree(tmp_path, self.CYCLIC)
        assert cli_main(["deps", root, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "repro.a" in payload["modules"]
        assert payload["cycles"] == [["repro.a", "repro.b"]]
        assert any(e["source"] == "repro.a" and e["target"] == "repro.b"
                   for e in payload["edges"])

    def test_dot_format_styles_annotated_edges(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/a.py": ("from typing import TYPE_CHECKING\n"
                           "if TYPE_CHECKING:\n"
                           "    from repro.b import f\n"
                           "def g():\n"
                           "    from repro.c import h\n"
                           "    return h\n"),
            "repro/b.py": "def f():\n    pass\n",
            "repro/c.py": "def h():\n    pass\n",
        })
        assert cli_main(["deps", root, "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph repro {")
        assert 'style=dashed' in out   # type-only edge
        assert 'style=dotted' in out   # deferred edge


# ----------------------------------------------------------------------
# Meta-tests: graph facts of the live tree
# ----------------------------------------------------------------------
class TestLiveTreeGraph:
    def test_live_tree_has_no_runtime_cycles(self, capsys):
        assert cli_main(["deps", LIVE_SRC, "--cycles"]) == 0
        assert "no import cycles" in capsys.readouterr().out

    def test_why_core_depends_on_nn_train(self, capsys):
        assert cli_main(["deps", LIVE_SRC, "--why",
                         "repro.core.enld", "repro.nn.train"]) == 0
        chain = capsys.readouterr().out.strip().split(" -> ")
        assert chain[0] == "repro.core.enld"
        assert chain[-1] == "repro.nn.train"

    def test_obs_layer_imports_nothing_above(self):
        graph = build_graph([LIVE_SRC])
        for module, edges in graph.edges.items():
            if not module.startswith("repro.obs"):
                continue
            for edge in edges:
                assert edge.target.startswith("repro.obs"), (
                    f"{module} imports {edge.target}: the obs "
                    f"substrate must not depend on upper layers")

    def test_live_tree_strict_clean_with_graph_rules(self):
        baseline = load_baseline(
            os.path.join(REPO_ROOT, "analysis-baseline.json"))
        result = analyze_paths([LIVE_SRC], baseline=baseline)
        active = [f.format() for f in result.active]
        assert not active, "\n".join(active)
        assert result.exit_code(strict=True) == 0
        assert not result.stale_baseline
