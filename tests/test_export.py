"""Tests for repro.eval.export (CSV/JSON result export)."""

import csv

import numpy as np

from repro.core.detector import DetectionResult
from repro.eval.export import load_json, report_rows, write_csv, write_json
from repro.eval.metrics import score_masks
from repro.eval.runner import MethodReport, ShardOutcome


def make_reports():
    report = MethodReport(method="enld")
    for i, (det, truth) in enumerate([(np.array([True, False]),
                                       np.array([True, False])),
                                      (np.array([True, True]),
                                       np.array([True, False]))]):
        result = DetectionResult(
            clean_mask=~det, noisy_mask=det,
            inventory_clean_positions=np.empty(0, dtype=int),
            pseudo_labels=np.full(len(det), -1))
        report.add(ShardOutcome(f"shard{i}", score_masks(det, truth),
                                0.5, 100, result))
    return {"enld": report}


class TestRows:
    def test_one_row_per_shard(self):
        rows = list(report_rows(make_reports()))
        assert len(rows) == 2
        assert rows[0]["method"] == "enld"
        assert rows[0]["f1"] == 1.0
        assert rows[1]["precision"] == 0.5


class TestCSV:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.csv")
        n = write_csv(make_reports(), path)
        assert n == 2
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[0]["shard"] == "shard0"
        assert float(rows[0]["f1"]) == 1.0


class TestJSON:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.json")
        write_json(make_reports(), path)
        doc = load_json(path)
        assert doc["summaries"]["enld"]["shards"] == 2
        assert len(doc["shards"]) == 2
        assert doc["shards"][0]["train_samples"] == 100
