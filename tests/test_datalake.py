"""Tests for repro.datalake (catalog and arrival stream)."""

import numpy as np
import pytest

from repro.datalake.catalog import DataLakeCatalog, DetectionRecord
from repro.datalake.stream import ArrivalStream
from repro.datasets.splits import ShardPlan
from repro.noise import MISSING_LABEL, pair_asymmetric
from repro.nn.data import LabeledDataset


def pool(n_classes=4, per_class=30):
    y = np.repeat(np.arange(n_classes), per_class)
    x = np.random.default_rng(0).normal(size=(len(y), 2))
    return LabeledDataset(x, y, true_y=y.copy(), name="pool")


def inventory():
    y = np.repeat(np.arange(4), 10)
    return LabeledDataset(np.zeros((40, 2)), y, true_y=y.copy(), name="inv")


class TestCatalog:
    def test_register_and_get(self):
        cat = DataLakeCatalog(inventory())
        ds = pool().subset([0, 1, 2], name="arrival-0")
        cat.register_arrival(ds)
        assert cat.get_arrival("arrival-0") is ds
        assert cat.arrival_names == ["arrival-0"]

    def test_duplicate_name_rejected(self):
        cat = DataLakeCatalog(inventory())
        ds = pool().subset([0], name="a")
        cat.register_arrival(ds)
        with pytest.raises(KeyError, match="already"):
            cat.register_arrival(ds)

    def test_unknown_lookup(self):
        cat = DataLakeCatalog(inventory())
        with pytest.raises(KeyError, match="known"):
            cat.get_arrival("nope")

    def test_detection_record_bookkeeping(self):
        cat = DataLakeCatalog(inventory())
        ds = pool().subset(np.arange(10), name="a")
        cat.register_arrival(ds)
        record = DetectionRecord(dataset_name="a",
                                 clean_ids=np.arange(7),
                                 noisy_ids=np.arange(7, 10),
                                 process_seconds=1.5)
        cat.record_detection(record)
        assert cat.get_detection("a").detected_noise_fraction == 0.3
        assert cat.processed_names == ["a"]

    def test_detection_for_unknown_dataset(self):
        cat = DataLakeCatalog(inventory())
        with pytest.raises(KeyError, match="unknown"):
            cat.record_detection(DetectionRecord(
                "ghost", np.array([]), np.array([])))

    def test_get_detection_missing(self):
        cat = DataLakeCatalog(inventory())
        with pytest.raises(KeyError):
            cat.get_detection("a")

    def test_clean_inventory_accumulation(self):
        cat = DataLakeCatalog(inventory())
        cat.add_clean_inventory_ids(np.array([3, 1]))
        cat.add_clean_inventory_ids(np.array([1, 5]))
        assert np.array_equal(cat.clean_inventory_ids, [1, 3, 5])
        subset = cat.clean_inventory_subset()
        assert len(subset) == 3
        assert set(subset.ids) == {1, 3, 5}

    def test_quality_report_empty(self):
        report = DataLakeCatalog(inventory()).quality_report()
        assert report["datasets_processed"] == 0
        assert report["flagged_fraction"] == 0.0

    def test_quality_report_aggregates(self):
        cat = DataLakeCatalog(inventory())
        for i, (clean, noisy) in enumerate([(8, 2), (5, 5)]):
            ds = pool().subset(np.arange(clean + noisy), name=f"d{i}")
            cat.register_arrival(ds)
            cat.record_detection(DetectionRecord(
                f"d{i}", np.arange(clean), np.arange(noisy),
                process_seconds=float(i + 1)))
        report = cat.quality_report()
        assert report["datasets_processed"] == 2
        assert report["samples_screened"] == 20
        assert np.isclose(report["flagged_fraction"], 7 / 20)
        assert np.isclose(report["mean_process_seconds"], 1.5)


class TestArrivalStream:
    def plan(self):
        return ShardPlan(num_shards=3, classes_per_shard=3)

    def test_length_and_iteration(self):
        stream = ArrivalStream(pool(), self.plan(), seed=1)
        assert len(stream) == 3
        assert len(stream.arrivals()) == 3

    def test_replay_deterministic(self):
        t = pair_asymmetric(4, 0.2)
        a = ArrivalStream(pool(), self.plan(), transition=t, seed=5)
        b = ArrivalStream(pool(), self.plan(), transition=t, seed=5)
        for da, db in zip(a.arrivals(), b.arrivals()):
            assert np.array_equal(da.y, db.y)
            assert np.array_equal(da.ids, db.ids)

    def test_same_stream_iterates_identically_twice(self):
        # One stream object iterated twice must yield identically
        # corrupted shards — a shared noise RNG would be consumed by
        # the first pass.
        t = pair_asymmetric(4, 0.2)
        stream = ArrivalStream(pool(), self.plan(), transition=t,
                               missing_fraction=0.1, seed=5)
        first = stream.arrivals()
        second = list(iter(stream))
        for da, db in zip(first, second):
            assert np.array_equal(da.y, db.y)
            assert np.array_equal(da.ids, db.ids)

    def test_noise_applied_per_shard(self):
        t = pair_asymmetric(4, 0.3)
        stream = ArrivalStream(pool(per_class=100), self.plan(),
                               transition=t, seed=2)
        rates = [a.noise_rate() for a in stream.arrivals()]
        assert all(0.1 < r < 0.5 for r in rates)

    def test_clean_when_no_transition(self):
        stream = ArrivalStream(pool(), self.plan(), seed=3)
        assert all(a.noise_rate() == 0.0 for a in stream.arrivals())

    def test_missing_labels(self):
        stream = ArrivalStream(pool(), self.plan(),
                               missing_fraction=0.5, seed=4)
        for arrival in stream.arrivals():
            frac = (arrival.y == MISSING_LABEL).mean()
            assert abs(frac - 0.5) < 0.06

    def test_invalid_transition_rejected(self):
        with pytest.raises(ValueError):
            ArrivalStream(pool(), self.plan(),
                          transition=np.ones((4, 4)))

    def test_arrivals_partition_pool(self):
        p = pool()
        stream = ArrivalStream(p, self.plan(), seed=6)
        ids = np.concatenate([a.ids for a in stream.arrivals()])
        assert sorted(ids.tolist()) == sorted(p.ids.tolist())
