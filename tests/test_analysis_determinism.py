"""Tests for the determinism analysis (REP8xx).

Covers the ``StreamTags`` registry contract (import-time uniqueness),
fact extraction (tag uses, unordered iteration, pickle payloads,
snapshot pairing, nondet flows), each of the five rules on minimal
fixture trees — including deliberately broken copies of the real
idioms (duplicate registry tag, unsorted dict iteration into a
journal write, unpaired snapshot) — SARIF round-trip, fingerprint
stability under line shifts, warm-cache replay, the ``--rules``
family filter, and the live-tree meta-tests that keep the real
codebase REP8xx-clean.
"""

import ast
import dataclasses
import json
import os

import pytest

from repro.analysis import analyze_paths, render_sarif
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.deps import build_graph
from repro.analysis.determinism import (determinism_index,
                                        extract_determinism)
from repro.analysis.engine import rule_enabled
from repro.analysis.rules import ImportMap
from repro.cli import main as cli_main
from repro.nn.rng import STREAM_TAGS, StreamTags

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LIVE_SRC = os.path.join(REPO_ROOT, "src")


def write_tree(tmp_path, files):
    """Write ``{relpath: source}`` under ``tmp_path`` and return it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return str(tmp_path)


def active_rules(result):
    return sorted({f.rule for f in result.findings
                   if f.suppressed is None})


def active(result, rule):
    return [f for f in result.findings
            if f.rule == rule and f.suppressed is None]


#: Registry module planted at the configured key in fixture trees.
REGISTRY_PY = (
    "class StreamTags:\n"
    "    DETECT: int = 8191\n"
    "    INGEST_JITTER: int = 4409\n"
    "\n"
    "\n"
    "STREAM_TAGS = StreamTags()\n")

#: Package scaffolding every fixture tree shares.
PKG = {
    "repro/__init__.py": "",
    "repro/nn/__init__.py": "",
    "repro/nn/rng.py": REGISTRY_PY,
    "repro/datalake/__init__.py": "",
}


def tree(tmp_path, module_source, rel="repro/datalake/stream.py"):
    files = dict(PKG)
    files[rel] = module_source
    return write_tree(tmp_path, files)


# ----------------------------------------------------------------------
# The StreamTags registry itself (satellite 1)
# ----------------------------------------------------------------------
class TestStreamTagsRegistry:
    def test_default_values_positive_and_unique(self):
        values = [getattr(STREAM_TAGS, name)
                  for name in STREAM_TAGS.names()]
        assert all(isinstance(v, int) and v > 0 for v in values)
        assert len(set(values)) == len(values)

    def test_names_cover_every_field(self):
        assert sorted(STREAM_TAGS.names()) == sorted(
            f.name for f in dataclasses.fields(StreamTags))

    def test_duplicate_value_rejected_at_construction(self):
        with pytest.raises(ValueError, match="duplicate"):
            StreamTags(DETECT=STREAM_TAGS.INGEST_JITTER)

    def test_non_positive_value_rejected(self):
        with pytest.raises(ValueError):
            StreamTags(DETECT=0)
        with pytest.raises(ValueError):
            StreamTags(RESEED=-7919)

    def test_registry_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            STREAM_TAGS.DETECT = 1


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
class TestExtraction:
    def parse(self, source):
        tree_ = ast.parse(source)
        return extract_determinism(tree_, ImportMap(tree_))

    def test_entropy_list_tag_kinds(self):
        facts = self.parse(
            "import numpy as np\n"
            "from repro.nn.rng import STREAM_TAGS\n"
            "_LOCAL = 4409\n"
            "def a(seed, key):\n"
            "    return np.random.default_rng([seed, 1234, key])\n"
            "def b(seed, key):\n"
            "    return np.random.default_rng([seed, _LOCAL, key])\n"
            "def c(seed, key):\n"
            "    return np.random.default_rng(\n"
            "        [seed, STREAM_TAGS.DETECT, key])\n")
        kinds = [(u.kind, u.value, u.name, u.context)
                 for u in facts.tag_uses]
        assert ("lit", 1234, "", "key") in kinds
        assert ("const", 4409, "_LOCAL", "key") in kinds
        assert any(k == "ref" and n.endswith("STREAM_TAGS.DETECT")
                   and c == "key" for k, v, n, c in kinds)

    def test_reseed_scalar_tag(self):
        facts = self.parse(
            "def retry(enld, seed, attempt):\n"
            "    enld.reseed(seed + 7919 * attempt)\n")
        assert [(u.kind, u.value, u.context)
                for u in facts.tag_uses] == [("lit", 7919, "scalar")]

    def test_plain_reseed_has_no_tag_slot(self):
        facts = self.parse(
            "def again(enld, seed):\n"
            "    enld.reseed(seed)\n")
        assert facts.tag_uses == []

    def test_registry_class_body_extracted(self):
        facts = self.parse(REGISTRY_PY)
        assert [(t.name, t.value) for t in facts.registry_tags] == [
            ("DETECT", 8191), ("INGEST_JITTER", 4409)]

    def test_set_iteration_with_direct_sink(self):
        facts = self.parse(
            "from repro.datalake.persistence import append_journal\n"
            "def flush(names, path):\n"
            "    for name in set(names):\n"
            "        append_journal(path, {'name': name})\n")
        (it,) = facts.unordered
        assert it.kind == "set" and "append_journal" in it.sinks

    def test_sorted_iteration_not_recorded(self):
        facts = self.parse(
            "def flush(reports):\n"
            "    for name in sorted(reports.keys()):\n"
            "        print(name)\n")
        assert facts.unordered == []

    def test_snapshot_without_restore(self):
        facts = self.parse(
            "def swap(self, model):\n"
            "    state = snapshot_swap_state(self)\n"
            "    install_update(self, model)\n")
        (snap,) = facts.snapshots
        assert not snap.has_restore
        assert [e[0] for e in snap.exposed] == ["install_update"]

    def test_snapshot_with_protected_mutation(self):
        facts = self.parse(
            "def swap(self, model):\n"
            "    state = snapshot_swap_state(self)\n"
            "    try:\n"
            "        install_update(self, model)\n"
            "    except Exception:\n"
            "        restore_swap_state(self, state)\n"
            "        raise\n")
        (snap,) = facts.snapshots
        assert snap.has_restore and snap.exposed == ()

    def test_taint_through_one_local(self):
        facts = self.parse(
            "import os\n"
            "def stamp(path, append_journal):\n"
            "    pid = os.getpid()\n"
            "    append_journal(path, {'pid': pid})\n")
        (flow,) = facts.flows
        assert flow.via == "pid" and flow.sink == "append_journal"

    def test_facts_round_trip_serialisation(self):
        source = (
            "import os\n"
            "import numpy as np\n"
            "def bad(seed, path, append_journal, executor, work):\n"
            "    rng = np.random.default_rng([seed, 99, 0])\n"
            "    for item in set(path):\n"
            "        append_journal(path, item)\n"
            "    executor.submit(work, lambda: 1)\n"
            "    append_journal(path, os.getpid())\n"
            "def swap(self, m):\n"
            "    s = snapshot_swap_state(self)\n"
            "    install_update(self, m)\n")
        facts = self.parse(source)
        from repro.analysis.determinism import ModuleDeterminism
        replayed = ModuleDeterminism.from_dict(
            json.loads(json.dumps(facts.to_dict())))
        assert replayed == facts
        assert facts.tag_uses and facts.unordered and facts.payloads
        assert facts.snapshots and facts.flows


# ----------------------------------------------------------------------
# REP801: stream-tag registry
# ----------------------------------------------------------------------
class TestStreamTagRule:
    def test_inline_literal_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "import numpy as np\n"
            "def arrival(seed, key):\n"
            "    return np.random.default_rng([seed, 1234, key])\n"))
        (finding,) = active(analyze_paths([root]), "REP801")
        assert "inline stream tag 1234" in finding.message
        assert "STREAM_TAGS" in finding.message

    def test_module_local_constant_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "import numpy as np\n"
            "_DETECT_TAG = 8191\n"
            "def arrival(seed, key):\n"
            "    return np.random.default_rng("
            "[seed, _DETECT_TAG, key])\n"))
        (finding,) = active(analyze_paths([root]), "REP801")
        assert "_DETECT_TAG" in finding.message
        assert "move it into" in finding.message

    def test_unregistered_member_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "import numpy as np\n"
            "from ..nn.rng import STREAM_TAGS\n"
            "def arrival(seed, key):\n"
            "    return np.random.default_rng(\n"
            "        [seed, STREAM_TAGS.NOPE, key])\n"))
        (finding,) = active(analyze_paths([root]), "REP801")
        assert "STREAM_TAGS.NOPE is not a registered" in finding.message

    def test_registered_member_clean(self, tmp_path):
        root = tree(tmp_path, (
            "import numpy as np\n"
            "from ..nn.rng import STREAM_TAGS\n"
            "def arrival(seed, key):\n"
            "    return np.random.default_rng(\n"
            "        [seed, STREAM_TAGS.DETECT, key])\n"))
        assert "REP801" not in active_rules(analyze_paths([root]))

    def test_reseed_scalar_literal_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "def retry(enld, seed, attempt):\n"
            "    enld.reseed(seed + 7919 * attempt)\n"))
        (finding,) = active(analyze_paths([root]), "REP801")
        assert "reseed expression" in finding.message

    def test_duplicate_registry_value_flagged(self, tmp_path):
        # Deliberately broken copy of the real registry: two names
        # sharing one value silently correlate their streams.
        files = dict(PKG)
        files["repro/nn/rng.py"] = (
            "class StreamTags:\n"
            "    DETECT: int = 8191\n"
            "    RESEED: int = 8191\n"
            "\n"
            "\n"
            "STREAM_TAGS = StreamTags()\n")
        root = write_tree(tmp_path, files)
        (finding,) = active(analyze_paths([root]), "REP801")
        assert "RESEED reuses value 8191" in finding.message
        assert "DETECT" in finding.message

    def test_registry_module_itself_exempt(self, tmp_path):
        # The registry is the one place integer tags are legal — a
        # default_rng key built inside rng.py must not self-flag.
        files = dict(PKG)
        files["repro/nn/rng.py"] = REGISTRY_PY + (
            "\n"
            "import numpy as np\n"
            "def resolve_rng(seed, key):\n"
            "    return np.random.default_rng([seed, 8191, key])\n")
        root = write_tree(tmp_path, files)
        assert "REP801" not in active_rules(analyze_paths([root]))


# ----------------------------------------------------------------------
# REP802: unordered iteration
# ----------------------------------------------------------------------
class TestUnorderedIterationRule:
    def test_unsorted_dict_view_into_journal_flagged(self, tmp_path):
        # Deliberately broken copy of the real journal idiom:
        # platform.py journals per-dataset reports — unsorted, the
        # journal byte stream depends on insertion order.
        root = tree(tmp_path, (
            "from .persistence import append_journal\n"
            "def journal_reports(path, reports):\n"
            "    for name, report in reports.items():\n"
            "        append_journal(path, {'dataset': name})\n"))
        (finding,) = active(analyze_paths([root]), "REP802")
        assert ".items()" in finding.message
        assert "append_journal" in finding.message

    def test_sorted_dict_view_clean(self, tmp_path):
        root = tree(tmp_path, (
            "from .persistence import append_journal\n"
            "def journal_reports(path, reports):\n"
            "    for name, report in sorted(reports.items()):\n"
            "        append_journal(path, {'dataset': name})\n"))
        assert "REP802" not in active_rules(analyze_paths([root]))

    def test_set_iteration_reaching_sink_indirectly(self, tmp_path):
        # Sets are flagged even when the sink is behind a project
        # call — the index's call-graph fixed point finds it.
        root = tree(tmp_path, (
            "from .persistence import append_journal\n"
            "def record(path, name):\n"
            "    append_journal(path, {'n': name})\n"
            "def flush(path, names):\n"
            "    for name in set(names):\n"
            "        record(path, name)\n"))
        (finding,) = active(analyze_paths([root]), "REP802")
        assert "set(...)" in finding.message
        assert "record()" in finding.message

    def test_dict_view_indirect_sink_not_flagged(self, tmp_path):
        # Dict views only fire on a *direct* sink in the body:
        # insertion order is deterministic more often than set order,
        # so the indirect case would be noise.
        root = tree(tmp_path, (
            "from .persistence import append_journal\n"
            "def record(path, name):\n"
            "    append_journal(path, {'n': name})\n"
            "def flush(path, reports):\n"
            "    for name in reports.keys():\n"
            "        record(path, name)\n"))
        assert "REP802" not in active_rules(analyze_paths([root]))

    def test_listing_into_rng_key_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "import os\n"
            "import numpy as np\n"
            "from ..nn.rng import STREAM_TAGS\n"
            "def seed_all(seed, d):\n"
            "    for name in os.listdir(d):\n"
            "        np.random.default_rng(\n"
            "            [seed, STREAM_TAGS.DETECT, len(name)])\n"))
        (finding,) = active(analyze_paths([root]), "REP802")
        assert "os.listdir" in finding.message

    def test_iteration_without_sink_clean(self, tmp_path):
        root = tree(tmp_path, (
            "def total(counts):\n"
            "    acc = 0\n"
            "    for value in set(counts):\n"
            "        acc += value\n"
            "    return acc\n"))
        assert "REP802" not in active_rules(analyze_paths([root]))


# ----------------------------------------------------------------------
# REP803: pickle-boundary purity
# ----------------------------------------------------------------------
class TestPickleBoundaryRule:
    def test_lambda_through_submit_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "def fan_out(executor, work, items):\n"
            "    return [executor.submit(work, lambda: item)\n"
            "            for item in items]\n"))
        (finding,) = active(analyze_paths([root]), "REP803")
        assert "lambda" in finding.message
        assert "executor.submit" in finding.message

    def test_lock_through_pipe_send_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "def handoff(self, conn):\n"
            "    conn.send(self._lock)\n"))
        findings = active(analyze_paths([root]), "REP803")
        assert any("lock-like attribute ._lock" in f.message
                   for f in findings)

    def test_tracer_through_initargs_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def pool(tracer):\n"
            "    return ProcessPoolExecutor(\n"
            "        max_workers=2, initargs=(tracer,))\n"))
        (finding,) = active(analyze_paths([root]), "REP803")
        assert "tracer" in finding.message
        assert "initargs" in finding.message

    def test_plain_data_payload_clean(self, tmp_path):
        root = tree(tmp_path, (
            "def fan_out(executor, work, payloads):\n"
            "    return [executor.submit(work, p, 3, 'name')\n"
            "            for p in payloads]\n"))
        assert "REP803" not in active_rules(analyze_paths([root]))

    def test_non_executor_submit_ignored(self, tmp_path):
        # ``submit`` on an arbitrary receiver (e.g. a form object) is
        # not a process boundary.
        root = tree(tmp_path, (
            "def push(form):\n"
            "    form.submit(lambda: 1)\n"))
        assert "REP803" not in active_rules(analyze_paths([root]))


# ----------------------------------------------------------------------
# REP804: snapshot/restore pairing
# ----------------------------------------------------------------------
class TestSwapPairingRule:
    def test_unpaired_snapshot_flagged(self, tmp_path):
        # Deliberately broken copy of updater._install: the snapshot
        # is taken but a mid-install failure never rolls back.
        root = tree(tmp_path, (
            "from .updater import (snapshot_swap_state,\n"
            "                      install_update)\n"
            "def hot_swap(enld, model):\n"
            "    state = snapshot_swap_state(enld)\n"
            "    install_update(enld, model)\n"))
        (finding,) = active(analyze_paths([root]), "REP804")
        assert "restore_swap_state is never called" in finding.message

    def test_paired_snapshot_clean(self, tmp_path):
        # The canonical updater._install shape.
        root = tree(tmp_path, (
            "from .updater import (snapshot_swap_state,\n"
            "                      restore_swap_state,\n"
            "                      install_update)\n"
            "def hot_swap(enld, model):\n"
            "    state = snapshot_swap_state(enld)\n"
            "    try:\n"
            "        install_update(enld, model)\n"
            "    except Exception:\n"
            "        restore_swap_state(enld, state)\n"
            "        raise\n"))
        assert "REP804" not in active_rules(analyze_paths([root]))

    def test_mutation_outside_protected_try_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "from .updater import (snapshot_swap_state,\n"
            "                      restore_swap_state,\n"
            "                      install_update)\n"
            "def hot_swap(enld, model, extra):\n"
            "    state = snapshot_swap_state(enld)\n"
            "    try:\n"
            "        install_update(enld, model)\n"
            "    except Exception:\n"
            "        restore_swap_state(enld, state)\n"
            "        raise\n"
            "    install_update(enld, extra)\n"))
        (finding,) = active(analyze_paths([root]), "REP804")
        assert "outside the try" in finding.message

    def test_indirect_mutator_flagged(self, tmp_path):
        # The exposed call reaches install_update through a helper.
        root = tree(tmp_path, (
            "from .updater import (snapshot_swap_state,\n"
            "                      install_update)\n"
            "def publish(enld, model):\n"
            "    install_update(enld, model)\n"
            "def hot_swap(enld, model):\n"
            "    state = snapshot_swap_state(enld)\n"
            "    publish(enld, model)\n"))
        (finding,) = active(analyze_paths([root]), "REP804")
        assert "publish()" in finding.message
        assert "reaches a swap mutator" in finding.message

    def test_snapshot_with_benign_calls_clean(self, tmp_path):
        root = tree(tmp_path, (
            "from .updater import snapshot_swap_state\n"
            "def inspect(enld):\n"
            "    state = snapshot_swap_state(enld)\n"
            "    return len(state)\n"))
        assert "REP804" not in active_rules(analyze_paths([root]))


# ----------------------------------------------------------------------
# REP805: nondeterminism sources
# ----------------------------------------------------------------------
class TestNondetFlowRule:
    def test_getpid_into_journal_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "import os\n"
            "from .persistence import append_journal\n"
            "def stamp(path):\n"
            "    append_journal(path, {'pid': os.getpid()})\n"))
        (finding,) = active(analyze_paths([root]), "REP805")
        assert "os.getpid" in finding.message

    def test_taint_through_local_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "import uuid\n"
            "from .persistence import append_journal\n"
            "def stamp(path):\n"
            "    run_id = str(uuid.uuid4())\n"
            "    append_journal(path, {'run': run_id})\n"))
        (finding,) = active(analyze_paths([root]), "REP805")
        assert "through local 'run_id'" in finding.message

    def test_id_into_rng_key_flagged(self, tmp_path):
        root = tree(tmp_path, (
            "import numpy as np\n"
            "from ..nn.rng import STREAM_TAGS\n"
            "def seed_for(seed, obj):\n"
            "    return np.random.default_rng(\n"
            "        [seed, STREAM_TAGS.DETECT, id(obj)])\n"))
        findings = active(analyze_paths([root]), "REP805")
        assert any("id()" in f.message for f in findings)

    def test_wallclock_exempt_in_obs_layer(self, tmp_path):
        files = dict(PKG)
        files["repro/obs/__init__.py"] = ""
        files["repro/obs/metrics.py"] = (
            "import time\n"
            "from ..datalake.persistence import append_journal\n"
            "def stamp(path):\n"
            "    append_journal(path, {'t': time.time()})\n")
        root = write_tree(tmp_path, files)
        assert "REP805" not in active_rules(analyze_paths([root]))

    def test_wallclock_flagged_outside_obs(self, tmp_path):
        root = tree(tmp_path, (
            "import time\n"
            "from .persistence import append_journal\n"
            "def stamp(path):\n"
            "    append_journal(path, {'t': time.time()})\n"))
        findings = active(analyze_paths([root]), "REP805")
        assert any("time.time" in f.message for f in findings)

    def test_deterministic_payload_clean(self, tmp_path):
        root = tree(tmp_path, (
            "from .persistence import append_journal\n"
            "def stamp(path, seq, digest):\n"
            "    append_journal(path, {'seq': seq, 'sha': digest})\n"))
        assert "REP805" not in active_rules(analyze_paths([root]))


# ----------------------------------------------------------------------
# Suppression, SARIF, fingerprints, cache (satellite 3)
# ----------------------------------------------------------------------
BROKEN_STREAM = (
    "import numpy as np\n"
    "from .persistence import append_journal\n"
    "def arrival(seed, key):\n"
    "    return np.random.default_rng([seed, 1234, key])\n"
    "def flush(path, names):\n"
    "    for name in set(names):\n"
    "        append_journal(path, {'name': name})\n")


class TestReporting:
    def test_noqa_suppresses_rep8(self, tmp_path):
        root = tree(tmp_path, (
            "import numpy as np\n"
            "def arrival(seed, key):\n"
            "    return np.random.default_rng("
            "[seed, 1234, key])  # repro: noqa[REP801]\n"))
        result = analyze_paths([root])
        assert "REP801" not in active_rules(result)
        assert any(f.rule == "REP801" and f.suppressed == "noqa"
                   for f in result.findings)

    def test_sarif_round_trip(self, tmp_path):
        root = tree(tmp_path, BROKEN_STREAM)
        sarif = json.loads(json.dumps(
            render_sarif(analyze_paths([root]))))
        (run,) = sarif["runs"]
        catalog = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"REP801", "REP802", "REP803", "REP804",
                "REP805"} <= catalog
        by_rule = {}
        for res in run["results"]:
            by_rule.setdefault(res["ruleId"], []).append(res)
        assert len(by_rule["REP801"]) == 1
        assert len(by_rule["REP802"]) == 1
        (rep801,) = by_rule["REP801"]
        assert rep801["level"] == "error"
        loc = rep801["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("stream.py")
        assert loc["region"]["startLine"] == 4

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        root = tree(tmp_path, BROKEN_STREAM)
        first = {(f.rule, f.fingerprint, f.line)
                 for f in analyze_paths([root]).findings
                 if f.rule.startswith("REP8")}
        # Shift every line down by three without touching content.
        target = tmp_path / "repro" / "datalake" / "stream.py"
        target.write_text('"""Docstring."""\n# moved\n\n'
                          + BROKEN_STREAM)
        second = {(f.rule, f.fingerprint, f.line)
                  for f in analyze_paths([root]).findings
                  if f.rule.startswith("REP8")}
        assert {(r, fp) for r, fp, _line in first} \
            == {(r, fp) for r, fp, _line in second}
        assert {line for _r, _fp, line in first} \
            != {line for _r, _fp, line in second}

    def test_baseline_holds_across_line_shift(self, tmp_path):
        root = tree(tmp_path, BROKEN_STREAM)
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path,
                       analyze_paths([root]).findings)
        target = tmp_path / "repro" / "datalake" / "stream.py"
        target.write_text("# preamble\n\n" + BROKEN_STREAM)
        result = analyze_paths(
            [root], baseline=load_baseline(baseline_path))
        assert active_rules(result) == []
        assert result.stale_baseline == []
        assert any(f.suppressed == "baseline" for f in result.findings)

    def test_warm_cache_replays_rep8_findings(self, tmp_path):
        root = tree(tmp_path, BROKEN_STREAM)
        cache_dir = str(tmp_path / "cache")
        cold = analyze_paths([root], cache_dir=cache_dir)
        warm = analyze_paths([root], cache_dir=cache_dir)
        assert cold.cache_misses == cold.files_scanned > 0
        assert warm.cache_hits == warm.files_scanned
        assert warm.cache_misses == 0
        assert ([(f.rule, f.fingerprint) for f in cold.findings]
                == [(f.rule, f.fingerprint) for f in warm.findings])
        assert active(warm, "REP801") and active(warm, "REP802")


# ----------------------------------------------------------------------
# --rules family filter (satellite 6)
# ----------------------------------------------------------------------
class TestRulesFilter:
    def test_rule_enabled_semantics(self):
        assert rule_enabled("REP801", None)
        assert rule_enabled("REP801", ("REP8",))
        assert rule_enabled("REP805", ("REP80",))
        assert not rule_enabled("REP702", ("REP8",))
        assert not rule_enabled("REP101", ("REP8", "REP6"))
        # The syntax-error rule always runs.
        assert rule_enabled("REP001", ("REP8",))

    def test_filter_restricts_findings(self, tmp_path):
        root = tree(tmp_path, BROKEN_STREAM)
        full = analyze_paths([root])
        scoped = analyze_paths([root], rules=("REP8",))
        assert all(f.rule.startswith("REP8")
                   for f in scoped.findings)
        assert active_rules(scoped) == [
            r for r in active_rules(full) if r.startswith("REP8")]

    def test_syntax_error_survives_filter(self, tmp_path):
        root = tree(tmp_path, "def broken(:\n")
        result = analyze_paths([root], rules=("REP8",))
        assert "REP001" in active_rules(result)

    def test_filtered_run_does_not_poison_cache(self, tmp_path):
        root = tree(tmp_path, BROKEN_STREAM)
        cache_dir = str(tmp_path / "cache")
        scoped = analyze_paths([root], cache_dir=cache_dir,
                               rules=("REP8",))
        assert scoped.cache_hits == 0
        # The partial per-file results were not stored: the full run
        # still re-analyzes every file and sees every family.
        full = analyze_paths([root], cache_dir=cache_dir)
        assert full.cache_misses == full.files_scanned
        assert active(full, "REP801")

    def test_filtered_run_replays_full_cache(self, tmp_path):
        root = tree(tmp_path, BROKEN_STREAM)
        cache_dir = str(tmp_path / "cache")
        analyze_paths([root], cache_dir=cache_dir)
        scoped = analyze_paths([root], cache_dir=cache_dir,
                               rules=("REP8",))
        assert scoped.cache_hits == scoped.files_scanned
        assert active(scoped, "REP801")
        assert all(f.rule.startswith("REP8")
                   for f in scoped.findings)

    def test_stale_baseline_scoped_to_filter(self, tmp_path):
        root = tree(tmp_path, BROKEN_STREAM)
        baseline = {"deadbeefdeadbeef": {"rule": "REP603",
                                         "path": "x.py", "line": 1,
                                         "message": "gone"}}
        scoped = analyze_paths([root], baseline=baseline,
                               rules=("REP8",))
        assert scoped.stale_baseline == []
        full = analyze_paths([root], baseline=baseline)
        assert full.stale_baseline == ["deadbeefdeadbeef"]

    def test_cli_rules_flag(self, tmp_path, capsys):
        root = tree(tmp_path, BROKEN_STREAM)
        code = cli_main(["lint", root, "--no-cache",
                         "--rules", "REP8", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert {f["rule"] for f in payload["findings"]} \
            <= {"REP801", "REP802", "REP803", "REP804", "REP805"}

    def test_cli_rejects_empty_rules(self, capsys):
        assert cli_main(["lint", "--rules", " , "]) == 2
        assert "at least one prefix" in capsys.readouterr().err

    def test_cli_rejects_rules_with_write_baseline(self, tmp_path,
                                                   capsys):
        root = tree(tmp_path, BROKEN_STREAM)
        code = cli_main(["lint", root, "--no-cache", "--rules",
                         "REP8", "--write-baseline"])
        assert code == 2
        assert "--write-baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Live tree (tentpole acceptance)
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_no_unbaselined_rep8xx_findings(self):
        # The determinism contract of the real codebase: every REP8xx
        # finding is either fixed or explicitly suppressed.  New RNG
        # streams must arrive registered; new swap paths paired.
        result = analyze_paths([LIVE_SRC])
        rep8 = [f"{f.key}:{f.line} {f.rule} {f.message}"
                for f in result.findings
                if f.rule.startswith("REP8") and f.suppressed is None]
        assert rep8 == []

    def test_index_registry_matches_runtime_registry(self):
        graph = build_graph([LIVE_SRC])
        index = determinism_index(graph, DEFAULT_CONFIG)
        assert index.registry == {
            name: getattr(STREAM_TAGS, name)
            for name in STREAM_TAGS.names()}
        assert index.registry_module == "repro.nn.rng"

    def test_rng_call_sites_migrated_onto_registry(self):
        # The PR that introduced REP801 also migrated every tag use
        # onto STREAM_TAGS — no inline literal or module-local
        # constant may creep back into these modules.
        graph = build_graph([LIVE_SRC])
        for module, expect in (
                ("repro.datalake.ingest",
                 {"DETECT", "INGEST_JITTER"}),
                ("repro.datalake.platform",
                 {"SUBMIT_JITTER", "RESEED"}),
                ("repro.datalake.updater", {"UPDATE_BACKOFF"})):
            uses = graph.modules[module].determinism.tag_uses
            assert uses, f"{module} lost its tag uses"
            assert all(u.kind == "ref" for u in uses), module
            members = {u.name.rpartition("STREAM_TAGS.")[2]
                       for u in uses}
            assert expect <= members, (module, members)

    def test_updater_install_is_the_paired_pattern(self):
        graph = build_graph([LIVE_SRC])
        facts = graph.modules["repro.datalake.updater"].determinism
        snaps = [s for s in facts.snapshots
                 if s.func == "ModelUpdateService._install"]
        assert len(snaps) == 1
        assert snaps[0].has_restore and snaps[0].exposed == ()
