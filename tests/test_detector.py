"""Tests for repro.core.detector (Algorithm 3, fine-grained NLD)."""

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.detector import FineGrainedDetector
from repro.core.probability import estimate_conditional
from repro.noise import MISSING_LABEL, corrupt_labels, pair_asymmetric
from repro.nn.data import LabeledDataset
from repro.nn.models import MLPClassifier
from repro.nn.train import fit


@pytest.fixture(scope="module")
def world():
    """A planted detection scenario around well-separated blobs.

    Inventory of 3 classes (some noise), a general model trained on half
    of it, and an incremental dataset with 30% pair noise.
    """
    gen = np.random.default_rng(42)
    x = np.concatenate([gen.normal((i - 1) * 4.0, 1.0, size=(120, 5))
                        for i in range(3)])
    y = np.repeat(np.arange(3), 120)
    order = gen.permutation(len(y))
    full = LabeledDataset(x[order], y[order], true_y=y[order].copy())
    transition = pair_asymmetric(3, 0.2)

    train = full.subset(np.arange(0, 180), name="I_t")
    candidates = full.subset(np.arange(180, 300), name="I_c")
    incoming = full.subset(np.arange(300, 360), name="D")
    train = corrupt_labels(train, transition, gen)
    candidates = corrupt_labels(candidates, transition, gen)
    incoming = corrupt_labels(incoming, pair_asymmetric(3, 0.3), gen)

    model = MLPClassifier(5, 3, hidden=32, rng=gen)
    fit(model, train, epochs=12, rng=gen, lr=0.05)
    cond = estimate_conditional(model, candidates)
    return {"model": model, "candidates": candidates,
            "incoming": incoming, "cond": cond}


def run_detector(world, config=None, dataset=None, seed=0):
    config = config or ENLDConfig(iterations=3, steps_per_iteration=5,
                                  warmup_epochs=1)
    detector = FineGrainedDetector(config)
    return detector.detect(world["model"], dataset or world["incoming"],
                           world["candidates"], world["cond"],
                           np.random.default_rng(seed))


class TestDetection:
    def test_partitions_dataset(self, world):
        result = run_detector(world)
        d = world["incoming"]
        assert not (result.clean_mask & result.noisy_mask).any()
        assert (result.clean_mask | result.noisy_mask).sum() == len(d)

    def test_detects_planted_noise(self, world):
        from repro.eval.metrics import score_detection
        result = run_detector(world)
        score = score_detection(result, world["incoming"])
        assert score.f1 > 0.7
        assert score.recall > 0.6

    def test_model_not_mutated(self, world):
        before = {k: v.copy() for k, v in
                  world["model"].state_dict().items()}
        run_detector(world)
        after = world["model"].state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key]), key

    def test_trace_records_every_iteration(self, world):
        config = ENLDConfig(iterations=4, steps_per_iteration=3,
                            warmup_epochs=1)
        result = run_detector(world, config)
        assert len(result.trace) == 4
        assert [s.iteration for s in result.trace] == [0, 1, 2, 3]

    def test_clean_selection_is_monotone(self, world):
        result = run_detector(world)
        previous = np.zeros(len(world["incoming"]), dtype=bool)
        for snap in result.trace:
            assert (previous <= snap.clean_mask).all()
            previous = snap.clean_mask

    def test_ambiguous_set_shrinks(self, world):
        """Fig. 13b behaviour: |A| decreases over iterations (weakly)."""
        result = run_detector(world)
        first = result.trace[0].num_ambiguous
        last = result.trace[-1].num_ambiguous
        assert last <= first

    def test_train_samples_accounted(self, world):
        result = run_detector(world)
        assert result.train_samples > 0
        assert result.trace[-1].train_samples == result.train_samples

    def test_inventory_clean_positions_valid(self, world):
        result = run_detector(world)
        pos = result.inventory_clean_positions
        candidates = world["candidates"]
        assert (pos >= 0).all() and (pos < len(candidates)).all()
        # Stringent voting should produce predominantly clean samples.
        clean = candidates.y[pos] == candidates.true_y[pos]
        assert clean.mean() > 0.8

    def test_deterministic_given_seed(self, world):
        a = run_detector(world, seed=9)
        b = run_detector(world, seed=9)
        assert np.array_equal(a.clean_mask, b.clean_mask)
        assert np.array_equal(a.inventory_clean_positions,
                              b.inventory_clean_positions)


class TestAblationFlags:
    def test_no_majority_voting_is_more_aggressive(self, world):
        strict = run_detector(world, ENLDConfig(
            iterations=2, steps_per_iteration=5, warmup_epochs=1))
        loose = run_detector(world, ENLDConfig(
            iterations=2, steps_per_iteration=5, warmup_epochs=1,
            use_majority_voting=False))
        # Without voting, every single agreement selects → clean set at
        # least as large.
        assert loose.num_clean >= strict.num_clean

    def test_random_policy_used_when_contrastive_disabled(self):
        det = FineGrainedDetector(ENLDConfig(use_contrastive_sampling=False))
        assert det.policy.name == "random"

    def test_policy_name_resolution(self):
        det = FineGrainedDetector(ENLDConfig(sampling_policy="entropy"))
        assert det.policy.name == "entropy"

    def test_contrastive_probability_flag_passed(self):
        det = FineGrainedDetector(ENLDConfig(use_probability_label=False))
        assert det.policy.use_probability_label is False


class TestMissingLabels:
    def test_pseudo_labels_for_missing_rows(self, world):
        d = world["incoming"]
        gen = np.random.default_rng(3)
        missing_rows = gen.choice(len(d), size=15, replace=False)
        y = d.y.copy()
        y[missing_rows] = MISSING_LABEL
        with_missing = LabeledDataset(d.x, y, true_y=d.true_y, ids=d.ids)
        result = run_detector(world, dataset=with_missing)
        # Missing rows are excluded from clean/noisy and get pseudo labels.
        assert not result.clean_mask[missing_rows].any()
        assert not result.noisy_mask[missing_rows].any()
        assert (result.pseudo_labels[missing_rows] >= 0).all()
        labeled = np.setdiff1d(np.arange(len(d)), missing_rows)
        assert (result.pseudo_labels[labeled] == -1).all()

    def test_pseudo_labels_mostly_correct(self, world):
        d = world["incoming"]
        gen = np.random.default_rng(4)
        missing_rows = gen.choice(len(d), size=20, replace=False)
        y = d.y.copy()
        y[missing_rows] = MISSING_LABEL
        with_missing = LabeledDataset(d.x, y, true_y=d.true_y, ids=d.ids)
        result = run_detector(world, dataset=with_missing)
        acc = (result.pseudo_labels[missing_rows]
               == d.true_y[missing_rows]).mean()
        assert acc > 0.6

    def test_no_missing_means_no_pseudo(self, world):
        result = run_detector(world)
        assert (result.pseudo_labels == -1).all()


class TestResultProperties:
    def test_counts(self, world):
        result = run_detector(world)
        assert result.num_clean == int(result.clean_mask.sum())
        assert result.num_noisy == int(result.noisy_mask.sum())
