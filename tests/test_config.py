"""Tests for repro.core.config (ENLDConfig and ablation variants)."""

import pytest

from repro.core.config import ENLDConfig


class TestValidation:
    def test_defaults_follow_paper(self):
        cfg = ENLDConfig()
        assert cfg.contrastive_k == 3
        assert cfg.steps_per_iteration == 5
        assert cfg.warmup_epochs == 2
        assert cfg.mixup_alpha == 0.2

    @pytest.mark.parametrize("field,value", [
        ("contrastive_k", 0),
        ("iterations", 0),
        ("steps_per_iteration", 0),
        ("warmup_epochs", -1),
        ("inventory_train_fraction", 0.0),
        ("inventory_train_fraction", 1.0),
        ("mixup_alpha", 0.0),
    ])
    def test_invalid_values(self, field, value):
        with pytest.raises(ValueError):
            ENLDConfig(**{field: value})

    def test_mixup_none_allowed(self):
        assert ENLDConfig(mixup_alpha=None).mixup_alpha is None


class TestMajorityThreshold:
    @pytest.mark.parametrize("s,expected", [(1, 1), (3, 2), (5, 3), (6, 4)])
    def test_floor_s_over_2_plus_1(self, s, expected):
        assert ENLDConfig(steps_per_iteration=s).majority_threshold \
            == expected


class TestOverridesAndAblations:
    def test_with_overrides_returns_new(self):
        base = ENLDConfig()
        other = base.with_overrides(contrastive_k=4)
        assert other.contrastive_k == 4
        assert base.contrastive_k == 3

    def test_ablation_variants(self):
        base = ENLDConfig()
        assert base.ablation("origin") == base
        assert not base.ablation("enld-1").use_contrastive_sampling
        assert not base.ablation("enld-2").use_majority_voting
        assert not base.ablation("enld-3").merge_clean_into_contrastive
        assert not base.ablation("enld-4").use_probability_label

    def test_ablation_case_insensitive(self):
        assert not ENLDConfig().ablation("ENLD-1").use_contrastive_sampling

    def test_unknown_ablation(self):
        with pytest.raises(KeyError, match="available"):
            ENLDConfig().ablation("enld-9")

    def test_frozen(self):
        with pytest.raises(Exception):
            ENLDConfig().contrastive_k = 5
