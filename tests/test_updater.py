"""Tests for repro.datalake.updater (async model updates + versioning)."""

import threading
import time

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.scheduler import EveryNArrivals
from repro.datalake import (ArrivalStream, NO_WAIT_RETRY, NoisyLabelPlatform,
                            RetryPolicy, UpdaterConfig, catalog_state)
from repro.datasets import generate, split_inventory_incremental, toy
from repro.datasets.splits import ShardPlan
from repro.nn.serialize import state_digest
from repro.noise import corrupt_labels, pair_asymmetric


@pytest.fixture(scope="module")
def world():
    data = generate(toy(num_classes=6, samples_per_class=80), seed=70)
    rng = np.random.default_rng(71)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, 0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool,
                             ShardPlan(num_shards=4, classes_per_shard=3),
                             transition=transition, seed=72).arrivals()
    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=10, iterations=2,
                        steps_per_iteration=3, seed=73)
    return {"inventory": inventory, "arrivals": arrivals, "config": config}


def make_platform(world, **kwargs):
    kwargs.setdefault("retry", NO_WAIT_RETRY)
    return NoisyLabelPlatform(world["inventory"], config=world["config"],
                              **kwargs)


def async_updater(**kwargs):
    kwargs.setdefault("mode", "thread")
    kwargs.setdefault("retry", RetryPolicy(max_retries=1, backoff_base=0.0,
                                           sleep=lambda _s: None))
    return UpdaterConfig(**kwargs)


class GatedTrainer:
    """Shadow a service's ``_train_job`` so scheduled jobs block on a gate.

    Forced jobs pass straight through, which lets tests interleave a
    hung scheduled update with a forced synchronous one.
    """

    def __init__(self, service):
        self.gate = threading.Event()
        self.calls = 0
        self.finished = 0
        self.original = service._train_job
        service._train_job = self

    def __call__(self, job, model, i_t, i_c):
        self.calls += 1
        if job.reason == "scheduled":
            assert self.gate.wait(timeout=60), "gate never released"
        outcome = self.original(job, model, i_t, i_c)
        self.finished += 1
        return outcome


def drain_update_threads(timeout=10.0):
    """Wait for abandoned update worker threads to wind down."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not any(t.name.startswith("repro-update")
                   for t in threading.enumerate()):
            return
        time.sleep(0.02)


# ----------------------------------------------------------------------
# Version lineage (content-addressed catalog)
# ----------------------------------------------------------------------
class TestVersionLineage:
    def test_setup_version_registered(self, world):
        platform = make_platform(world)
        versions = platform.catalog.versions
        assert len(versions) == 1
        v0 = versions[0]
        assert v0.seq == 0 and v0.reason == "setup" and v0.parent is None
        assert v0.weights_digest == state_digest(platform.enld.model)
        assert platform.catalog.active_version_id == v0.version_id

    def test_scheduled_update_versions_and_record_tags(self, world):
        platform = make_platform(world, scheduler=EveryNArrivals(2))
        for arrival in world["arrivals"]:
            platform.submit(arrival)
        versions = platform.catalog.versions
        assert len(versions) >= 2
        assert versions[1].reason == "scheduled"
        assert versions[1].parent == versions[0].version_id
        assert versions[1].clean_pool_size > 0
        # The active head matches the installed weights exactly.
        assert platform.catalog.active_version.weights_digest \
            == state_digest(platform.enld.model)
        # Every record is tagged with the version that judged it, and
        # the tag only ever moves forward along the lineage.
        order = [v.version_id for v in versions]
        tags = [platform.catalog.get_detection(n).model_version
                for n in platform.catalog.processed_names]
        indexes = [order.index(t) for t in tags]
        assert indexes == sorted(indexes)
        assert indexes[0] == 0 and indexes[-1] >= 1

    def test_version_ids_are_content_addressed(self, world):
        def run():
            platform = make_platform(world, scheduler=EveryNArrivals(2))
            for arrival in world["arrivals"]:
                platform.submit(arrival)
            return [v.version_id for v in platform.catalog.versions]

        assert run() == run()

    def test_get_version_by_seq_prefix_and_id(self, world):
        platform = make_platform(world, scheduler=EveryNArrivals(2))
        for arrival in world["arrivals"][:2]:
            platform.submit(arrival)
        catalog = platform.catalog
        head = catalog.active_version
        assert catalog.get_version(head.version_id) is head
        assert catalog.get_version(head.version_id[:6]) is head
        assert catalog.get_version(str(head.seq)) is head
        with pytest.raises(KeyError):
            catalog.get_version("zzzz-no-such-version")

    def test_verdicts_by_version(self, world):
        platform = make_platform(world, scheduler=EveryNArrivals(2))
        for arrival in world["arrivals"]:
            platform.submit(arrival)
        catalog = platform.catalog
        per_version = [catalog.verdicts_by_version(v.version_id)
                       for v in catalog.versions]
        assert sum(len(rs) for rs in per_version) \
            == len(catalog.processed_names)


# ----------------------------------------------------------------------
# Async service mechanics (thread worker)
# ----------------------------------------------------------------------
class TestAsyncService:
    def test_enqueue_while_training_coalesces(self, world):
        platform = make_platform(world, updater=async_updater())
        for arrival in world["arrivals"][:2]:
            platform.submit(arrival)
        service = platform.update_service
        trainer = GatedTrainer(service)
        try:
            assert service.request_update(reason="scheduled")
            # Second fire while the worker trains: coalesced.
            assert not service.request_update(reason="scheduled")
            assert service.status()["state"] == "pending"
            trainer.gate.set()
            assert service.wait(timeout=60)
        finally:
            trainer.gate.set()
        assert len(platform.catalog.versions) == 2
        assert service.status()["state"] == "idle"
        assert platform.model_updates == 1

    def test_forced_sync_supersedes_pending_job(self, world):
        platform = make_platform(world, updater=async_updater())
        for arrival in world["arrivals"][:2]:
            platform.submit(arrival)
        service = platform.update_service
        trainer = GatedTrainer(service)
        try:
            assert service.request_update(reason="scheduled")
            platform.update_model(epochs=2)  # forced, synchronous
        finally:
            trainer.gate.set()
        head = platform.catalog.active_version
        assert head.reason == "forced" and head.train_epochs == 2
        assert platform.model_updates == 1
        drain_update_threads()
        # The abandoned worker's late result must never install.
        swapped, failure = service.poll()
        assert not swapped and failure is None
        assert len(platform.catalog.versions) == 2

    def test_async_swap_matches_inline_run(self, world):
        inline = make_platform(world, scheduler=EveryNArrivals(2))
        threaded = make_platform(world, scheduler=EveryNArrivals(2),
                                 updater=async_updater())
        for arrival in world["arrivals"]:
            inline.submit(arrival)
            threaded.submit(arrival)
            # Drain the async job before the next arrival so both
            # platforms swap at the same stream position.
            threaded.update_service.wait(timeout=120)
        assert [v.version_id for v in inline.catalog.versions] \
            == [v.version_id for v in threaded.catalog.versions]
        # Verdicts and version tags are bit-identical; only the
        # wall-clock process_seconds may differ between the two runs.
        def verdicts(platform):
            state = catalog_state(platform.catalog)
            for record in state["records"]:
                record.pop("process_seconds")
            return state

        assert verdicts(inline) == verdicts(threaded)

    def test_watchdog_aborts_hung_training(self, world):
        platform = make_platform(
            world, updater=async_updater(timeout_seconds=0.02))
        for arrival in world["arrivals"][:2]:
            platform.submit(arrival)
        service = platform.update_service
        trainer = GatedTrainer(service)  # never released while hanging
        try:
            assert service.request_update(reason="scheduled")
            failures = []
            deadline = time.monotonic() + 30
            while service.pending_job is not None \
                    and time.monotonic() < deadline:
                time.sleep(0.03)
                _swapped, failure = service.poll()
                if failure is not None:
                    failures.append(failure)
            # Attempt budget (1 retry) exhausted: parked in failed state.
            assert service.pending_job is None
            assert service.watchdog_aborts == 2
            assert service.status()["state"] == "failed"
            assert "watchdog" in service.status()["error"]
            assert all("watchdog" in f.error for f in failures)
            # The platform keeps serving the old model meanwhile.
            report = platform.submit(world["arrivals"][2])
            assert not report.quarantined
            assert report.record.model_version \
                == platform.catalog.active_version_id
        finally:
            trainer.gate.set()
        drain_update_threads()
        # Late results from abandoned workers are discarded, the model
        # and version lineage stay exactly as they were.
        swapped, failure = service.poll()
        assert not swapped and failure is None
        assert len(platform.catalog.versions) == 1
        assert platform.catalog.active_version.seq == 0

    def test_hung_update_never_stalls_submissions(self, world):
        # No watchdog at all: the job simply stays pending forever and
        # every submission keeps completing under the old model.
        platform = make_platform(world, updater=async_updater())
        for arrival in world["arrivals"][:2]:
            platform.submit(arrival)
        service = platform.update_service
        trainer = GatedTrainer(service)
        try:
            assert service.request_update(reason="scheduled")
            before = platform.catalog.active_version_id
            for arrival in world["arrivals"][2:]:
                report = platform.submit(arrival)
                assert report.record is not None
                assert report.record.model_version == before
            assert service.status()["state"] == "pending"
        finally:
            trainer.gate.set()
        assert service.wait(timeout=60)
        assert platform.catalog.active_version_id != before


# ----------------------------------------------------------------------
# Process worker
# ----------------------------------------------------------------------
class TestProcessWorker:
    def test_process_update_matches_inline_version(self, world):
        proc = make_platform(world,
                             updater=async_updater(mode="process"))
        inline = make_platform(world)
        for arrival in world["arrivals"][:2]:
            proc.submit(arrival)
            inline.submit(arrival)
        assert proc.update_service.request_update(reason="scheduled")
        assert proc.update_service.wait(timeout=180)
        inline.update_service.run_sync(reason="scheduled")
        # Same job spec + derived seed → byte-identical weights, hence
        # the same content address, across worker placements.
        assert [v.version_id for v in proc.catalog.versions] \
            == [v.version_id for v in inline.catalog.versions]
        assert state_digest(proc.enld.model) \
            == state_digest(inline.enld.model)


# ----------------------------------------------------------------------
# Service state & configuration
# ----------------------------------------------------------------------
class TestServiceConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            UpdaterConfig(mode="gpu-cluster")

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            UpdaterConfig(timeout_seconds=0.0)

    def test_empty_clean_pool_rejected(self, world):
        platform = make_platform(world)
        with pytest.raises(ValueError, match="clean set"):
            platform.update_model()

    def test_status_durable_fields_only(self, world):
        platform = make_platform(world)
        status = platform.update_service.status()
        assert status == {"mode": "inline", "state": "idle",
                          "pending": False, "attempts": 0,
                          "reason": None, "error": None}

    def test_quality_report_carries_version_state(self, world):
        platform = make_platform(world)
        report = platform.quality_report()
        assert report["model_version"] \
            == platform.catalog.active_version_id
        assert report["model_versions"] == 1
        assert report["pending_update"]["state"] == "idle"
