"""Cross-module property-based invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.transition import pair_asymmetric, symmetric, validate_transition


class TestTransitionComposition:
    @given(st.integers(2, 12), st.floats(0.0, 0.8), st.floats(0.0, 0.8))
    @settings(max_examples=30, deadline=None)
    def test_composed_noise_still_stochastic(self, n, a, b):
        """Two noise stages compose into a valid transition matrix —
        the basis for modelling multi-hop labelling pipelines."""
        composed = pair_asymmetric(n, a) @ symmetric(n, b)
        validate_transition(composed)

    @given(st.integers(2, 10), st.floats(0.0, 0.45))
    @settings(max_examples=30, deadline=None)
    def test_composition_increases_noise(self, n, eta):
        """Composing a noisy stage with itself never cleans labels."""
        single = pair_asymmetric(n, eta)
        double = single @ single
        assert np.diag(double).min() <= np.diag(single).min() + 1e-12


class TestKDTreeOrderInvariance:
    @given(st.integers(5, 40), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_shuffled_build_same_distances(self, n, k):
        from repro.index.kdtree import KDTree
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(n, 3))
        perm = rng.permutation(n)
        q = rng.normal(size=3)
        d1, _ = KDTree(pts).query(q, k=k)
        d2, _ = KDTree(pts[perm]).query(q, k=k)
        assert np.allclose(d1, d2)


class TestTrainingStability:
    def test_tiny_lr_barely_moves_parameters(self, blobs, rng):
        from repro.nn.models import MLPClassifier
        from repro.nn.train import fit
        model = MLPClassifier(5, 3, hidden=16, rng=rng)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        fit(model, blobs, epochs=1, rng=rng, lr=1e-9, momentum=0.0,
            weight_decay=0.0)
        for key, value in model.state_dict().items():
            assert np.allclose(value, before[key], atol=1e-5), key

    @given(st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_samples_processed_scales_with_epochs(self, epochs):
        from repro.nn.data import LabeledDataset
        from repro.nn.models import MLPClassifier
        from repro.nn.train import fit
        gen = np.random.default_rng(0)
        ds = LabeledDataset(gen.normal(size=(30, 4)),
                            gen.integers(0, 3, size=30))
        model = MLPClassifier(4, 3, hidden=8, rng=gen)
        report = fit(model, ds, epochs=epochs, rng=gen)
        assert report.samples_processed == 30 * epochs


class TestDetectionScoreIdentities:
    @given(st.integers(1, 60), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_symmetry_of_perfect_detection(self, n, seed):
        from repro.eval.metrics import score_masks
        rng = np.random.default_rng(seed)
        truth = rng.random(n) < 0.3
        s = score_masks(truth, truth)
        if truth.any():
            assert s.precision == s.recall == s.f1 == 1.0
        else:
            assert s.f1 == 0.0

    @given(st.integers(2, 60), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_complement_detection_zero_overlap(self, n, seed):
        from repro.eval.metrics import score_masks
        rng = np.random.default_rng(seed)
        truth = rng.random(n) < 0.5
        s = score_masks(~truth, truth)
        assert s.precision == 0.0 and s.recall == 0.0 and s.f1 == 0.0


class TestMixupInvariants:
    @given(st.integers(2, 30), st.integers(2, 6), st.floats(0.05, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_targets_remain_distributions(self, n, classes, alpha):
        from repro.nn.mixup import mixup_batch
        rng = np.random.default_rng(1)
        x = rng.normal(size=(n, 4))
        y = rng.integers(0, classes, size=n)
        _, targets = mixup_batch(x, y, classes, rng, alpha=alpha)
        assert np.allclose(targets.sum(axis=1), 1.0)
        assert (targets >= 0).all()

    @given(st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_feature_mean_preserved(self, n):
        """Mixing a batch with its own permutation preserves the mean."""
        from repro.nn.mixup import mixup_batch
        rng = np.random.default_rng(2)
        x = rng.normal(size=(n, 3))
        y = np.zeros(n, dtype=int)
        mixed, _ = mixup_batch(x, y, 2, rng, alpha=0.3)
        assert np.allclose(mixed.mean(axis=0), x.mean(axis=0), atol=1e-9)
