"""Tests for repro.nn.train, repro.nn.mixup, repro.nn.serialize,
repro.nn.metrics."""

import numpy as np
import pytest

from repro.nn.data import LabeledDataset
from repro.nn.metrics import accuracy, confusion_matrix, evaluate_accuracy
from repro.nn.mixup import mixup_batch
from repro.nn.models import MLPClassifier
from repro.nn.optim import SGD
from repro.nn.serialize import (clone_module, copy_into, load_checkpoint,
                                save_checkpoint)
from repro.nn.train import evaluate_loss, fit, fit_epoch


class TestMixup:
    def test_shapes_and_convexity(self, rng):
        x = rng.normal(size=(10, 4))
        y = rng.integers(0, 3, size=10)
        mx, mt = mixup_batch(x, y, 3, rng, alpha=0.2)
        assert mx.shape == x.shape
        assert mt.shape == (10, 3)
        assert np.allclose(mt.sum(axis=1), 1.0)
        # Mixed inputs stay within the convex hull of min/max per feature.
        assert mx.min() >= x.min() - 1e-12
        assert mx.max() <= x.max() + 1e-12

    def test_lambda_one_recovers_original(self, rng):
        # With alpha tiny, lambda is almost surely near 0 or 1, so the
        # mixture nearly equals one of the two inputs.
        x = rng.normal(size=(6, 2))
        y = rng.integers(0, 2, size=6)
        mx, mt = mixup_batch(x, y, 2, rng, alpha=0.01)
        closest = min(np.abs(mx - x).max(), 1.0)
        assert closest < 1.0  # sanity: mixing happened at all

    def test_invalid_alpha(self, rng):
        with pytest.raises(ValueError):
            mixup_batch(np.zeros((2, 2)), np.zeros(2, dtype=int), 2, rng,
                        alpha=0.0)


class TestFit:
    def test_loss_decreases_on_separable_data(self, blobs, rng):
        model = MLPClassifier(5, 3, hidden=16, rng=rng)
        report = fit(model, blobs, epochs=6, rng=rng, lr=0.05)
        assert report.epoch_losses[-1] < report.epoch_losses[0]
        assert report.samples_processed == 6 * len(blobs)

    def test_reaches_high_accuracy(self, trained_blob_model, blobs):
        assert evaluate_accuracy(trained_blob_model, blobs) >= 0.93

    def test_mixup_training_works(self, blobs, rng):
        model = MLPClassifier(5, 3, hidden=16, rng=rng)
        report = fit(model, blobs, epochs=6, rng=rng, lr=0.05,
                     mixup_alpha=0.2)
        assert evaluate_accuracy(model, blobs) > 0.9
        assert len(report.epoch_losses) == 6

    def test_keep_best_restores_best_checkpoint(self, blobs, rng):
        model = MLPClassifier(5, 3, hidden=16, rng=rng)
        report = fit(model, blobs, epochs=5, rng=rng, lr=0.05,
                     validate_on=blobs, keep_best=True)
        final_acc = evaluate_accuracy(model, blobs)
        assert np.isclose(final_acc, max(report.val_accuracies), atol=1e-9)

    def test_zero_epochs(self, blobs, rng):
        model = MLPClassifier(5, 3, rng=rng)
        report = fit(model, blobs, epochs=0, rng=rng)
        assert report.epoch_losses == []

    def test_negative_epochs_rejected(self, blobs, rng):
        with pytest.raises(ValueError):
            fit(MLPClassifier(5, 3, rng=rng), blobs, epochs=-1, rng=rng)

    def test_empty_dataset_is_noop(self, rng):
        model = MLPClassifier(5, 3, rng=rng)
        empty = LabeledDataset(np.zeros((0, 5)), np.zeros(0, dtype=int))
        opt = SGD(model.parameters(), lr=0.1)
        loss, n = fit_epoch(model, empty, opt, rng)
        assert (loss, n) == (0.0, 0)

    def test_final_loss_property(self, blobs, rng):
        model = MLPClassifier(5, 3, rng=rng)
        report = fit(model, blobs, epochs=2, rng=rng)
        assert report.final_loss == report.epoch_losses[-1]


class TestEvaluateLoss:
    def test_matches_cross_entropy(self, trained_blob_model, blobs):
        loss = evaluate_loss(trained_blob_model, blobs)
        assert loss < 0.5  # well-trained

    def test_true_label_option(self, trained_blob_model, blobs):
        a = evaluate_loss(trained_blob_model, blobs)
        b = evaluate_loss(trained_blob_model, blobs, use_true_labels=True)
        assert np.isclose(a, b)  # blobs are clean

    def test_empty(self, trained_blob_model):
        empty = LabeledDataset(np.zeros((0, 5)), np.zeros(0, dtype=int))
        assert evaluate_loss(trained_blob_model, empty) == 0.0


class TestSerialize:
    def test_checkpoint_roundtrip(self, trained_blob_model, tmp_path, blobs):
        path = str(tmp_path / "model.npz")
        save_checkpoint(trained_blob_model, path)
        fresh = MLPClassifier(5, 3, hidden=32,
                              rng=np.random.default_rng(77))
        load_checkpoint(fresh, path)
        x = blobs.x[:10]
        assert np.allclose(fresh.predict_logits(x),
                           trained_blob_model.predict_logits(x))

    def test_load_rejects_non_checkpoint(self, tmp_path, rng):
        path = str(tmp_path / "junk.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises((ValueError, KeyError)):
            load_checkpoint(MLPClassifier(2, 2, rng=rng), path)

    def test_clone_is_independent(self, trained_blob_model, blobs):
        clone = clone_module(trained_blob_model)
        clone.parameters()[0].data[:] = 0.0
        x = blobs.x[:5]
        assert not np.allclose(clone.predict_logits(x),
                               trained_blob_model.predict_logits(x))

    def test_copy_into(self, trained_blob_model, rng, blobs):
        dst = MLPClassifier(5, 3, hidden=32, rng=rng)
        copy_into(trained_blob_model, dst)
        x = blobs.x[:5]
        assert np.allclose(dst.predict_logits(x),
                           trained_blob_model.predict_logits(x))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == 2 / 3

    def test_accuracy_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_accuracy_shape_check(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(2), np.zeros(3))

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 1, 1]), np.array([0, 0, 1]), 2)
        assert np.array_equal(cm, [[1, 1], [0, 1]])
        assert cm.sum() == 3

    def test_evaluate_accuracy_true_labels(self, trained_blob_model, blobs):
        noisy = blobs.with_labels((blobs.y + 1) % 3)
        clean_acc = evaluate_accuracy(trained_blob_model, noisy,
                                      use_true_labels=True)
        noisy_acc = evaluate_accuracy(trained_blob_model, noisy)
        assert clean_acc > 0.9
        assert noisy_acc < 0.1
