"""Tests for repro.core.missing (§V-H missing-label utilities)."""

import numpy as np
import pytest

from repro.core.detector import DetectionResult
from repro.core.missing import (missing_label_report, missing_rows,
                                pseudo_label_accuracy, pseudo_label_f1)
from repro.noise import MISSING_LABEL
from repro.nn.data import LabeledDataset


def make_dataset():
    y = np.array([0, MISSING_LABEL, 1, MISSING_LABEL, 2])
    true_y = np.array([0, 1, 1, 2, 2])
    return LabeledDataset(np.zeros((5, 2)), y, true_y=true_y)


def make_result(pseudo):
    n = len(pseudo)
    return DetectionResult(
        clean_mask=np.zeros(n, dtype=bool),
        noisy_mask=np.zeros(n, dtype=bool),
        inventory_clean_positions=np.empty(0, dtype=int),
        pseudo_labels=np.asarray(pseudo))


class TestMissingRows:
    def test_positions(self):
        assert np.array_equal(missing_rows(make_dataset()), [1, 3])

    def test_none_missing(self):
        ds = LabeledDataset(np.zeros((3, 1)), np.arange(3))
        assert missing_rows(ds).size == 0


class TestPseudoAccuracy:
    def test_all_correct(self):
        result = make_result([-1, 1, -1, 2, -1])
        assert pseudo_label_accuracy(result, make_dataset()) == 1.0

    def test_half_correct(self):
        result = make_result([-1, 1, -1, 0, -1])
        assert pseudo_label_accuracy(result, make_dataset()) == 0.5

    def test_requires_truth(self):
        ds = LabeledDataset(np.zeros((2, 1)),
                            np.array([MISSING_LABEL, 0]))
        with pytest.raises(ValueError):
            pseudo_label_accuracy(make_result([0, -1]), ds)

    def test_no_missing_returns_zero(self):
        ds = LabeledDataset(np.zeros((2, 1)), np.arange(2),
                            true_y=np.arange(2))
        assert pseudo_label_accuracy(make_result([-1, -1]), ds) == 0.0


class TestPseudoF1:
    def test_perfect_macro_f1(self):
        result = make_result([-1, 1, -1, 2, -1])
        assert pseudo_label_f1(result, make_dataset()) == 1.0

    def test_wrong_labels_lower_f1(self):
        perfect = make_result([-1, 1, -1, 2, -1])
        wrong = make_result([-1, 2, -1, 1, -1])
        ds = make_dataset()
        assert pseudo_label_f1(wrong, ds) < pseudo_label_f1(perfect, ds)

    def test_bounded(self):
        result = make_result([-1, 0, -1, 0, -1])
        f1 = pseudo_label_f1(result, make_dataset())
        assert 0.0 <= f1 <= 1.0


class TestReport:
    def test_fields(self):
        report = missing_label_report(make_result([-1, 1, -1, 2, -1]),
                                      make_dataset())
        assert report["missing_count"] == 2
        assert np.isclose(report["missing_fraction"], 0.4)
        assert report["pseudo_accuracy"] == 1.0
        assert report["pseudo_f1"] == 1.0
