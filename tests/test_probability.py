"""Tests for repro.core.probability (Eq. 3–5 and label sampling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.probability import (conditional_from_joint,
                                    estimate_conditional,
                                    estimate_joint_counts,
                                    sample_probable_true_labels)

joint_matrices = hnp.arrays(
    dtype=np.int64, shape=st.tuples(st.integers(2, 8)).map(lambda t: (t[0],
                                                                      t[0])),
    elements=st.integers(0, 50))


class TestJointCounts:
    def test_counts(self):
        observed = np.array([0, 0, 1, 1, 1])
        predicted = np.array([0, 1, 1, 1, 0])
        joint = estimate_joint_counts(observed, predicted, 2)
        assert np.array_equal(joint, [[1, 1], [1, 2]])
        assert joint.sum() == 5

    def test_alignment_check(self):
        with pytest.raises(ValueError):
            estimate_joint_counts(np.zeros(3, dtype=int),
                                  np.zeros(2, dtype=int), 2)

    @given(st.integers(2, 6), st.integers(1, 60))
    @settings(max_examples=25, deadline=None)
    def test_total_preserved(self, classes, n):
        rng = np.random.default_rng(0)
        obs = rng.integers(0, classes, size=n)
        pred = rng.integers(0, classes, size=n)
        assert estimate_joint_counts(obs, pred, classes).sum() == n


class TestConditional:
    def test_row_normalisation(self):
        joint = np.array([[8, 2], [1, 9]])
        cond = conditional_from_joint(joint)
        assert np.allclose(cond.sum(axis=1), 1.0)
        assert np.allclose(cond[0], [0.8, 0.2])

    def test_empty_row_falls_back_to_identity(self):
        joint = np.array([[0, 0], [3, 1]])
        cond = conditional_from_joint(joint)
        assert np.allclose(cond[0], [1.0, 0.0])
        assert np.allclose(cond.sum(axis=1), 1.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            conditional_from_joint(np.ones((2, 3)))

    @given(joint_matrices)
    @settings(max_examples=40, deadline=None)
    def test_always_row_stochastic(self, joint):
        cond = conditional_from_joint(joint)
        assert np.allclose(cond.sum(axis=1), 1.0)
        assert (cond >= 0).all()


class TestEstimateConditional:
    def test_perfect_model_gives_noise_structure(self, trained_blob_model,
                                                 blobs, rng):
        """With a near-perfect model, P̃ ≈ the true transition structure."""
        from repro.noise import corrupt_labels, pair_asymmetric
        noisy = corrupt_labels(blobs, pair_asymmetric(3, 0.3), rng)
        cond = estimate_conditional(trained_blob_model, noisy)
        # Rows: observed class i → mass on i (clean part) and i-1
        # (the true class that got flipped into i).
        assert np.allclose(cond.sum(axis=1), 1.0)
        for i in range(3):
            assert cond[i, i] > 0.4

    def test_clean_labels_give_near_identity(self, trained_blob_model, blobs):
        cond = estimate_conditional(trained_blob_model, blobs)
        assert np.all(np.diag(cond) >= 0.8)


class TestSampleProbableTrueLabels:
    def test_restriction_to_allowed(self, rng):
        cond = np.full((4, 4), 0.25)
        observed = np.array([0, 1, 2, 3] * 20)
        out = sample_probable_true_labels(observed, cond,
                                          np.array([1, 2]), rng)
        assert set(np.unique(out)) <= {1, 2}

    def test_deterministic_row(self, rng):
        cond = np.eye(3)
        observed = np.array([2, 0, 1])
        out = sample_probable_true_labels(observed, cond,
                                          np.arange(3), rng)
        assert np.array_equal(out, observed)

    def test_empirical_distribution_matches(self):
        cond = np.array([[0.7, 0.3], [0.2, 0.8]])
        observed = np.zeros(4000, dtype=int)
        out = sample_probable_true_labels(observed, cond, np.arange(2),
                                          np.random.default_rng(0))
        frac1 = (out == 1).mean()
        assert abs(frac1 - 0.3) < 0.03

    def test_zero_mass_falls_back_to_observed(self, rng):
        # Row 0 has all mass on class 2, which is not allowed; class 0
        # itself is allowed → fall back to it.
        cond = np.array([[0.0, 0.0, 1.0],
                         [0.0, 1.0, 0.0],
                         [0.0, 0.0, 1.0]])
        out = sample_probable_true_labels(np.array([0]), cond,
                                          np.array([0, 1]), rng)
        assert out[0] == 0

    def test_zero_mass_uniform_when_observed_not_allowed(self, rng):
        cond = np.array([[0.0, 0.0, 1.0],
                         [0.0, 1.0, 0.0],
                         [0.0, 0.0, 1.0]])
        out = sample_probable_true_labels(np.zeros(200, dtype=int), cond,
                                          np.array([1]), rng)
        assert (out == 1).all()

    def test_empty_allowed_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_probable_true_labels(np.array([0]), np.eye(2),
                                        np.array([]), rng)
