"""Tests for repro.datasets.synthetic and repro.datasets.registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.registry import (available_presets, cifar100_like,
                                     emnist_like, get_preset,
                                     tiny_imagenet_like, toy)
from repro.datasets.synthetic import (SyntheticSpec, generate,
                                      generate_images, make_prototypes)


class TestSpecValidation:
    def test_valid_spec(self):
        spec = SyntheticSpec(num_classes=4, samples_per_class=10)
        assert spec.total_samples == 40
        assert spec.feature_dim == 256

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=1, samples_per_class=10)
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=3, samples_per_class=0)
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=3, samples_per_class=5, class_corr=1.0)
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=3, samples_per_class=5,
                          noise_scale=-0.1)

    @given(st.integers(2, 20), st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_total_samples_property(self, classes, per_class):
        spec = SyntheticSpec(num_classes=classes,
                             samples_per_class=per_class)
        assert spec.total_samples == classes * per_class


class TestPrototypes:
    def test_shape_and_unit_norm(self):
        spec = SyntheticSpec(num_classes=5, samples_per_class=1,
                             image_shape=(1, 8, 8))
        protos = make_prototypes(spec, np.random.default_rng(0))
        assert protos.shape == (5, 1, 8, 8)
        norms = np.linalg.norm(protos.reshape(5, -1), axis=1)
        assert np.allclose(norms, 1.0)

    def test_adjacent_correlation_increases_with_corr(self):
        def mean_adjacent_cos(corr):
            spec = SyntheticSpec(num_classes=20, samples_per_class=1,
                                 image_shape=(1, 8, 8), class_corr=corr)
            p = make_prototypes(spec, np.random.default_rng(1))
            flat = p.reshape(20, -1)
            cos = (flat[:-1] * flat[1:]).sum(axis=1)
            return cos.mean()

        assert mean_adjacent_cos(0.8) > mean_adjacent_cos(0.2)


class TestGenerate:
    def test_deterministic(self):
        spec = toy()
        a = generate(spec, seed=3)
        b = generate(spec, seed=3)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        spec = toy()
        assert not np.array_equal(generate(spec, seed=1).x,
                                  generate(spec, seed=2).x)

    def test_class_balance(self):
        spec = SyntheticSpec(num_classes=4, samples_per_class=25,
                             image_shape=(1, 6, 6))
        data = generate(spec, seed=0)
        assert np.array_equal(np.bincount(data.y), [25] * 4)

    def test_labels_initially_clean(self):
        data = generate(toy(), seed=0)
        assert data.noise_rate() == 0.0

    def test_learnable_by_simple_model(self):
        """The generator's whole point: a model must be able to learn it."""
        from repro.nn.models import MLPClassifier
        from repro.nn.train import fit
        from repro.nn.metrics import evaluate_accuracy
        data = generate(toy(), seed=4)
        gen = np.random.default_rng(0)
        model = MLPClassifier(data.feature_dim, data.num_classes,
                              hidden=48, rng=gen)
        fit(model, data, epochs=12, rng=gen, lr=0.05)
        assert evaluate_accuracy(model, data) > 0.8

    def test_harder_spec_is_harder(self):
        """Higher class_corr + noise → lower attainable accuracy."""
        from repro.nn.models import MLPClassifier
        from repro.nn.train import fit
        from repro.nn.metrics import evaluate_accuracy

        def acc_for(corr, noise):
            spec = SyntheticSpec(num_classes=8, samples_per_class=30,
                                 image_shape=(1, 6, 6), class_corr=corr,
                                 noise_scale=noise)
            data = generate(spec, seed=5)
            gen = np.random.default_rng(1)
            model = MLPClassifier(data.feature_dim, 8, hidden=32, rng=gen)
            fit(model, data, epochs=10, rng=gen, lr=0.05)
            return evaluate_accuracy(model, data)

        assert acc_for(0.1, 0.3) > acc_for(0.85, 1.2)

    def test_generate_images_shape(self):
        spec = SyntheticSpec(num_classes=3, samples_per_class=4,
                             image_shape=(3, 8, 8))
        data = generate_images(spec, seed=0)
        assert data.x.shape == (12, 3, 8, 8)
        flat = generate(spec, seed=0)
        assert np.allclose(data.x.reshape(12, -1), flat.x)


class TestRegistry:
    def test_paper_class_counts(self):
        assert emnist_like().num_classes == 26
        assert cifar100_like().num_classes == 100
        assert tiny_imagenet_like().num_classes == 200

    def test_difficulty_ordering(self):
        """EMNIST-like must be easier than Tiny-ImageNet-like."""
        e, t = emnist_like(), tiny_imagenet_like()
        assert e.class_corr < t.class_corr
        assert e.noise_scale < t.noise_scale

    def test_scales(self):
        assert (emnist_like("full").samples_per_class
                > emnist_like("bench").samples_per_class
                > emnist_like("small").samples_per_class)

    def test_unknown_scale(self):
        with pytest.raises(KeyError, match="scale"):
            emnist_like("huge")

    def test_get_preset_lookup(self):
        assert get_preset("toy").name == "toy"
        with pytest.raises(KeyError, match="available"):
            get_preset("imagenet")

    def test_available_presets(self):
        assert set(available_presets()) >= {
            "emnist_like", "cifar100_like", "tiny_imagenet_like", "toy"}
