"""Tests for repro.nn.layers (modules, parameters, state dicts)."""

import numpy as np
import pytest

from repro.nn.layers import (BatchNorm1d, Conv2d, Dropout, Flatten, LayerNorm,
                             Linear, ReLU, Sequential, Tanh)
from repro.nn.tensor import Tensor


def make_rng():
    return np.random.default_rng(0)


class TestModuleInfrastructure:
    def test_parameters_collects_nested(self):
        model = Sequential(Linear(4, 8, rng=make_rng()), ReLU(),
                           Linear(8, 2, rng=make_rng()))
        # two weights + two biases
        assert len(model.parameters()) == 4

    def test_parameters_deduplicates_shared(self):
        shared = Linear(4, 4, rng=make_rng())
        model = Sequential(shared, shared)
        assert len(model.parameters()) == 2

    def test_num_parameters(self):
        layer = Linear(3, 5, rng=make_rng())
        assert layer.num_parameters() == 3 * 5 + 5

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, rng=make_rng()), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        layer = Linear(2, 2, rng=make_rng())
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = Sequential(Linear(3, 4, rng=make_rng()), BatchNorm1d(4))
        b = Sequential(Linear(3, 4, rng=np.random.default_rng(99)),
                       BatchNorm1d(4))
        b.load_state_dict(a.state_dict())
        for ka, kb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(ka.data, kb.data)

    def test_load_state_dict_strict_missing(self):
        a = Linear(2, 2, rng=make_rng())
        state = a.state_dict()
        del state["weight"]
        with pytest.raises(KeyError, match="missing"):
            a.load_state_dict(state)

    def test_load_state_dict_strict_unexpected(self):
        a = Linear(2, 2, rng=make_rng())
        state = a.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            a.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        a = Linear(2, 2, rng=make_rng())
        state = a.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            a.load_state_dict(state)

    def test_state_dict_copies(self):
        a = Linear(2, 2, rng=make_rng())
        state = a.state_dict()
        state["weight"][:] = 99.0
        assert not np.allclose(a.weight.data, 99.0)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng=make_rng())
        assert layer(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_no_bias(self):
        layer = Linear(5, 3, bias=False, rng=make_rng())
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_accepts_raw_array(self):
        layer = Linear(2, 2, rng=make_rng())
        out = layer(np.zeros((1, 2)))
        assert isinstance(out, Tensor)

    def test_gradient_flows(self):
        layer = Linear(3, 2, rng=make_rng())
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestBatchNorm:
    def test_normalises_batch(self):
        bn = BatchNorm1d(3)
        x = np.random.default_rng(0).normal(5.0, 2.0, size=(64, 3))
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-8)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_update(self):
        bn = BatchNorm1d(2, momentum=0.5)
        x = np.full((8, 2), 4.0)
        bn(Tensor(x))
        assert np.allclose(bn.running_mean.data, 2.0)  # 0.5*0 + 0.5*4

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2)
        for _ in range(50):
            bn(Tensor(np.random.default_rng(1).normal(3.0, 1.0,
                                                      size=(32, 2))))
        bn.eval()
        out = bn(Tensor(np.full((4, 2), 3.0))).data
        assert np.allclose(out, 0.0, atol=0.3)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="expects"):
            BatchNorm1d(2)(Tensor(np.zeros((2, 2, 2))))

    def test_running_buffers_not_parameters(self):
        bn = BatchNorm1d(4)
        assert len(bn.parameters()) == 2  # gamma, beta only


class TestLayerNorm:
    def test_normalises_last_axis(self):
        ln = LayerNorm(6)
        x = np.random.default_rng(0).normal(2.0, 3.0, size=(4, 6))
        out = ln(Tensor(x)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-8)

    def test_has_learnable_params(self):
        assert len(LayerNorm(4).parameters()) == 2


class TestDropoutLayer:
    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_eval_identity(self):
        d = Dropout(0.9, rng=make_rng())
        d.eval()
        x = Tensor(np.ones((3, 3)))
        assert np.array_equal(d(x).data, x.data)

    def test_train_zeroes_some(self):
        d = Dropout(0.5, rng=make_rng())
        out = d(Tensor(np.ones((100, 100)))).data
        assert (out == 0).any()


class TestSequentialAndFlatten:
    def test_iteration_and_indexing(self):
        layers = [Linear(2, 2, rng=make_rng()), ReLU(), Tanh()]
        seq = Sequential(*layers)
        assert len(seq) == 3
        assert seq[1] is layers[1]
        assert list(seq) == layers

    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((4, 2, 3))))
        assert out.shape == (4, 6)

    def test_conv_layer_shapes(self):
        conv = Conv2d(3, 8, 3, padding=1, rng=make_rng())
        out = conv(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)
