"""Threaded stress tests for the async updater and shared caches.

The REP7xx analysis (DESIGN.md §13) proves the locking discipline
statically; these tests hammer it dynamically: foreground reader
threads race in-flight thread-mode update workers across repeated full
runs, and the run's verdicts and version lineage must stay
bit-identical to the single-threaded inline-mode run every time.  A
separate hammer drives :class:`FeatureCache` from many threads and
checks the counter-conservation invariants its lock guarantees.
"""

import threading

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.scheduler import EveryNArrivals
from repro.datalake import (ArrivalStream, NO_WAIT_RETRY,
                            NoisyLabelPlatform, RetryPolicy,
                            UpdaterConfig, catalog_state)
from repro.datasets import generate, split_inventory_incremental, toy
from repro.datasets.splits import ShardPlan
from repro.nn.featurecache import FeatureCache
from repro.noise import corrupt_labels, pair_asymmetric
from repro.obs import Tracer, use_tracer

#: Repetitions of the full threaded run (each races fresh workers).
REPEATS = 3
#: Concurrent foreground reader threads per run.
READERS = 4


@pytest.fixture(scope="module")
def world():
    data = generate(toy(num_classes=6, samples_per_class=80), seed=70)
    rng = np.random.default_rng(71)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, 0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(
        pool, ShardPlan(num_shards=4, classes_per_shard=3),
        transition=transition, seed=72).arrivals()
    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=10, iterations=2,
                        steps_per_iteration=3, seed=73)
    return {"inventory": inventory, "arrivals": arrivals,
            "config": config}


def make_platform(world, **kwargs):
    kwargs.setdefault("retry", NO_WAIT_RETRY)
    kwargs.setdefault("scheduler", EveryNArrivals(2))
    return NoisyLabelPlatform(world["inventory"],
                              config=world["config"], **kwargs)


def async_updater(**kwargs):
    kwargs.setdefault("mode", "thread")
    kwargs.setdefault("retry", RetryPolicy(max_retries=1,
                                           backoff_base=0.0,
                                           sleep=lambda _s: None))
    return UpdaterConfig(**kwargs)


def run_stream(platform, arrivals):
    """Submit every arrival, draining async updates between arrivals
    so swaps land at the same stream position as an inline run."""
    for arrival in arrivals:
        platform.submit(arrival)
        if platform.update_service is not None:
            platform.update_service.wait(timeout=120)


def fingerprint(platform):
    """Lineage + verdicts with the only wall-clock field removed."""
    state = catalog_state(platform.catalog)
    for record in state["records"]:
        record.pop("process_seconds")
    return ([v.version_id for v in platform.catalog.versions], state)


class ReaderHammer:
    """Foreground threads hammering the shared read surfaces."""

    def __init__(self, platform):
        self.platform = platform
        self.stop = threading.Event()
        self.errors = []
        self.loops = 0
        self.threads = [threading.Thread(target=self._run, daemon=True)
                        for _ in range(READERS)]

    def __enter__(self):
        for thread in self.threads:
            thread.start()
        return self

    def __exit__(self, *exc):
        self.stop.set()
        for thread in self.threads:
            thread.join(timeout=30)
        assert self.errors == []
        assert self.loops > 0

    def _run(self):
        platform = self.platform
        try:
            while not self.stop.is_set():
                platform.update_service.status()
                len(platform.catalog.versions)
                platform.catalog.active_version_id
                cache = platform.enld.feature_cache
                if cache is not None:
                    cache.stats()
                self.loops += 1
        except BaseException as exc:  # noqa: BLE001 — reported above
            self.errors.append(exc)


class TestThreadedStress:
    def test_racing_readers_keep_runs_bit_identical(self, world):
        inline = make_platform(world)
        run_stream(inline, world["arrivals"])
        baseline = fingerprint(inline)
        # The inline run actually updated — the comparison is not
        # trivially empty.
        assert len(baseline[0]) >= 2
        for _repeat in range(REPEATS):
            threaded = make_platform(world, updater=async_updater())
            with ReaderHammer(threaded):
                run_stream(threaded, world["arrivals"])
            assert fingerprint(threaded) == baseline

    def test_worker_training_work_lands_in_ambient_tracer(self, world):
        # ContextVars do not cross thread boundaries; the updater
        # captures the ambient tracer at spawn time so worker-side
        # sample-epoch work is not silently dropped.  Totals must
        # match the inline run exactly.
        def total_work(tracer):
            def walk(node):
                return node.work + sum(walk(child) for child
                                       in node.children.values())
            return walk(tracer.root)

        inline_tracer = Tracer()
        with use_tracer(inline_tracer):
            run_stream(make_platform(world), world["arrivals"])
        threaded_tracer = Tracer()
        with use_tracer(threaded_tracer):
            run_stream(make_platform(world, updater=async_updater()),
                       world["arrivals"])
        assert total_work(inline_tracer) > 0
        assert total_work(threaded_tracer) == total_work(inline_tracer)


# ----------------------------------------------------------------------
# FeatureCache under concurrency
# ----------------------------------------------------------------------
class StubModel:
    """Minimal predict_view provider with content-addressable weights."""

    def __init__(self, tag):
        self._weights = np.full(3, float(tag))
        self.num_classes = 2

    def state_dict(self):
        return {"w": self._weights}

    def predict_view(self, x, batch_size=256):
        probs = np.tile(self._weights[:2], (len(x), 1))
        features = np.asarray(x, dtype=float) * 2.0
        return probs, features


class TestFeatureCacheHammer:
    def test_counter_conservation_under_contention(self):
        cache = FeatureCache(max_entries=4)
        model = StubModel(1)
        inputs = [np.full((4, 3), float(i)) for i in range(8)]
        calls_per_thread = 60
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(calls_per_thread):
                    x = inputs[int(rng.integers(len(inputs)))]
                    probs, features = cache.view(model, x)
                    assert not features.flags.writeable
                    assert np.array_equal(features, x * 2.0)
                    assert probs.shape == (4, 2)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        stats = cache.stats()
        # The lock makes the counters exact: without it, concurrent
        # ``hits += 1`` lose updates and the books stop balancing.
        assert stats["hits"] + stats["misses"] \
            == 8 * calls_per_thread
        assert stats["entries"] == len(cache) <= 4
        assert stats["evictions"] <= stats["misses"]

    def test_invalidate_races_view_without_corruption(self):
        cache = FeatureCache(max_entries=4)
        model = StubModel(2)
        inputs = [np.full((4, 3), float(i)) for i in range(4)]
        stop = threading.Event()
        errors = []

        def reader():
            try:
                index = 0
                while not stop.is_set():
                    x = inputs[index % len(inputs)]
                    _probs, features = cache.view(model, x)
                    assert np.array_equal(features, x * 2.0)
                    index += 1
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(200):
            cache.invalidate()
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert len(cache) <= 4
