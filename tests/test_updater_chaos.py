"""Kill-mid-swap chaos tests: the update pipeline under injected faults.

The acceptance gate: for every update fault stage, a killed-and-resumed
run must produce verdicts bit-identical to an uninterrupted run with
the same fault plan — the platform is observed fully-before or
fully-after a swap, never in between.
"""

import json

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.scheduler import EveryNArrivals
from repro.datalake import (ArrivalStream, FaultPlan, FaultRule,
                            NO_WAIT_RETRY, NoisyLabelPlatform, RetryPolicy,
                            UpdaterConfig, catalog_state)
from repro.datasets import generate, split_inventory_incremental, toy
from repro.datasets.splits import ShardPlan
from repro.noise import corrupt_labels, pair_asymmetric

UPDATE_STAGES = ["update_train", "update_swap", "update_publish"]


@pytest.fixture(scope="module")
def world():
    data = generate(toy(num_classes=6, samples_per_class=80), seed=80)
    rng = np.random.default_rng(81)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, 0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool,
                             ShardPlan(num_shards=4, classes_per_shard=3),
                             transition=transition, seed=82).arrivals()
    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=10, iterations=2,
                        steps_per_iteration=3, seed=83)
    return {"inventory": inventory, "arrivals": arrivals, "config": config}


def make_platform(world, **kwargs):
    kwargs.setdefault("retry", NO_WAIT_RETRY)
    kwargs.setdefault("scheduler", EveryNArrivals(2))
    return NoisyLabelPlatform(world["inventory"], config=world["config"],
                              **kwargs)


def update_plan(stage):
    return FaultPlan([FaultRule(stage, probability=1.0, times=1)], seed=0)


def comparable_state(platform):
    """Catalog state minus the wall-clock timings."""
    state = catalog_state(platform.catalog)
    for record in state["records"]:
        record.pop("process_seconds")
    return json.dumps(state, sort_keys=True)


class TestKillMidSwapGate:
    """Golden run vs crash-at-the-fault run, per update stage."""

    @pytest.mark.parametrize("stage", UPDATE_STAGES)
    def test_resume_converges_to_golden_run(self, world, stage, tmp_path):
        # Golden: the fault fires at the first scheduled update
        # (arrival 2), the swap rolls back, the still-armed scheduler
        # retries at arrival 3 with the rule spent — and succeeds.
        golden = make_platform(world, fault_plan=update_plan(stage))
        for arrival in world["arrivals"]:
            golden.submit(arrival)
        assert golden._fault_injector.injected == {stage: 1}
        assert len(golden.catalog.versions) == 2

        # Crashed: same plan, but the process dies right after the
        # faulted submission.  Resume from the checkpoint (no plan —
        # the rule was already spent) and play the remaining arrivals.
        crashed = make_platform(world, fault_plan=update_plan(stage))
        for arrival in world["arrivals"][:2]:
            report = crashed.submit(arrival)
        assert any(f.stage == stage for f in report.failures)
        # Fully-before: the rolled-back swap left no version behind
        # and no pending job — the checkpoint is pre-swap.
        assert len(crashed.catalog.versions) == 1
        assert crashed.quality_report()["pending_update"]["state"] == "idle"
        ckpt = str(tmp_path / f"ckpt_{stage}")
        crashed.checkpoint(ckpt)
        resumed = NoisyLabelPlatform.resume(ckpt, world["inventory"],
                                            arrivals=world["arrivals"][:2],
                                            retry=NO_WAIT_RETRY)
        for arrival in world["arrivals"][2:]:
            resumed.submit(arrival)

        # The gate: bit-identical verdicts and version lineage.
        assert comparable_state(resumed) == comparable_state(golden)
        assert [v.to_dict() for v in resumed.catalog.versions] \
            == [v.to_dict() for v in golden.catalog.versions]

        # Every verdict is judged pre-swap or post-swap, never mixed:
        # the version tag moves monotonically along the lineage.
        order = [v.version_id for v in resumed.catalog.versions]
        tags = [resumed.catalog.get_detection(n).model_version
                for n in resumed.catalog.processed_names]
        indexes = [order.index(t) for t in tags]
        assert indexes == sorted(indexes)

    @pytest.mark.parametrize("stage", ["update_swap", "update_publish"])
    def test_failed_swap_is_fully_rolled_back(self, world, stage):
        platform = make_platform(world, fault_plan=update_plan(stage),
                                 trace=True)
        for arrival in world["arrivals"][:2]:
            report = platform.submit(arrival)
        # The submission survives; the update failed atomically.
        assert not report.degraded and not report.quarantined
        assert not report.updated_model
        assert platform.model_updates == 0
        assert len(platform.catalog.versions) == 1
        assert platform.catalog.active_version.seq == 0
        assert report.trace["counters"]["platform.update_failures"] == 1
        # Verdict tags still point at the setup version only.
        tags = {platform.catalog.get_detection(n).model_version
                for n in platform.catalog.processed_names}
        assert tags == {platform.catalog.active_version_id}


class TestAsyncUpdateFaults:
    def test_thread_worker_spawn_fault_recovers(self, world):
        # The update_train fault fires on the platform thread at spawn
        # time; the updater's own retry budget respawns it at the next
        # poll with the rule spent, and the swap eventually lands.
        platform = make_platform(
            world, fault_plan=update_plan("update_train"),
            updater=UpdaterConfig(
                mode="thread",
                retry=RetryPolicy(max_retries=1, backoff_base=0.0,
                                  sleep=lambda _s: None)))
        for arrival in world["arrivals"]:
            platform.submit(arrival)
            platform.update_service.wait(timeout=120)
        assert platform._fault_injector.injected["update_train"] == 1
        assert platform.model_updates >= 1
        assert len(platform.catalog.versions) >= 2

    def test_exhausted_update_budget_degrades_gracefully(self, world):
        # Fault every attempt: the job runs out of budget and the
        # platform keeps serving the old model — updates never take
        # down detection.
        plan = FaultPlan([FaultRule("update_train", probability=1.0,
                                    times=10 ** 9)], seed=0)
        platform = make_platform(world, fault_plan=plan)
        for arrival in world["arrivals"]:
            report = platform.submit(arrival)
            assert not report.quarantined
        assert platform.model_updates == 0
        assert len(platform.catalog.versions) == 1
        tags = {platform.catalog.get_detection(n).model_version
                for n in platform.catalog.processed_names}
        assert tags == {platform.catalog.active_version_id}
