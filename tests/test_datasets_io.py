"""Tests for repro.datasets.io (npz/csv dataset interchange)."""

import numpy as np
import pytest

from repro.datasets.io import (from_arrays, load_csv, load_npz, save_csv,
                               save_npz)
from repro.nn.data import LabeledDataset


@pytest.fixture
def dataset():
    gen = np.random.default_rng(0)
    x = gen.normal(size=(20, 4))
    true_y = gen.integers(0, 3, size=20)
    y = true_y.copy()
    y[:4] = (y[:4] + 1) % 3
    return LabeledDataset(x, y, true_y=true_y,
                          ids=np.arange(100, 120), name="sample")


class TestFromArrays:
    def test_wraps_and_validates(self):
        ds = from_arrays([[1.0, 2.0]], [0], name="t")
        assert len(ds) == 1
        with pytest.raises(ValueError):
            from_arrays(np.zeros((2, 2)), np.zeros(3, dtype=int))


class TestNPZ:
    def test_roundtrip(self, dataset, tmp_path):
        path = str(tmp_path / "d.npz")
        save_npz(dataset, path)
        loaded = load_npz(path)
        assert np.allclose(loaded.x, dataset.x)
        assert np.array_equal(loaded.y, dataset.y)
        assert np.array_equal(loaded.true_y, dataset.true_y)
        assert np.array_equal(loaded.ids, dataset.ids)
        assert loaded.name == "sample"

    def test_roundtrip_without_truth(self, tmp_path):
        ds = LabeledDataset(np.zeros((3, 2)), np.zeros(3, dtype=int))
        path = str(tmp_path / "d.npz")
        save_npz(ds, path)
        assert load_npz(path).true_y is None

    def test_rejects_foreign_archive(self, tmp_path):
        path = str(tmp_path / "x.npz")
        np.savez(path, a=np.zeros(2))
        with pytest.raises(ValueError, match="archive"):
            load_npz(path)


class TestCSV:
    def test_roundtrip(self, dataset, tmp_path):
        path = str(tmp_path / "d.csv")
        save_csv(dataset, path)
        loaded = load_csv(path, name="sample")
        assert np.allclose(loaded.x, dataset.flat_x())
        assert np.array_equal(loaded.y, dataset.y)
        assert np.array_equal(loaded.true_y, dataset.true_y)
        assert np.array_equal(loaded.ids, dataset.ids)

    def test_roundtrip_flattens_images(self, tmp_path):
        imgs = LabeledDataset(np.ones((4, 2, 3)), np.zeros(4, dtype=int))
        path = str(tmp_path / "img.csv")
        save_csv(imgs, path)
        loaded = load_csv(path)
        assert loaded.x.shape == (4, 6)

    def test_missing_label_column(self, tmp_path):
        path = str(tmp_path / "bad.csv")
        with open(path, "w") as fh:
            fh.write("f0,f1\n1,2\n")
        with pytest.raises(ValueError, match="label"):
            load_csv(path)

    def test_missing_features(self, tmp_path):
        path = str(tmp_path / "bad2.csv")
        with open(path, "w") as fh:
            fh.write("label\n1\n")
        with pytest.raises(ValueError, match="feature"):
            load_csv(path)

    def test_detection_on_loaded_csv(self, dataset, tmp_path):
        """Loaded data flows through the scoring machinery unchanged."""
        from repro.eval.metrics import true_noise_mask
        path = str(tmp_path / "d.csv")
        save_csv(dataset, path)
        loaded = load_csv(path)
        assert true_noise_mask(loaded).sum() == 4
