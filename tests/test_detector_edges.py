"""Boundary-condition tests for the fine-grained detector.

Extreme-but-legal configurations (single step, single iteration, k=1),
degenerate arrivals (empty, single-class, all-noisy, all-clean) and
starved candidate pools must neither crash nor violate the result
contract.
"""

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.detector import FineGrainedDetector
from repro.core.probability import estimate_conditional
from repro.noise import corrupt_labels, pair_asymmetric
from repro.nn.data import LabeledDataset
from repro.nn.models import MLPClassifier
from repro.nn.train import fit


@pytest.fixture(scope="module")
def world():
    gen = np.random.default_rng(71)
    x = np.concatenate([gen.normal((i - 1) * 4.0, 1.0, size=(80, 5))
                        for i in range(3)])
    y = np.repeat(np.arange(3), 80)
    order = gen.permutation(len(y))
    full = LabeledDataset(x[order], y[order], true_y=y[order].copy())
    train = corrupt_labels(full.subset(np.arange(120)),
                           pair_asymmetric(3, 0.2), gen)
    candidates = corrupt_labels(full.subset(np.arange(120, 200), name="I_c"),
                                pair_asymmetric(3, 0.2), gen)
    incoming = corrupt_labels(full.subset(np.arange(200, 240), name="D"),
                              pair_asymmetric(3, 0.3), gen)
    model = MLPClassifier(5, 3, hidden=32, rng=gen)
    fit(model, train, epochs=12, rng=gen, lr=0.05)
    cond = estimate_conditional(model, candidates)
    return {"model": model, "candidates": candidates,
            "incoming": incoming, "cond": cond}


def detect(world, config, dataset=None):
    detector = FineGrainedDetector(config)
    return detector.detect(world["model"], dataset or world["incoming"],
                           world["candidates"], world["cond"],
                           np.random.default_rng(0))


def assert_contract(result, dataset):
    labeled = dataset.y != -1
    assert not (result.clean_mask & result.noisy_mask).any()
    assert ((result.clean_mask | result.noisy_mask) == labeled).all()
    assert len(result.trace) >= 1


class TestExtremeConfigs:
    def test_single_step_single_iteration(self, world):
        cfg = ENLDConfig(iterations=1, steps_per_iteration=1,
                         warmup_epochs=0)
        result = detect(world, cfg)
        assert_contract(result, world["incoming"])
        # Threshold ⌊1/2⌋+1 = 1: one agreement suffices.
        assert cfg.majority_threshold == 1

    def test_k_equals_one(self, world):
        cfg = ENLDConfig(iterations=2, steps_per_iteration=3,
                         warmup_epochs=1, contrastive_k=1)
        result = detect(world, cfg)
        assert_contract(result, world["incoming"])

    def test_no_warmup(self, world):
        cfg = ENLDConfig(iterations=2, steps_per_iteration=3,
                         warmup_epochs=0)
        result = detect(world, cfg)
        assert_contract(result, world["incoming"])

    def test_even_step_count_threshold(self, world):
        cfg = ENLDConfig(iterations=1, steps_per_iteration=4,
                         warmup_epochs=0)
        assert cfg.majority_threshold == 3
        result = detect(world, cfg)
        assert_contract(result, world["incoming"])

    def test_brute_force_index(self, world):
        cfg = ENLDConfig(iterations=2, steps_per_iteration=3,
                         warmup_epochs=1, use_kdtree=False)
        result = detect(world, cfg)
        assert_contract(result, world["incoming"])


class TestDegenerateArrivals:
    def base_config(self):
        return ENLDConfig(iterations=2, steps_per_iteration=3,
                          warmup_epochs=1)

    def test_single_class_arrival(self, world):
        d = world["incoming"]
        one_class = d.mask(d.y == d.y[0], name="mono")
        result = detect(world, self.base_config(), dataset=one_class)
        assert_contract(result, one_class)

    def test_all_clean_arrival(self, world):
        d = world["incoming"]
        clean = d.with_labels(d.true_y, name="clean")
        result = detect(world, self.base_config(), dataset=clean)
        assert_contract(result, clean)
        # Should flag very little of a clean dataset.
        assert result.noisy_mask.mean() < 0.3

    def test_all_noisy_arrival(self, world):
        d = world["incoming"]
        all_wrong = d.with_labels((d.true_y + 1) % 3, name="all_noisy")
        result = detect(world, self.base_config(), dataset=all_wrong)
        assert_contract(result, all_wrong)
        # Should flag the majority of a fully-mislabelled dataset.
        assert result.noisy_mask.mean() > 0.5

    def test_tiny_arrival(self, world):
        d = world["incoming"].subset([0, 1, 2], name="tiny")
        result = detect(world, self.base_config(), dataset=d)
        assert_contract(result, d)

    def test_starved_candidate_pool(self, world):
        """I_c with almost nothing in label(D) still works."""
        candidates = world["candidates"]
        tiny_pool = candidates.subset(np.arange(3), name="starved")
        detector = FineGrainedDetector(self.base_config())
        result = detector.detect(world["model"], world["incoming"],
                                 tiny_pool, world["cond"],
                                 np.random.default_rng(0))
        assert_contract(result, world["incoming"])


class TestUnseenLabels:
    def test_arrival_with_label_unseen_in_candidates(self, world):
        """label(D) may include classes absent from I_c (Corollary 1's
        failure mode); the detector must degrade gracefully."""
        candidates = world["candidates"]
        # Remove class 2 from the candidate pool entirely.
        reduced = candidates.mask(candidates.y != 2, name="no_class2")
        detector = FineGrainedDetector(
            ENLDConfig(iterations=2, steps_per_iteration=3,
                       warmup_epochs=1))
        result = detector.detect(world["model"], world["incoming"],
                                 reduced, world["cond"],
                                 np.random.default_rng(0))
        assert_contract(result, world["incoming"])


class TestAblationMatrix:
    """Every ablation flag combination must satisfy the contract."""

    @pytest.mark.parametrize("variant", ["origin", "enld-1", "enld-2",
                                         "enld-3", "enld-4"])
    def test_all_variants_run(self, world, variant):
        cfg = ENLDConfig(iterations=2, steps_per_iteration=3,
                         warmup_epochs=1).ablation(variant)
        result = detect(world, cfg)
        assert_contract(result, world["incoming"])
