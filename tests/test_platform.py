"""Tests for repro.datalake.platform (the deployment facade)."""

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.scheduler import CleanPoolGrowth, EveryNArrivals
from repro.datalake import ArrivalStream, NoisyLabelPlatform
from repro.datasets import (generate, paper_shard_plan,
                            split_inventory_incremental, toy)
from repro.noise import corrupt_labels, pair_asymmetric


@pytest.fixture(scope="module")
def world():
    data = generate(toy(num_classes=6, samples_per_class=80), seed=50)
    rng = np.random.default_rng(51)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, 0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool, paper_shard_plan("toy"),
                             transition=transition, seed=52).arrivals()
    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=15, iterations=3, seed=53)
    return {"inventory": inventory, "arrivals": arrivals, "config": config}


class TestSubmission:
    def test_submit_returns_report(self, world):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"])
        report = platform.submit(world["arrivals"][0])
        assert report.record.dataset_name == world["arrivals"][0].name
        assert report.record.total == len(world["arrivals"][0])
        assert not report.updated_model

    def test_subsets_partition_arrival(self, world):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"])
        arrival = world["arrivals"][0]
        platform.submit(arrival)
        clean = platform.clean_subset(arrival.name)
        noisy = platform.noisy_subset(arrival.name)
        assert len(clean) + len(noisy) == len(arrival)
        assert set(clean.ids) & set(noisy.ids) == set()

    def test_noisy_subset_is_noise_enriched(self, world):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"])
        arrival = world["arrivals"][1]
        platform.submit(arrival)
        noisy = platform.noisy_subset(arrival.name)
        if len(noisy):
            assert noisy.noise_rate() > arrival.noise_rate()

    def test_duplicate_submission_quarantined(self, world):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"])
        platform.submit(world["arrivals"][0])
        report = platform.submit(world["arrivals"][0])
        assert report.quarantined
        assert "name collision" in platform.catalog.get_quarantine(
            world["arrivals"][0].name).reasons[0]

    def test_duplicate_submission_raises_without_admission(self, world):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"],
                                      admission=False)
        platform.submit(world["arrivals"][0])
        with pytest.raises(KeyError):
            platform.submit(world["arrivals"][0])

    def test_quality_report_counters(self, world):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"])
        for arrival in world["arrivals"][:2]:
            platform.submit(arrival)
        report = platform.quality_report()
        assert report["datasets_processed"] == 2
        assert report["model_updates"] == 0
        assert report["setup_seconds"] > 0


class TestScheduledUpdates:
    def test_scheduler_triggers_update(self, world):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"],
                                      scheduler=EveryNArrivals(1))
        report = platform.submit(world["arrivals"][0])
        # Needs clean inventory accumulated; with t-of-t voting on the
        # toy world this holds, and the update must then run.
        if len(platform.catalog.clean_inventory_ids):
            assert report.updated_model
            assert platform.model_updates == 1

    def test_growth_scheduler_defers(self, world):
        platform = NoisyLabelPlatform(
            world["inventory"], config=world["config"],
            scheduler=CleanPoolGrowth(min_clean_samples=10 ** 9))
        report = platform.submit(world["arrivals"][0])
        assert not report.updated_model

    def test_manual_update(self, world):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"])
        platform.submit(world["arrivals"][0])
        if len(platform.enld.clean_inventory):
            platform.update_model(epochs=2)
            assert platform.model_updates == 1

    def test_detection_continues_after_update(self, world):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"],
                                      scheduler=EveryNArrivals(1))
        for arrival in world["arrivals"]:
            report = platform.submit(arrival)
            assert report.record.total == len(arrival)


class TestTracing:
    def test_untraced_platform_has_no_trace(self, world):
        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"])
        report = platform.submit(world["arrivals"][0])
        assert report.trace is None
        assert "trace" not in platform.quality_report()

    def test_submission_reports_carry_traces(self, world):
        from repro.obs import flatten_spans

        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"], trace=True)
        report = platform.submit(world["arrivals"][0])
        assert report.trace is not None
        flat = flatten_spans(report.trace)
        assert "detect/iteration/fine_tune" in flat
        assert report.trace["counters"]["platform.submissions"] == 1

    def test_quality_report_merges_traces(self, world):
        from repro.obs import flatten_spans

        platform = NoisyLabelPlatform(world["inventory"],
                                      config=world["config"], trace=True)
        for arrival in world["arrivals"][:2]:
            platform.submit(arrival)
        merged = platform.quality_report()["trace"]
        flat = flatten_spans(merged)
        # Setup trace (one initialize) + both submissions.
        assert flat["setup"]["calls"] == 1
        assert flat["detect"]["calls"] == 2
        assert merged["counters"]["platform.submissions"] == 2
