"""Tests for repro.index (KD-tree and per-class index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.index.classindex import ClassFeatureIndex, build_index
from repro.index.kdtree import KDTree, brute_force_knn

point_clouds = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 60), st.integers(1, 6)),
    elements=st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False))


class TestKDTreeBasics:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros(5))

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((3, 2)), leaf_size=0)

    def test_empty_tree_query(self):
        tree = KDTree(np.zeros((0, 3)))
        d, i = tree.query(np.zeros(3), k=2)
        assert d.size == 0 and i.size == 0

    def test_len(self):
        assert len(KDTree(np.zeros((7, 2)))) == 7

    def test_k_larger_than_n(self):
        pts = np.arange(6.0).reshape(3, 2)
        d, i = KDTree(pts).query(np.zeros(2), k=10)
        assert len(i) == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((3, 2))).query(np.zeros(2), k=0)

    def test_query_dim_mismatch(self):
        with pytest.raises(ValueError, match="dim"):
            KDTree(np.zeros((3, 2))).query(np.zeros(3))

    def test_exact_match_is_first(self):
        pts = np.random.default_rng(0).normal(size=(50, 4))
        tree = KDTree(pts)
        d, i = tree.query(pts[17], k=1)
        assert i[0] == 17
        assert np.isclose(d[0], 0.0)

    def test_duplicate_points(self):
        pts = np.zeros((10, 3))
        tree = KDTree(pts)
        d, i = tree.query(np.zeros(3), k=5)
        assert len(i) == 5
        assert np.allclose(d, 0.0)

    def test_results_sorted_by_distance(self):
        pts = np.random.default_rng(1).normal(size=(100, 3))
        d, _ = KDTree(pts).query(np.zeros(3), k=10)
        assert np.all(np.diff(d) >= -1e-12)


class TestKDTreeVsBruteForce:
    @given(point_clouds, st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_knn_matches_brute_force(self, pts, k):
        tree = KDTree(pts, leaf_size=4)
        q = pts.mean(axis=0) + 0.5
        d_tree, i_tree = tree.query(q, k=k)
        d_bf, _ = brute_force_knn(pts, q, k)
        # Distances must match exactly (indices may differ under ties).
        assert np.allclose(np.sort(d_tree), np.sort(d_bf), atol=1e-9)

    def test_many_random_queries(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(300, 5))
        tree = KDTree(pts, leaf_size=8)
        for _ in range(25):
            q = rng.normal(size=5) * 2
            d_t, i_t = tree.query(q, k=7)
            d_b, i_b = brute_force_knn(pts, q, 7)
            assert np.allclose(d_t, d_b)
            assert set(i_t) == set(i_b)

    def test_query_batch(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(80, 3))
        queries = rng.normal(size=(10, 3))
        tree = KDTree(pts)
        dists, idx = tree.query_batch(queries, k=4)
        assert dists.shape == (10, 4)
        for row, q in enumerate(queries):
            d_b, _ = brute_force_knn(pts, q, 4)
            assert np.allclose(dists[row], d_b)

    def test_query_batch_rejects_1d(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((4, 2))).query_batch(np.zeros(2))

    def test_query_batch_empty_tree(self):
        # Regression: used to allocate (Q, 1) outputs and crash indexing
        # an empty points array; must mirror query()'s length-0 result.
        tree = KDTree(np.zeros((0, 3)))
        dists, idx = tree.query_batch(np.zeros((5, 3)), k=2)
        assert dists.shape == (5, 0)
        assert idx.shape == (5, 0)

    def test_query_batch_k_larger_than_tree(self):
        pts = np.arange(6.0).reshape(3, 2)
        dists, idx = KDTree(pts).query_batch(np.zeros((2, 2)), k=10)
        assert dists.shape == (2, 3)
        assert idx.shape == (2, 3)


class TestRadiusQuery:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(4)
        pts = rng.normal(size=(200, 3))
        tree = KDTree(pts)
        q = np.zeros(3)
        for radius in (0.5, 1.0, 2.0):
            got = tree.query_radius(q, radius)
            expected = np.nonzero(
                np.linalg.norm(pts - q, axis=1) <= radius)[0]
            assert np.array_equal(got, expected)

    def test_zero_radius(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        got = KDTree(pts).query_radius(np.zeros(2), 0.0)
        assert np.array_equal(got, [0])

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((2, 2))).query_radius(np.zeros(2), -1.0)


class TestClassFeatureIndex:
    def make(self, use_kdtree=True):
        rng = np.random.default_rng(5)
        features = rng.normal(size=(40, 4))
        labels = np.repeat(np.arange(4), 10)
        return features, labels, ClassFeatureIndex(features, labels,
                                                   use_kdtree=use_kdtree)

    def test_classes_listed(self):
        _, _, index = self.make()
        assert index.classes == [0, 1, 2, 3]
        assert index.class_size(2) == 10
        assert index.class_size(99) == 0
        assert index.total_indexed() == 40

    def test_query_returns_only_requested_class(self):
        features, labels, index = self.make()
        _, pos = index.query(features[0], cls=2, k=3)
        assert (labels[pos] == 2).all()

    def test_query_matches_restricted_brute_force(self):
        features, labels, index = self.make()
        q = np.random.default_rng(6).normal(size=4)
        d, pos = index.query(q, cls=1, k=4)
        cls_rows = np.nonzero(labels == 1)[0]
        d_b, local = brute_force_knn(features[cls_rows], q, 4)
        assert np.allclose(d, d_b)
        assert set(pos) == set(cls_rows[local])

    def test_kdtree_and_bruteforce_agree(self):
        features, labels, tree_index = self.make(use_kdtree=True)
        _, _, bf_index = self.make(use_kdtree=False)
        q = features.mean(axis=0)
        d1, p1 = tree_index.query(q, 3, k=5)
        d2, p2 = bf_index.query(q, 3, k=5)
        assert np.allclose(d1, d2)
        assert set(p1) == set(p2)

    def test_missing_class_returns_empty(self):
        _, _, index = self.make()
        d, pos = index.query(np.zeros(4), cls=77, k=3)
        assert d.size == 0 and pos.size == 0

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            ClassFeatureIndex(np.zeros((3, 2)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            ClassFeatureIndex(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            ClassFeatureIndex(np.zeros((3, 2)), np.zeros(3, dtype=int),
                              source_indices=np.zeros(2, dtype=int))

    def test_build_index_restriction_maps_to_source(self):
        rng = np.random.default_rng(7)
        features = rng.normal(size=(30, 3))
        labels = np.repeat(np.arange(3), 10)
        index = build_index(features, labels, restrict_to=[1, 2])
        assert index.classes == [1, 2]
        _, pos = index.query(features[15], cls=1, k=2)
        # Positions refer to the ORIGINAL arrays.
        assert (labels[pos] == 1).all()

    def test_source_indices_passthrough(self):
        features = np.arange(10.0).reshape(5, 2)
        labels = np.zeros(5, dtype=int)
        ids = np.array([100, 200, 300, 400, 500])
        index = ClassFeatureIndex(features, labels, source_indices=ids)
        _, pos = index.query(features[2], cls=0, k=1)
        assert pos[0] == 300
