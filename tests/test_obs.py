"""Tests for repro.obs (tracer, ambient context, export, CI gate)."""

import json
import threading

import numpy as np

from repro.obs import (NULL_TRACER, Tracer, add_work, compare_stage_work,
                       current_tracer, flatten_spans, format_summary, incr,
                       load_trace, merge_trace_dicts, observe, save_trace,
                       trace_span, use_tracer)


class TestTracerSpans:
    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.add_work(10)
        trace = tracer.to_dict()
        outer = trace["spans"]["outer"]
        assert outer["calls"] == 1
        assert outer["children"]["inner"]["work"] == 10
        assert outer["children"]["inner"]["wall_seconds"] >= 0.0

    def test_same_name_siblings_merge(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                tracer.add_work(5)
        span = tracer.to_dict()["spans"]["stage"]
        assert span["calls"] == 3
        assert span["work"] == 15

    def test_work_attributes_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.add_work(1)
            with tracer.span("inner"):
                tracer.add_work(2)
        spans = tracer.to_dict()["spans"]
        assert spans["outer"]["work"] == 1
        assert spans["outer"]["children"]["inner"]["work"] == 2

    def test_exception_unwinds_stack(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        with tracer.span("after"):
            tracer.add_work(7)
        spans = tracer.to_dict()["spans"]
        # "after" is a top-level span, not a child of the failed ones.
        assert spans["after"]["work"] == 7
        assert "after" not in spans["outer"].get("children", {})

    def test_counters_and_gauges(self):
        tracer = Tracer()
        tracer.incr("hits")
        tracer.incr("hits", 4)
        tracer.observe("size", 10.0)
        tracer.observe("size", 30.0)
        trace = tracer.to_dict()
        assert trace["counters"]["hits"] == 5
        stat = trace["metrics"]["size"]
        assert stat["count"] == 2
        assert stat["min"] == 10.0 and stat["max"] == 30.0
        assert stat["mean"] == 20.0

    def test_thread_safety(self):
        tracer = Tracer()

        def work():
            for _ in range(200):
                with tracer.span("t"):
                    tracer.add_work(1)
                tracer.incr("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        trace = tracer.to_dict()
        assert trace["spans"]["t"]["work"] == 800
        assert trace["counters"]["n"] == 800


class TestAmbientContext:
    def test_default_is_noop(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        # Module helpers must be harmless without an active tracer.
        with trace_span("anything"):
            add_work(5)
        incr("nothing")
        observe("nothing", 1.0)
        assert NULL_TRACER.to_dict() == {"spans": {}, "counters": {},
                                         "metrics": {}}

    def test_use_tracer_activates_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with trace_span("stage"):
                add_work(3)
        assert current_tracer() is NULL_TRACER
        assert tracer.to_dict()["spans"]["stage"]["work"] == 3

    def test_use_tracer_none_keeps_current(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with use_tracer(None):  # composes: keeps the outer tracer
                with trace_span("stage"):
                    add_work(2)
        assert tracer.to_dict()["spans"]["stage"]["work"] == 2


class TestExport:
    def make_trace(self):
        tracer = Tracer()
        with tracer.span("setup"):
            tracer.add_work(100)
        with tracer.span("detect"):
            with tracer.span("fine_tune"):
                tracer.add_work(50)
        tracer.incr("kdtree.queries", 9)
        tracer.observe("ambiguous", 12.0)
        return tracer.to_dict()

    def test_json_round_trip(self, tmp_path):
        trace = self.make_trace()
        path = str(tmp_path / "trace.json")
        save_trace(trace, path)
        assert load_trace(path) == trace
        # The file itself is plain JSON.
        with open(path) as fh:
            assert json.load(fh) == trace

    def test_flatten_spans_paths(self):
        flat = flatten_spans(self.make_trace())
        assert flat["setup"]["work"] == 100
        assert flat["detect/fine_tune"]["work"] == 50

    def test_merge_adds_work_counters_and_stats(self):
        a, b = self.make_trace(), self.make_trace()
        merged = merge_trace_dicts([a, b])
        flat = flatten_spans(merged)
        assert flat["setup"]["work"] == 200
        assert flat["setup"]["calls"] == 2
        assert merged["counters"]["kdtree.queries"] == 18
        assert merged["metrics"]["ambiguous"]["count"] == 2

    def test_format_summary_lists_stages(self):
        text = format_summary(self.make_trace())
        assert "setup" in text and "fine_tune" in text
        assert "kdtree.queries" in text


class TestBaselineGate:
    def make_trace(self, work=100):
        tracer = Tracer()
        with tracer.span("stage"):
            tracer.add_work(work)
        return tracer.to_dict()

    def test_within_tolerance_passes(self):
        violations = compare_stage_work(self.make_trace(110),
                                        self.make_trace(100),
                                        tolerance=0.15)
        assert violations == []

    def test_outside_tolerance_fails(self):
        violations = compare_stage_work(self.make_trace(200),
                                        self.make_trace(100),
                                        tolerance=0.15)
        assert len(violations) == 1
        assert "stage" in violations[0]

    def test_missing_stage_is_violation(self):
        empty = Tracer().to_dict()
        violations = compare_stage_work(empty, self.make_trace(100))
        assert any("missing" in v for v in violations)

    def test_tiny_baseline_stages_skipped(self):
        violations = compare_stage_work(self.make_trace(0),
                                        self.make_trace(0))
        assert violations == []


class TestPipelineIntegration:
    def test_enld_trace_covers_pipeline_stages(self):
        from repro.core.config import ENLDConfig
        from repro.core.enld import ENLD
        from repro.datasets import (generate, split_inventory_incremental,
                                    toy)
        from repro.noise import corrupt_labels, pair_asymmetric

        data = generate(toy(num_classes=4, samples_per_class=40), seed=3)
        rng = np.random.default_rng(4)
        inventory_clean, pool = split_inventory_incremental(data, rng)
        transition = pair_asymmetric(4, 0.2)
        inventory = corrupt_labels(inventory_clean, transition, rng)
        arrival = corrupt_labels(pool.subset(np.arange(40), name="d1"),
                                 transition, np.random.default_rng(5))

        tracer = Tracer()
        config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 16},
                            init_epochs=2, iterations=2, seed=6)
        enld = ENLD(config, tracer=tracer).initialize(inventory,
                                                      num_classes=4)
        enld.detect(arrival)

        flat = flatten_spans(tracer.to_dict())
        for stage in ("setup", "setup/train_general", "detect",
                      "detect/contrastive_sampling", "detect/warmup",
                      "detect/iteration/fine_tune",
                      "detect/iteration/vote"):
            assert stage in flat, f"missing stage {stage}"
        # Training stages carry sample-epoch work.
        assert flat["setup/train_general"]["work"] > 0
        assert flat["detect/iteration/fine_tune"]["work"] > 0
        counters = tracer.to_dict()["counters"]
        assert counters.get("detector.vote_rounds", 0) >= 2
        assert counters.get("classindex.queries", 0) > 0
