"""Tests for repro.datalake.persistence (catalog save/load)."""

import json
import os

import numpy as np
import pytest

from repro.datalake import persistence
from repro.datalake.catalog import DataLakeCatalog, DetectionRecord
from repro.datalake.persistence import (atomic_write_json,
                                        atomic_write_npz, catalog_state,
                                        load_catalog_state, save_catalog)
from repro.nn.data import LabeledDataset


def make_catalog():
    y = np.repeat(np.arange(3), 10)
    inventory = LabeledDataset(np.zeros((30, 2)), y, name="inv")
    catalog = DataLakeCatalog(inventory)
    arrival = inventory.subset(np.arange(10), name="a0")
    catalog.register_arrival(arrival)
    catalog.record_detection(DetectionRecord(
        "a0", clean_ids=np.arange(7), noisy_ids=np.arange(7, 10),
        process_seconds=1.25, detector="enld"))
    catalog.add_clean_inventory_ids(np.array([2, 5, 9]))
    return catalog


class TestState:
    def test_state_structure(self):
        state = catalog_state(make_catalog())
        assert state["version"] == 3
        assert len(state["records"]) == 1
        assert state["records"][0]["dataset_name"] == "a0"
        assert state["clean_inventory_ids"] == [2, 5, 9]

    def test_state_is_json_serialisable(self):
        json.dumps(catalog_state(make_catalog()))


class TestRoundtrip:
    def test_save_and_load(self, tmp_path):
        catalog = make_catalog()
        path = str(tmp_path / "catalog.json")
        save_catalog(catalog, path)

        fresh = DataLakeCatalog(catalog.inventory)
        fresh.register_arrival(catalog.get_arrival("a0"))
        restored = load_catalog_state(fresh, path)
        assert restored == 1
        record = fresh.get_detection("a0")
        assert record.process_seconds == 1.25
        assert np.array_equal(record.noisy_ids, [7, 8, 9])
        assert np.array_equal(fresh.clean_inventory_ids, [2, 5, 9])

    def test_strict_unknown_dataset_raises(self, tmp_path):
        catalog = make_catalog()
        path = str(tmp_path / "catalog.json")
        save_catalog(catalog, path)
        fresh = DataLakeCatalog(catalog.inventory)  # 'a0' not registered
        with pytest.raises(KeyError):
            load_catalog_state(fresh, path, strict=True)

    def test_lenient_skips_unknown(self, tmp_path):
        catalog = make_catalog()
        path = str(tmp_path / "catalog.json")
        save_catalog(catalog, path)
        fresh = DataLakeCatalog(catalog.inventory)
        assert load_catalog_state(fresh, path, strict=False) == 0
        # Clean ids still restored.
        assert len(fresh.clean_inventory_ids) == 3

    def test_version_check(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"version": 99, "records": [],
                       "clean_inventory_ids": []}, fh)
        with pytest.raises(ValueError, match="version"):
            load_catalog_state(DataLakeCatalog(
                LabeledDataset(np.zeros((1, 1)), np.zeros(1, dtype=int))),
                path)


class TestCrashSafety:
    """A kill mid-write must leave the previous state readable.

    This is the atomic-write invariant the ``REP201`` analysis rule
    protects: every state write goes temp-file + ``os.replace``, so
    the only observable states are "old file intact" and "new file
    complete".
    """

    def test_kill_inside_json_dump_keeps_previous_state(
            self, tmp_path, monkeypatch):
        catalog = make_catalog()
        path = str(tmp_path / "catalog.json")
        save_catalog(catalog, path)
        with open(path) as fh:
            before = fh.read()

        def dying_dump(payload, fh, **kwargs):
            fh.write('{"version": 2, "records": [')   # torn prefix…
            raise OSError("killed mid-write")          # …then the kill

        monkeypatch.setattr(persistence.json, "dump", dying_dump)
        with pytest.raises(OSError, match="killed"):
            save_catalog(catalog, path)
        monkeypatch.undo()

        with open(path) as fh:
            assert fh.read() == before
        # The previous state is not just byte-identical, it restores.
        fresh = DataLakeCatalog(catalog.inventory)
        fresh.register_arrival(catalog.get_arrival("a0"))
        assert load_catalog_state(fresh, path) == 1

    def test_kill_before_rename_keeps_previous_state_and_no_temp(
            self, tmp_path, monkeypatch):
        path = str(tmp_path / "state.json")
        atomic_write_json(path, {"generation": 1})

        def dying_replace(src, dst):
            raise OSError("killed before rename")

        monkeypatch.setattr(persistence.os, "replace", dying_replace)
        with pytest.raises(OSError, match="rename"):
            atomic_write_json(path, {"generation": 2})
        monkeypatch.undo()

        with open(path) as fh:
            assert json.load(fh) == {"generation": 1}
        # The aborted temp file was cleaned up.
        assert os.listdir(tmp_path) == ["state.json"]

    def test_kill_during_npz_write_keeps_previous_archive(
            self, tmp_path, monkeypatch):
        path = str(tmp_path / "weights.npz")
        atomic_write_npz(path, {"w": np.arange(3.0)})

        def dying_savez(fh, **arrays):
            fh.write(b"PK\x03\x04garbage")
            raise OSError("killed mid-write")

        monkeypatch.setattr(persistence.np, "savez", dying_savez)
        with pytest.raises(OSError, match="killed"):
            atomic_write_npz(path, {"w": np.arange(5.0)})
        monkeypatch.undo()

        with np.load(path) as archive:
            np.testing.assert_array_equal(archive["w"], np.arange(3.0))
