"""Tests for repro.nn.augment (batch augmentation pipeline)."""

import numpy as np
import pytest

from repro.nn.augment import (compose, cutout, gaussian_jitter, random_hflip,
                              random_shift)


def images(n=6, c=2, h=8, w=8, seed=0):
    return np.random.default_rng(seed).normal(size=(n, c, h, w))


class TestRandomShift:
    def test_shape_preserved(self, rng):
        out = random_shift(2)(images(), rng)
        assert out.shape == (6, 2, 8, 8)

    def test_zero_shift_identity(self, rng):
        out = random_shift(0)(images(), rng)
        assert np.array_equal(out, images())

    def test_mass_never_increases(self, rng):
        batch = np.abs(images())
        out = random_shift(3)(batch, rng)
        assert np.abs(out).sum() <= np.abs(batch).sum() + 1e-9

    def test_rejects_flat(self, rng):
        with pytest.raises(ValueError):
            random_shift(1)(np.zeros((2, 16)), rng)

    def test_negative_max_rejected(self):
        with pytest.raises(ValueError):
            random_shift(-1)


class TestHFlip:
    def test_always_flip(self, rng):
        batch = images()
        out = random_hflip(1.0)(batch, rng)
        assert np.array_equal(out, batch[:, :, :, ::-1])

    def test_never_flip(self, rng):
        batch = images()
        out = random_hflip(0.0)(batch, rng)
        assert np.array_equal(out, batch)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            random_hflip(1.5)

    def test_input_not_mutated(self, rng):
        batch = images()
        copy = batch.copy()
        random_hflip(1.0)(batch, rng)
        assert np.array_equal(batch, copy)


class TestJitter:
    def test_zero_sigma_identity(self, rng):
        batch = images()
        assert gaussian_jitter(0.0)(batch, rng) is batch

    def test_noise_scale(self, rng):
        batch = np.zeros((100, 1, 4, 4))
        out = gaussian_jitter(0.5)(batch, rng)
        assert abs(out.std() - 0.5) < 0.05

    def test_works_on_flat(self, rng):
        out = gaussian_jitter(0.1)(np.zeros((5, 20)), rng)
        assert out.shape == (5, 20)

    def test_negative_sigma(self):
        with pytest.raises(ValueError):
            gaussian_jitter(-0.1)


class TestCutout:
    def test_zeroes_a_patch(self, rng):
        batch = np.ones((4, 1, 8, 8))
        out = cutout(3)(batch, rng)
        zeros_per_sample = (out == 0).reshape(4, -1).sum(axis=1)
        assert (zeros_per_sample == 9).all()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            cutout(0)


class TestCompose:
    def test_chains_in_order(self, rng):
        batch = np.ones((3, 1, 8, 8))
        pipeline = compose([cutout(2), gaussian_jitter(0.0)])
        out = pipeline(batch, rng)
        assert (out == 0).any()

    def test_flat_roundtrip(self, rng):
        flat = np.ones((5, 64))
        pipeline = compose([random_hflip(1.0)], image_shape=(1, 8, 8))
        out = pipeline(flat, rng)
        assert out.shape == (5, 64)
        assert np.array_equal(out, flat)  # flipping ones is identity

    def test_training_with_augmentation(self, blobs, rng):
        """fit() accepts an augment_fn and still learns."""
        from repro.nn.models import MLPClassifier
        from repro.nn.train import fit
        from repro.nn.metrics import evaluate_accuracy
        model = MLPClassifier(5, 3, hidden=16, rng=rng)
        fit(model, blobs, epochs=8, rng=rng, lr=0.05,
            augment_fn=gaussian_jitter(0.05))
        assert evaluate_accuracy(model, blobs) > 0.85
