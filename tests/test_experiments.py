"""Tests for repro.experiments (presets, harness, figure drivers).

Figure drivers are exercised end-to-end at tiny scale; their full-size
counterparts live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments.harness import (build_baselines, build_enld,
                                       build_environment)
from repro.experiments.presets import (PAPER_NOISE_RATES, bench_preset,
                                       full_preset, small_preset)


@pytest.fixture(scope="module")
def tiny():
    return small_preset("toy")


@pytest.fixture(scope="module")
def env(tiny):
    return build_environment(tiny, noise_rate=0.2)


class TestPresets:
    def test_paper_noise_rates(self):
        assert PAPER_NOISE_RATES == (0.1, 0.2, 0.3, 0.4)

    def test_bench_iterations_follow_paper_shape(self):
        assert bench_preset("emnist_like").iterations \
            < bench_preset("cifar100_like").iterations

    def test_full_preset_uses_paper_iterations(self):
        assert full_preset("emnist_like").iterations == 5
        assert full_preset("cifar100_like").iterations == 17

    def test_enld_config_conversion(self, tiny):
        cfg = tiny.enld_config()
        assert cfg.model_name == tiny.model_name
        assert cfg.iterations == tiny.iterations
        cfg2 = tiny.enld_config(contrastive_k=4)
        assert cfg2.contrastive_k == 4

    def test_with_overrides(self, tiny):
        assert tiny.with_overrides(seed=99).seed == 99


class TestHarness:
    def test_environment_structure(self, env, tiny):
        assert env.num_classes == 6
        assert len(env.arrivals) == tiny.shard_limit
        assert env.inventory.noise_rate() == pytest.approx(0.2, abs=0.06)
        assert np.allclose(env.transition.sum(axis=1), 1.0)

    def test_environment_deterministic(self, tiny):
        a = build_environment(tiny, 0.2)
        b = build_environment(tiny, 0.2)
        assert np.array_equal(a.inventory.y, b.inventory.y)
        for da, db in zip(a.arrivals, b.arrivals):
            assert np.array_equal(da.y, db.y)

    def test_missing_fraction_propagates(self, tiny):
        from repro.noise import MISSING_LABEL
        env = build_environment(tiny, 0.2, missing_fraction=0.5)
        for arrival in env.arrivals:
            assert (arrival.y == MISSING_LABEL).any()

    def test_build_enld_initialized(self, env):
        enld = build_enld(env)
        assert enld.model is not None
        assert enld.cond_prob is not None

    def test_build_baselines_share_model(self, env):
        enld = build_enld(env)
        detectors = build_baselines(env, enld)
        assert set(detectors) == {"default", "cl_prune_by_class",
                                  "cl_prune_by_noise_rate", "topofilter"}
        assert detectors["default"].model is enld.model

    def test_topofilter_optional(self, env):
        enld = build_enld(env)
        detectors = build_baselines(env, enld, include_topofilter=False)
        assert "topofilter" not in detectors


class TestFigureDrivers:
    """Each driver runs end-to-end at tiny scale and returns the
    structure the benchmarks expect."""

    def test_fig3(self, tiny):
        from repro.experiments.figures import fig3_contribution
        out = fig3_contribution(tiny)
        block = out["eta=0.2"]
        assert set(block) == {"origin", "random", "nearest_only",
                              "nearest_related"}
        assert all(np.isfinite(v) for v in block.values())

    def test_method_comparison(self, tiny):
        from repro.experiments.figures import method_comparison
        out = method_comparison(tiny)
        assert set(out["mean_f1"]) == {"default", "cl_prune_by_class",
                                       "cl_prune_by_noise_rate",
                                       "topofilter", "enld"}
        enld_block = out["per_noise_rate"]["eta=0.2"]["enld"]
        assert "speedup_over_topofilter" in enld_block

    def test_fig9(self, tiny):
        from repro.experiments.figures import fig9_training_process
        out = fig9_training_process(tiny)
        series = out["eta=0.2"]
        assert len(series["f1"]) == tiny.iterations
        assert len(series["num_ambiguous"]) == tiny.iterations

    def test_fig10(self, tiny):
        from repro.experiments.figures import fig10_policies
        out = fig10_policies(tiny, policies=("contrastive", "random"))
        assert set(out["mean_f1"]) == {"contrastive", "random"}

    def test_fig11_12(self, tiny):
        from repro.experiments.figures import fig11_12_k_sweep
        out = fig11_12_k_sweep(tiny, ks=(1, 2))
        assert set(out["mean"]) == {"k=1", "k=2"}
        assert "mean_process_seconds" in out["mean"]["k=1"]

    def test_table2(self, tiny):
        from repro.experiments.figures import table2_model_update
        out = table2_model_update(tiny)
        block = out["eta=0.2"]
        assert 0 <= block["origin_accuracy"] <= 1
        assert 0 <= block["update_accuracy"] <= 1

    def test_fig13a(self, tiny):
        from repro.experiments.figures import fig13a_missing_labels
        out = fig13a_missing_labels(tiny, missing_fractions=(0.25,))
        block = out["missing=0.25"]
        assert 0 <= block["pseudo_f1"] <= 1

    def test_fig13b(self, tiny):
        from repro.experiments.figures import fig13b_ambiguous_counts
        out = fig13b_ambiguous_counts(tiny)
        assert len(out["num_ambiguous"]) == tiny.iterations

    def test_fig14(self, tiny):
        from repro.experiments.figures import fig14_ablation
        out = fig14_ablation(tiny, variants=("origin", "enld-1"))
        assert set(out["mean_f1"]) == {"origin", "enld-1"}

    def test_fig6(self, tiny):
        from repro.experiments.figures import fig6_networks
        out = fig6_networks(tiny, model_names=("mlp",))
        assert "enld" in out["mlp"] and "topofilter" in out["mlp"]
