"""Tests for repro.core.enld and repro.core.update (Algorithms 1 & 4)."""

import numpy as np
import pytest

from repro.core.config import ENLDConfig
from repro.core.enld import ENLD, NotInitializedError
from repro.core.update import model_update
from repro.datalake import ArrivalStream
from repro.datasets import (generate, paper_shard_plan,
                            split_inventory_incremental, toy)
from repro.noise import corrupt_labels, pair_asymmetric


@pytest.fixture(scope="module")
def world():
    data = generate(toy(num_classes=6, samples_per_class=60), seed=1)
    rng = np.random.default_rng(2)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(6, 0.2)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool, paper_shard_plan("toy"),
                             transition=transition, seed=3).arrivals()
    return {"inventory": inventory, "pool": pool, "arrivals": arrivals}


def make_config(**overrides):
    base = dict(model_name="mlp", model_kwargs={"hidden": 48},
                init_epochs=15, iterations=3, steps_per_iteration=5,
                seed=0)
    base.update(overrides)
    return ENLDConfig(**base)


@pytest.fixture(scope="module")
def initialized(world):
    return ENLD(make_config()).initialize(world["inventory"])


class TestInitialize:
    def test_requires_initialize_before_detect(self, world):
        enld = ENLD(make_config())
        with pytest.raises(NotInitializedError):
            enld.detect(world["arrivals"][0])

    def test_splits_inventory_in_halves(self, initialized, world):
        it, ic = initialized.inventory_train, initialized.inventory_candidates
        assert len(it) + len(ic) == len(world["inventory"])
        assert set(it.ids) & set(ic.ids) == set()
        assert abs(len(it) - len(ic)) <= 1

    def test_cond_prob_is_stochastic(self, initialized):
        cond = initialized.cond_prob
        assert cond.shape == (6, 6)
        assert np.allclose(cond.sum(axis=1), 1.0)

    def test_setup_cost_recorded(self, initialized):
        assert initialized.setup_seconds > 0
        assert initialized.setup_train_samples > 0

    def test_returns_self_for_chaining(self, world):
        enld = ENLD(make_config())
        assert enld.initialize(world["inventory"]) is enld


class TestDetect:
    def test_end_to_end_quality(self, initialized, world):
        from repro.eval.metrics import score_detection
        f1s = []
        enld = ENLD(make_config()).initialize(world["inventory"])
        for arrival in world["arrivals"]:
            result = enld.detect(arrival)
            f1s.append(score_detection(result, arrival).f1)
        assert np.mean(f1s) > 0.6

    def test_beats_default_baseline(self, world):
        from repro.baselines import DefaultDetector
        from repro.eval.runner import run_detector
        enld = ENLD(make_config()).initialize(world["inventory"])
        enld_rep = run_detector(enld, world["arrivals"], "enld")
        base_rep = run_detector(DefaultDetector(enld.model),
                                world["arrivals"], "default")
        assert enld_rep.mean_f1 > base_rep.mean_f1

    def test_process_time_recorded(self, world):
        enld = ENLD(make_config()).initialize(world["inventory"])
        result = enld.detect(world["arrivals"][0])
        assert result.process_seconds > 0

    def test_results_accumulate(self, world):
        enld = ENLD(make_config()).initialize(world["inventory"])
        enld.detect(world["arrivals"][0])
        enld.detect(world["arrivals"][1])
        assert len(enld.results) == 2

    def test_clean_inventory_grows(self, world):
        enld = ENLD(make_config()).initialize(world["inventory"])
        enld.detect(world["arrivals"][0])
        first = len(enld.clean_inventory)
        enld.detect(world["arrivals"][1])
        assert len(enld.clean_inventory) >= first

    def test_clean_inventory_mostly_clean(self, world):
        enld = ENLD(make_config()).initialize(world["inventory"])
        for arrival in world["arrivals"]:
            enld.detect(arrival)
        sc = enld.clean_inventory
        if len(sc):
            assert (sc.y == sc.true_y).mean() > 0.8

    def test_deterministic_same_seed(self, world):
        a = ENLD(make_config(seed=5)).initialize(world["inventory"])
        b = ENLD(make_config(seed=5)).initialize(world["inventory"])
        ra = a.detect(world["arrivals"][0])
        rb = b.detect(world["arrivals"][0])
        assert np.array_equal(ra.clean_mask, rb.clean_mask)


class TestModelUpdate:
    def test_update_swaps_halves(self, world):
        enld = ENLD(make_config()).initialize(world["inventory"])
        old_train_ids = set(enld.inventory_train.ids)
        old_cand_ids = set(enld.inventory_candidates.ids)
        for arrival in world["arrivals"]:
            enld.detect(arrival)
        enld.update_model(epochs=3)
        assert set(enld.inventory_train.ids) == old_cand_ids
        assert set(enld.inventory_candidates.ids) == old_train_ids

    def test_update_reestimates_probability(self, world):
        enld = ENLD(make_config()).initialize(world["inventory"])
        for arrival in world["arrivals"]:
            enld.detect(arrival)
        old_cond = enld.cond_prob.copy()
        enld.update_model(epochs=3)
        assert enld.cond_prob.shape == old_cond.shape
        assert np.allclose(enld.cond_prob.sum(axis=1), 1.0)

    def test_update_clears_clean_positions(self, world):
        enld = ENLD(make_config()).initialize(world["inventory"])
        for arrival in world["arrivals"]:
            enld.detect(arrival)
        enld.update_model(epochs=2)
        assert len(enld.clean_inventory) == 0

    def test_update_requires_clean_samples(self, world):
        enld = ENLD(make_config()).initialize(world["inventory"])
        with pytest.raises(ValueError, match="non-empty"):
            enld.update_model()

    def test_model_update_function_directly(self, world, rng):
        enld = ENLD(make_config()).initialize(world["inventory"])
        clean = enld.inventory_candidates.subset(np.arange(30))
        out = model_update(enld.model, clean, enld.inventory_train,
                           enld.inventory_candidates, enld.config, rng,
                           epochs=2)
        assert out.train_samples == 2 * 30
        assert out.inventory_train is enld.inventory_candidates
        assert out.inventory_candidates is enld.inventory_train
        # Original model untouched (update happens on a clone).
        assert out.model is not enld.model
