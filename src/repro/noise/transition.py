"""Label-noise transition matrices.

A transition matrix ``T`` has entries ``T[i, j] = P(ỹ = j | y* = i)``:
the probability that a sample whose true label is ``i`` is observed
with label ``j`` (paper §III-A).  Every row must sum to one.

The paper's experiments use *pair asymmetric* noise (§V-A2):
``T[i, i] = 1 - η`` and ``T[i, (i+1) mod L] = η``.
"""

from __future__ import annotations

import numpy as np


def validate_transition(matrix: np.ndarray, atol: float = 1e-8) -> np.ndarray:
    """Check that ``matrix`` is a row-stochastic square matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"transition matrix must be square, got {matrix.shape}")
    if (matrix < -atol).any():
        raise ValueError("transition matrix has negative entries")
    row_sums = matrix.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=atol):
        bad = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ValueError(
            f"row {bad} of transition matrix sums to {row_sums[bad]:.6f}")
    return matrix


def pair_asymmetric(num_classes: int, noise_rate: float) -> np.ndarray:
    """Pair noise: class ``i`` flips to ``(i+1) mod L`` with prob ``η``."""
    _check_rate(noise_rate)
    if num_classes < 2:
        raise ValueError("pair noise needs at least 2 classes")
    matrix = np.eye(num_classes) * (1.0 - noise_rate)
    for i in range(num_classes):
        matrix[i, (i + 1) % num_classes] += noise_rate
    return validate_transition(matrix)


def symmetric(num_classes: int, noise_rate: float) -> np.ndarray:
    """Uniform noise: flips to every other class with equal probability."""
    _check_rate(noise_rate)
    if num_classes < 2:
        raise ValueError("symmetric noise needs at least 2 classes")
    off = noise_rate / (num_classes - 1)
    matrix = np.full((num_classes, num_classes), off)
    np.fill_diagonal(matrix, 1.0 - noise_rate)
    return validate_transition(matrix)


def block_asymmetric(num_classes: int, noise_rate: float,
                     block_size: int = 5,
                     rng: np.random.Generator | None = None) -> np.ndarray:
    """Asymmetric noise confined to random blocks of similar classes.

    A harsher, more structured variant used by the extension benches:
    within each block of ``block_size`` consecutive classes, noise mass
    is spread over the other block members with random (fixed) weights.
    """
    _check_rate(noise_rate)
    rng = rng or np.random.default_rng(0)
    matrix = np.eye(num_classes) * (1.0 - noise_rate)
    for i in range(num_classes):
        block_start = (i // block_size) * block_size
        members = [j for j in range(block_start,
                                    min(block_start + block_size, num_classes))
                   if j != i]
        if not members:
            matrix[i, i] += noise_rate
            continue
        weights = rng.dirichlet(np.ones(len(members)))
        for j, w in zip(members, weights):
            matrix[i, j] += noise_rate * w
    return validate_transition(matrix)


def identity(num_classes: int) -> np.ndarray:
    """The no-noise transition matrix."""
    return np.eye(num_classes)


def expected_noise_rate(matrix: np.ndarray,
                        class_prior: np.ndarray | None = None) -> float:
    """Overall expected mislabel fraction under ``matrix``.

    ``class_prior`` defaults to uniform.
    """
    matrix = validate_transition(matrix)
    n = matrix.shape[0]
    prior = (np.full(n, 1.0 / n) if class_prior is None
             else np.asarray(class_prior, dtype=np.float64))
    if prior.shape != (n,):
        raise ValueError("class_prior shape mismatch")
    return float(np.sum(prior * (1.0 - np.diag(matrix))))


def _check_rate(noise_rate: float) -> None:
    if not 0.0 <= noise_rate < 1.0:
        raise ValueError(f"noise rate must be in [0, 1), got {noise_rate}")
