"""``repro.noise`` — label-noise models and injection utilities."""

from .injector import (MISSING_LABEL, corrupt_labels, drop_labels,
                       instance_dependent_noise, observed_noise_rate)
from .transition import (block_asymmetric, expected_noise_rate, identity,
                         pair_asymmetric, symmetric, validate_transition)

__all__ = [
    "pair_asymmetric", "symmetric", "block_asymmetric", "identity",
    "validate_transition", "expected_noise_rate",
    "corrupt_labels", "drop_labels", "observed_noise_rate",
    "instance_dependent_noise", "MISSING_LABEL",
]
