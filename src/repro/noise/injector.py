"""Apply label noise and missing labels to datasets.

All corruption keeps the hidden ``true_y`` intact so that evaluation
code can score detectors against ground truth, exactly as the paper's
experiments do.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn.data import LabeledDataset
from .transition import validate_transition

MISSING_LABEL = -1
"""Sentinel observed label for samples whose label is missing (§V-H)."""


def corrupt_labels(dataset: LabeledDataset, transition: np.ndarray,
                   rng: np.random.Generator,
                   name: Optional[str] = None) -> LabeledDataset:
    """Resample observed labels through a transition matrix.

    For each sample with true label ``i``, the new observed label is
    drawn from row ``i`` of ``transition``.  The dataset must carry
    ground truth (``true_y``); corruption is applied to the *true*
    labels, matching the paper's generation process.
    """
    transition = validate_transition(transition)
    if dataset.true_y is None:
        raise ValueError("corrupt_labels requires a dataset with true_y")
    num_classes = transition.shape[0]
    if dataset.true_y.max() >= num_classes:
        raise ValueError(
            f"labels up to {dataset.true_y.max()} exceed transition size "
            f"{num_classes}")
    # Vectorised sampling: inverse-CDF per sample against its own row.
    cdf = np.cumsum(transition, axis=1)
    u = rng.random(len(dataset))
    rows = cdf[dataset.true_y]
    new_y = (u[:, None] < rows).argmax(axis=1)
    return LabeledDataset(
        x=dataset.x, y=new_y.astype(dataset.y.dtype),
        true_y=dataset.true_y, ids=dataset.ids,
        name=name or f"{dataset.name}+noise")


def drop_labels(dataset: LabeledDataset, missing_fraction: float,
                rng: np.random.Generator,
                name: Optional[str] = None
                ) -> Tuple[LabeledDataset, np.ndarray]:
    """Mark a random fraction of observed labels as missing (§V-H).

    Returns the dataset with ``MISSING_LABEL`` sentinels and the boolean
    mask of dropped positions.
    """
    if not 0.0 <= missing_fraction <= 1.0:
        raise ValueError(
            f"missing_fraction must be in [0, 1], got {missing_fraction}")
    n = len(dataset)
    n_drop = int(round(n * missing_fraction))
    mask = np.zeros(n, dtype=bool)
    if n_drop:
        mask[rng.choice(n, size=n_drop, replace=False)] = True
    new_y = dataset.y.copy()
    new_y[mask] = MISSING_LABEL
    out = LabeledDataset(x=dataset.x, y=new_y, true_y=dataset.true_y,
                         ids=dataset.ids,
                         name=name or f"{dataset.name}+missing")
    return out, mask


def instance_dependent_noise(dataset: LabeledDataset, noise_rate: float,
                             difficulty: np.ndarray,
                             rng: np.random.Generator,
                             num_classes: Optional[int] = None,
                             name: Optional[str] = None) -> LabeledDataset:
    """Instance-dependent pair noise (extension; cf. paper ref. [10]).

    Each sample's flip probability is proportional to its ``difficulty``
    score (e.g. distance to its class prototype), rescaled so the
    *average* flip probability equals ``noise_rate``; flipped samples
    move to the adjacent class ``(y*+1) mod L`` as in pair noise.
    Per-sample probabilities are clipped to [0, 1], so very skewed
    difficulty profiles may realise slightly less than ``noise_rate``.
    """
    if not 0.0 <= noise_rate < 1.0:
        raise ValueError(f"noise rate must be in [0, 1), got {noise_rate}")
    if dataset.true_y is None:
        raise ValueError("instance_dependent_noise requires true_y")
    difficulty = np.asarray(difficulty, dtype=np.float64)
    if difficulty.shape != (len(dataset),):
        raise ValueError("difficulty must have one score per sample")
    if (difficulty < 0).any():
        raise ValueError("difficulty scores must be non-negative")
    total = difficulty.sum()
    if total <= 0:
        raise ValueError("difficulty scores must not be all zero")
    probs = np.clip(difficulty * (noise_rate * len(dataset) / total),
                    0.0, 1.0)
    flip = rng.random(len(dataset)) < probs
    classes = num_classes or int(dataset.true_y.max()) + 1
    new_y = dataset.true_y.copy()
    new_y[flip] = (new_y[flip] + 1) % classes
    return LabeledDataset(
        x=dataset.x, y=new_y.astype(dataset.y.dtype),
        true_y=dataset.true_y, ids=dataset.ids,
        name=name or f"{dataset.name}+idn")


def observed_noise_rate(dataset: LabeledDataset) -> float:
    """Actual mislabel fraction among samples with an observed label."""
    if dataset.true_y is None:
        raise ValueError("dataset has no ground truth")
    present = dataset.y != MISSING_LABEL
    if not present.any():
        return 0.0
    return float((dataset.y[present] != dataset.true_y[present]).mean())
