"""Command-line interface for the ENLD reproduction.

Usage::

    python -m repro list-figures
    python -m repro run fig5 --scale bench
    python -m repro run table2 --noise-rates 0.1 0.2
    python -m repro demo --dataset toy
    python -m repro trace -o trace.json
    python -m repro trace --baseline benchmarks/baselines/trace_smoke.json
    python -m repro chaos --fail-stage iteration --fail-stage vote
    python -m repro bench-hotpath --baseline benchmarks/baselines/hotpath_smoke.json
    python -m repro lint src --format sarif
    python -m repro deps --cycles
    python -m repro deps --why repro.core.enld repro.nn.train

``run`` executes one of the paper's figure/table drivers and prints the
paper-style table; ``demo`` runs a minimal end-to-end detection;
``trace`` runs a tiny traced detection, exports the per-stage span
tree (wall-clock + sample-epoch work counts) and can gate it against a
checked-in baseline — the CI perf-smoke job.  ``run`` and ``demo``
accept ``--trace-out FILE`` to export a trace of any invocation.
``chaos`` drives the platform through a fault-injected arrival stream
(plus one malformed arrival) and a checkpoint/resume round-trip,
proving the submissions degrade instead of crashing — the CI
chaos-smoke job.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, Optional, Sequence

from .experiments import (bench_preset, fig3_contribution, fig6_networks,
                          fig8_time_cost, fig9_training_process,
                          fig10_policies, fig11_12_k_sweep,
                          fig13a_missing_labels, fig13b_ambiguous_counts,
                          fig14_ablation, full_preset, method_comparison,
                          small_preset, table2_model_update)

_FIGURES: Dict[str, str] = {
    "fig3": "Contribution of sample-addition strategies (loss)",
    "fig4": "Method comparison on the EMNIST analog",
    "fig5": "Method comparison on the CIFAR100 analog",
    "fig6": "ENLD vs Topofilter across architectures",
    "fig7": "Method comparison on the Tiny-ImageNet analog",
    "fig8": "Setup/process time per method per dataset",
    "fig9": "Detection trajectory over iterations",
    "fig10": "Sampling-policy comparison",
    "fig11": "Hyperparameter k sweep (quality)",
    "fig12": "Hyperparameter k sweep (time)",
    "fig13a": "Missing-label handling",
    "fig13b": "Ambiguous-set size per iteration",
    "fig14": "Ablation study",
    "table2": "Model update accuracy",
}

_SCALES = {"small": small_preset, "bench": bench_preset,
           "full": full_preset}


def _preset_for(figure: str, scale: str, noise_rates):
    dataset = {"fig4": "emnist_like", "fig7": "tiny_imagenet_like"}.get(
        figure, "cifar100_like")
    preset = _SCALES[scale](dataset)
    if noise_rates:
        preset = preset.with_overrides(noise_rates=tuple(noise_rates))
    return preset


def _run_figure(figure: str, scale: str, noise_rates) -> dict:
    preset = _preset_for(figure, scale, noise_rates)
    drivers: Dict[str, Callable[[], dict]] = {
        "fig3": lambda: fig3_contribution(preset),
        "fig4": lambda: method_comparison(preset),
        "fig5": lambda: method_comparison(preset),
        "fig6": lambda: fig6_networks(preset),
        "fig7": lambda: method_comparison(preset),
        "fig8": lambda: fig8_time_cost(
            [_preset_for(f, scale, noise_rates)
             for f in ("fig4", "fig5", "fig7")]),
        "fig9": lambda: fig9_training_process(preset),
        "fig10": lambda: fig10_policies(preset),
        "fig11": lambda: fig11_12_k_sweep(preset),
        "fig12": lambda: fig11_12_k_sweep(preset),
        "fig13a": lambda: fig13a_missing_labels(preset),
        "fig13b": lambda: fig13b_ambiguous_counts(preset),
        "fig14": lambda: fig14_ablation(preset),
        "table2": lambda: table2_model_update(preset),
    }
    return drivers[figure]()


def cmd_list_figures(_args) -> int:
    """Print the reproducible figures/tables and their descriptions."""
    width = max(len(k) for k in _FIGURES)
    for key, desc in _FIGURES.items():
        print(f"  {key.ljust(width)}  {desc}")
    return 0


def _make_tracer(args):
    """A (tracer, save) pair honouring the --trace-out flag."""
    from .obs import Tracer, save_trace

    if not getattr(args, "trace_out", None):
        return None, lambda: None

    tracer = Tracer()

    def save() -> None:
        save_trace(tracer.to_dict(), args.trace_out)
        print(f"wrote trace to {args.trace_out}")

    return tracer, save


def cmd_run(args) -> int:
    """Run one figure/table driver and print/store its JSON result."""
    from .obs import use_tracer

    if args.figure not in _FIGURES:
        print(f"unknown figure {args.figure!r}; see 'list-figures'",
              file=sys.stderr)
        return 2
    tracer, save_trace_file = _make_tracer(args)
    with use_tracer(tracer):
        result = _run_figure(args.figure, args.scale, args.noise_rates)
    save_trace_file()
    text = json.dumps(result, indent=2, default=float)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_report(args) -> int:
    """Render EXPERIMENTS.md from recorded benchmark result JSONs."""
    from .experiments.report_markdown import write_markdown

    write_markdown(args.results, args.output)
    print(f"wrote {args.output}")
    return 0


def cmd_demo(args) -> int:
    """Run a minimal end-to-end detection on a chosen dataset preset."""
    import numpy as np

    from . import ArrivalStream, ENLD, ENLDConfig
    from .datasets import (generate, get_preset, paper_shard_plan,
                           split_inventory_incremental)
    from .eval import score_detection
    from .noise import corrupt_labels, pair_asymmetric

    spec = get_preset(args.dataset) if args.dataset == "toy" \
        else get_preset(args.dataset, scale="small")
    data = generate(spec, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(spec.num_classes, args.noise_rate)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool, paper_shard_plan(args.dataset),
                             transition=transition,
                             seed=args.seed + 2).arrivals()

    tracer, save_trace_file = _make_tracer(args)
    config = ENLDConfig(model_name="tinyresnet", init_epochs=15,
                        iterations=3, seed=args.seed)
    enld = ENLD(config, tracer=tracer).initialize(
        inventory, num_classes=spec.num_classes)
    print(f"setup: {enld.setup_seconds:.1f}s on {len(inventory)} "
          "inventory samples")
    for arrival in arrivals[:args.max_arrivals]:
        result = enld.detect(arrival)
        score = score_detection(result, arrival)
        print(f"{arrival.name}: f1={score.f1:.3f} "
              f"precision={score.precision:.3f} "
              f"recall={score.recall:.3f} "
              f"({result.process_seconds:.2f}s)")
    save_trace_file()
    return 0


def cmd_trace(args) -> int:
    """Traced end-to-end detection; export + optionally gate the trace.

    Runs the ``demo`` pipeline (small and deterministic for a fixed
    seed) under a :class:`repro.obs.Tracer`, prints the per-stage
    summary, writes the JSON trace when ``--out`` is given, and — when
    ``--baseline`` is given — compares per-stage *sample-epoch work
    counts* against the checked-in baseline, returning exit code 1 on
    regression.  Work counts are machine-independent, so this gate is
    stable where wall-clock assertions would flake.
    """
    import numpy as np

    from . import ArrivalStream, ENLD, ENLDConfig
    from .datasets import (generate, get_preset, paper_shard_plan,
                           split_inventory_incremental)
    from .noise import corrupt_labels, pair_asymmetric
    from .obs import (Tracer, check_against_baseline, format_summary,
                      save_trace)

    spec = get_preset(args.dataset) if args.dataset == "toy" \
        else get_preset(args.dataset, scale="small")
    data = generate(spec, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(spec.num_classes, args.noise_rate)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    arrivals = ArrivalStream(pool, paper_shard_plan(args.dataset),
                             transition=transition,
                             seed=args.seed + 2).arrivals()

    tracer = Tracer()
    config = ENLDConfig(model_name="tinyresnet", init_epochs=15,
                        iterations=3, seed=args.seed)
    enld = ENLD(config, tracer=tracer).initialize(
        inventory, num_classes=spec.num_classes)
    for arrival in arrivals[:args.max_arrivals]:
        enld.detect(arrival)

    trace = tracer.to_dict()
    trace["meta"] = {"dataset": args.dataset, "seed": args.seed,
                     "noise_rate": args.noise_rate,
                     "arrivals": int(min(args.max_arrivals, len(arrivals)))}
    if not args.quiet:
        print(format_summary(trace))
    if args.output:
        save_trace(trace, args.output)
        print(f"wrote trace to {args.output}")
    if args.baseline:
        try:
            ok = check_against_baseline(trace, args.baseline,
                                        tolerance=args.tolerance)
        except FileNotFoundError:
            print(f"baseline file not found: {args.baseline}",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"invalid gate parameters: {exc}", file=sys.stderr)
            return 2
        return 0 if ok else 1
    return 0


def cmd_bench_hotpath(args) -> int:
    """Hot-path A/B bench: legacy vs facade + cache — the perf-bench gate.

    Runs two full detection streams on the same large-inventory world
    (the seed implementation's cost structure vs the fused/indexed/
    cached hot path), asserts bit-identical verdicts, prints the
    per-stage speedup table, writes the full result JSON with
    ``--trace-out``, and — with ``--baseline`` — gates the speedup
    ratio, per-stage work counts and detection counters against the
    committed baseline, returning exit code 1 on regression.  The
    primary gate is the same-process speedup *ratio*, which is stable
    across machines where absolute-seconds gates flake.
    """
    from .experiments.hotpath import (baseline_payload, format_hotpath_report,
                                      gate_hotpath, run_hotpath_bench)
    from .obs import save_trace

    result = run_hotpath_bench(
        samples_per_class=args.samples_per_class,
        num_arrivals=args.arrivals, arrival_size=args.arrival_size,
        noise_rate=args.noise_rate, seed=args.seed)
    if not args.quiet:
        print(format_hotpath_report(result))
    if args.trace_out:
        save_trace(result, args.trace_out)
        print(f"wrote bench result to {args.trace_out}")
    if args.refresh_baseline:
        save_trace(baseline_payload(result), args.refresh_baseline)
        print(f"wrote baseline to {args.refresh_baseline}")
        return 0
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"baseline file not found: {args.baseline}",
                  file=sys.stderr)
            return 2
        violations = gate_hotpath(result, baseline,
                                  tolerance=args.tolerance)
        if violations:
            print("hot-path bench gate FAILED:", file=sys.stderr)
            for v in violations:
                print(f"  - {v}", file=sys.stderr)
            return 1
        print(f"hot-path bench gate passed "
              f"({result['speedup']:.2f}x vs baseline "
              f"{baseline.get('speedup', 0.0):.2f}x)")
    if not result["verdicts_identical"]:
        print("legacy and hot verdicts disagree", file=sys.stderr)
        return 1
    return 0


def cmd_ingest_storm(args) -> int:
    """Concurrent-ingestion storm bench — the second perf-bench gate.

    Runs the same multi-stream arrival storm twice against identically
    initialised platforms — sequential baseline vs the DESIGN.md §14
    pipeline (N producer streams, bounded backpressure queue, worker
    pool, sharded inventory) — asserts bit-identical verdicts, prints
    the datasets/s / samples/s comparison, and — with ``--baseline`` —
    gates the speedup ratio, the backpressure invariants and the
    deterministic counters against the committed baseline.  The lake
    fetch is a simulated latency, so the ratio transfers across
    machines the same way the hotpath ratio does.
    """
    from .experiments.ingest_storm import (baseline_payload,
                                           format_storm_report,
                                           gate_ingest_storm,
                                           run_ingest_storm)
    from .obs import save_trace

    result = run_ingest_storm(
        samples_per_class=args.samples_per_class,
        inventory_size=args.inventory_size, pool_size=args.pool_size,
        num_arrivals=args.arrivals, streams=args.streams,
        workers=args.workers, queue_capacity=args.queue_capacity,
        rtt_seconds=args.rtt, per_sample_seconds=args.per_sample,
        noise_rate=args.noise_rate, seed=args.seed)
    if not args.quiet:
        print(format_storm_report(result))
    if args.trace_out:
        save_trace(result, args.trace_out)
        print(f"wrote bench result to {args.trace_out}")
    if args.refresh_baseline:
        save_trace(baseline_payload(result), args.refresh_baseline)
        print(f"wrote baseline to {args.refresh_baseline}")
        return 0
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"baseline file not found: {args.baseline}",
                  file=sys.stderr)
            return 2
        violations = gate_ingest_storm(result, baseline,
                                       tolerance=args.tolerance)
        if violations:
            print("ingest-storm bench gate FAILED:", file=sys.stderr)
            for v in violations:
                print(f"  - {v}", file=sys.stderr)
            return 1
        print(f"ingest-storm bench gate passed "
              f"({result['speedup']:.2f}x vs baseline "
              f"{baseline.get('speedup', 0.0):.2f}x)")
    if not result["verdicts_identical"]:
        print("serial and concurrent verdicts disagree", file=sys.stderr)
        return 1
    return 0


def cmd_versions(args) -> int:
    """Inspect a checkpoint's content-addressed model-version lineage.

    Reads ``platform.json`` from ``--checkpoint-dir`` (no inventory and
    no retraining needed) and prints the version chain — digests, clean
    pool size, reason, verdict counts.  With ``--verdicts REF`` it
    answers the time-travel query "which verdicts did model REF
    produce?" from the catalog records plus, when present, the
    submission journal (entries written before versioning simply lack
    the field and are reported as unversioned).
    """
    from .datalake.persistence import PLATFORM_STATE_FILE, read_journal

    path = os.path.join(args.checkpoint_dir, PLATFORM_STATE_FILE)
    if not os.path.exists(path):
        print(f"no platform checkpoint at {path}", file=sys.stderr)
        return 2
    with open(path) as fh:
        state = json.load(fh)
    catalog = state.get("catalog", {})
    versions = catalog.get("model_versions", [])
    records = catalog.get("records", [])
    journal_path = args.journal or os.path.join(args.checkpoint_dir,
                                                "journal.jsonl")
    journal = read_journal(journal_path)

    def resolve(ref):
        for v in versions:
            if v["version_id"] == ref:
                return v
        prefixed = [v for v in versions
                    if v["version_id"].startswith(ref)]
        if len(prefixed) == 1:
            return prefixed[0]
        if ref.isdigit() and int(ref) < len(versions):
            return versions[int(ref)]
        return None

    if args.verdicts is not None:
        version = resolve(args.verdicts)
        if version is None:
            print(f"no model version matching {args.verdicts!r}",
                  file=sys.stderr)
            return 2
        vid = version["version_id"]
        verdicts = [{"dataset": r["dataset_name"],
                     "clean": len(r["clean_ids"]),
                     "noisy": len(r["noisy_ids"])}
                    for r in records if r.get("model_version") == vid]
        journal_hits = sum(1 for e in journal
                           if e.get("model_version") == vid)
        if args.json:
            print(json.dumps({"version": version, "verdicts": verdicts,
                              "journal_entries": journal_hits}, indent=2))
            return 0
        print(f"model version {vid} (seq {version['seq']}, "
              f"{version['reason']}, clean pool "
              f"{version['clean_pool_size']})")
        for row in verdicts:
            print(f"  {row['dataset']}: clean={row['clean']} "
                  f"noisy={row['noisy']}")
        if not verdicts:
            print("  (no recorded verdicts)")
        if journal:
            print(f"  journal entries under this version: {journal_hits}")
        return 0

    active = versions[-1]["version_id"] if versions else None
    if args.json:
        print(json.dumps({"versions": versions, "active": active},
                         indent=2))
        return 0
    if not versions:
        print("no model versions recorded (pre-versioning checkpoint)")
        return 0
    counts: dict = {}
    for r in records:
        key = r.get("model_version")
        counts[key] = counts.get(key, 0) + 1
    print(f"{'seq':>4}  {'version':16}  {'reason':9}  {'pool':>5}  "
          f"{'epochs':>6}  {'at-sub':>6}  verdicts")
    for v in versions:
        marker = "*" if v["version_id"] == active else " "
        print(f"{v['seq']:>3}{marker}  {v['version_id']:16}  "
              f"{v['reason']:9}  {v['clean_pool_size']:>5}  "
              f"{v['train_epochs']:>6}  {v['created_at_submission']:>6}  "
              f"{counts.get(v['version_id'], 0)}")
    if counts.get(None):
        print(f"({counts[None]} record(s) predate versioning)")
    return 0


def cmd_chaos(args) -> int:
    """Fault-injected platform run + checkpoint/resume round-trip.

    Builds the toy (or chosen) world, submits ``--arrivals`` incremental
    datasets through a :class:`NoisyLabelPlatform` while a seeded
    :class:`FaultPlan` injects failures at the requested stages, appends
    one malformed arrival to exercise admission control, then
    checkpoints, resumes and verifies the resumed catalog state is
    byte-identical.  Exit code 0 means every submission completed
    (degraded or quarantined, never crashed) and the resume round-trip
    held; 1 otherwise.
    """
    import numpy as np

    from .core import ENLDConfig
    from .core.scheduler import EveryNArrivals
    from .datalake import (ArrivalStream, FaultPlan, FaultRule,
                           NoisyLabelPlatform, RetryPolicy, UpdaterConfig,
                           catalog_state)
    from .datalake.resilience import INJECTABLE_STAGES
    from .datasets import generate, get_preset, split_inventory_incremental
    from .datasets.splits import ShardPlan
    from .nn.data import LabeledDataset
    from .noise import corrupt_labels, pair_asymmetric

    fail_stages = args.fail_stage or ["iteration"]
    for stage in fail_stages:
        if stage not in INJECTABLE_STAGES:
            print(f"unknown stage {stage!r}; injectable: "
                  f"{', '.join(INJECTABLE_STAGES)}", file=sys.stderr)
            return 2

    spec = get_preset(args.dataset) if args.dataset == "toy" \
        else get_preset(args.dataset, scale="small")
    data = generate(spec, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    inventory_clean, pool = split_inventory_incremental(data, rng)
    transition = pair_asymmetric(spec.num_classes, args.noise_rate)
    inventory = corrupt_labels(inventory_clean, transition, rng)
    plan = ShardPlan(num_shards=args.arrivals,
                     classes_per_shard=min(3, spec.num_classes))
    arrivals = ArrivalStream(pool, plan, transition=transition,
                             seed=args.seed + 2).arrivals()

    fault_plan = FaultPlan(
        [FaultRule(s, probability=1.0, times=args.times)
         for s in fail_stages],
        seed=args.seed)
    config = ENLDConfig(model_name="mlp", model_kwargs={"hidden": 48},
                        init_epochs=10, iterations=2,
                        steps_per_iteration=3, seed=args.seed)
    scheduler = (EveryNArrivals(args.update_every)
                 if args.update_every else None)
    platform = NoisyLabelPlatform(
        inventory, config=config, num_classes=spec.num_classes, trace=True,
        scheduler=scheduler,
        updater=UpdaterConfig(mode=args.update_mode),
        fault_plan=fault_plan,
        retry=RetryPolicy(backoff_base=0.0, sleep=lambda _s: None),
        journal_path=(os.path.join(args.checkpoint_dir, "journal.jsonl")
                      if args.checkpoint_dir else None))

    statuses = []
    for arrival in arrivals:
        report = platform.submit(arrival)
        status = ("degraded" if report.degraded else "ok")
        statuses.append(status)
        print(f"{arrival.name}: {status} (retries={report.retries})")
    poison = LabeledDataset(
        np.full((4, inventory.feature_dim), np.nan),
        np.zeros(4, dtype=int), name="malformed-arrival")
    report = platform.submit(poison)
    statuses.append("quarantined" if report.quarantined else "ok")
    print(f"{poison.name}: {statuses[-1]}")

    shard_flush_ok = True
    shard_injected: dict = {}
    if "shard_flush" in fail_stages and args.checkpoint_dir:
        shard_flush_ok, shard_injected = _chaos_shard_flush(
            inventory, arrivals[0], spec.num_classes, args)
        print(f"shard_flush kill + resume: "
              f"{'bit-identical' if shard_flush_ok else 'MISMATCH'}")

    resume_ok = True
    if args.checkpoint_dir:
        platform.checkpoint(args.checkpoint_dir)
        resumed = NoisyLabelPlatform.resume(
            args.checkpoint_dir, inventory, arrivals=arrivals,
            updater=UpdaterConfig(mode=args.update_mode))
        before = json.dumps(catalog_state(platform.catalog), sort_keys=True)
        after = json.dumps(catalog_state(resumed.catalog), sort_keys=True)
        live_report = platform.quality_report()
        resumed_report = resumed.quality_report()
        resume_ok = (before == after
                     and live_report["model_version"]
                     == resumed_report["model_version"]
                     and live_report["pending_update"]
                     == resumed_report["pending_update"])
        print(f"checkpoint/resume round-trip: "
              f"{'byte-identical' if resume_ok else 'MISMATCH'}")

    counters = platform.quality_report()
    update_stages = [s for s in fail_stages if s.startswith("update_")
                     or s == "model_update"]
    injected = dict(platform._fault_injector.injected)
    injected.update(shard_injected)
    updates_exercised = all(injected.get(s, 0) >= 1
                            for s in update_stages)
    summary = {
        "arrivals": len(arrivals),
        "statuses": statuses,
        "degraded": counters["degraded_submissions"],
        "quarantined": counters["quarantined_submissions"],
        "retries": counters["retries"],
        "injected": injected,
        "model_versions": counters["model_versions"],
        "model_version": counters["model_version"],
        "pending_update": counters["pending_update"],
        "resume_ok": resume_ok,
        "updates_exercised": updates_exercised,
        "shard_flush_ok": shard_flush_ok,
    }
    print(json.dumps(summary, indent=2))
    survived = (counters["quarantined_submissions"] >= 1 and resume_ok
                and updates_exercised and shard_flush_ok)
    return 0 if survived else 1


def _chaos_shard_flush(inventory, arrival, num_classes: int,
                       args) -> "tuple[bool, dict]":
    """Kill a :meth:`ShardedInventory.save` mid-flush, verify resume.

    Saves a golden generation, grows the store with one arrival, then
    re-saves with a fault injected at the ``shard_flush`` span — the
    kill must leave the previous manifest/payload generation intact,
    so a load round-trips bit-identically to the golden state.  A
    clean re-save afterwards must land the grown state.  Returns
    ``(ok, injected_counts)``.
    """
    import numpy as np

    from .datalake import FaultPlan, FaultRule, ShardedInventory
    from .datalake.resilience import InjectedFault
    from .obs import use_span_hook

    directory = os.path.join(args.checkpoint_dir, "shards")
    store = ShardedInventory.from_dataset(inventory,
                                          num_classes=num_classes)
    store.save(directory)
    golden = store.as_dataset()
    store.add(arrival)

    injector = FaultPlan(
        [FaultRule("shard_flush", probability=1.0, times=args.times)],
        seed=args.seed).injector()
    killed = False
    try:
        with use_span_hook(injector):
            store.save(directory)
    except InjectedFault:
        killed = True

    def same(a, b) -> bool:
        return (np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)
                and np.array_equal(a.ids, b.ids)
                and ((a.true_y is None and b.true_y is None)
                     or np.array_equal(a.true_y, b.true_y)))

    after_kill = ShardedInventory.load(directory).as_dataset()
    survived_kill = same(after_kill, golden)
    store.save(directory)
    after_clean = ShardedInventory.load(directory).as_dataset()
    recovered = same(after_clean, store.as_dataset())
    ok = killed and survived_kill and recovered
    return ok, dict(injector.injected)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ENLD (ICDE 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list-figures",
                            help="list reproducible figures/tables")
    p_list.set_defaults(fn=cmd_list_figures)

    p_run = sub.add_parser("run", help="run a figure/table driver")
    p_run.add_argument("figure", help="e.g. fig5, table2")
    p_run.add_argument("--scale", choices=sorted(_SCALES),
                       default="bench")
    p_run.add_argument("--noise-rates", type=float, nargs="*",
                       default=None)
    p_run.add_argument("--output", help="write JSON result here")
    p_run.add_argument("--trace-out", dest="trace_out",
                       help="export a repro.obs trace of the run here")
    p_run.set_defaults(fn=cmd_run)

    p_report = sub.add_parser(
        "report", help="render EXPERIMENTS.md from benchmark results")
    p_report.add_argument("--results", default="benchmarks/results",
                          help="directory of bench result JSON files")
    p_report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    p_report.set_defaults(fn=cmd_report)

    p_demo = sub.add_parser("demo", help="minimal end-to-end detection")
    p_demo.add_argument("--dataset", default="toy",
                        choices=["toy", "emnist_like", "cifar100_like",
                                 "tiny_imagenet_like"])
    p_demo.add_argument("--noise-rate", type=float, default=0.2)
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument("--max-arrivals", type=int, default=3)
    p_demo.add_argument("--trace-out", dest="trace_out",
                        help="export a repro.obs trace of the demo here")
    p_demo.set_defaults(fn=cmd_demo)

    p_trace = sub.add_parser(
        "trace", help="traced end-to-end detection + perf-smoke gate")
    p_trace.add_argument("--dataset", default="toy",
                         choices=["toy", "emnist_like", "cifar100_like",
                                  "tiny_imagenet_like"])
    p_trace.add_argument("--noise-rate", type=float, default=0.2)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--max-arrivals", type=int, default=2)
    p_trace.add_argument("-o", "--output", help="write trace JSON here")
    p_trace.add_argument("--baseline",
                         help="gate per-stage work counts against this "
                              "baseline trace JSON")
    p_trace.add_argument("--tolerance", type=float, default=0.15,
                         help="relative work-count tolerance for the "
                              "baseline gate (default 0.15)")
    p_trace.add_argument("--quiet", action="store_true",
                         help="suppress the summary table")
    p_trace.set_defaults(fn=cmd_trace)

    p_hot = sub.add_parser(
        "bench-hotpath",
        help="legacy-vs-hot detection A/B bench + perf-bench gate")
    p_hot.add_argument("--samples-per-class", type=int, default=7500,
                       help="inventory scale; the default reproduces "
                            "the committed baseline world")
    p_hot.add_argument("--arrivals", type=int, default=4)
    p_hot.add_argument("--arrival-size", type=int, default=200)
    p_hot.add_argument("--noise-rate", type=float, default=0.4)
    p_hot.add_argument("--seed", type=int, default=11)
    p_hot.add_argument("--trace-out", dest="trace_out",
                       help="write the full bench result JSON here")
    p_hot.add_argument("--baseline",
                       help="gate speedup/work/counters against this "
                            "committed baseline JSON")
    p_hot.add_argument("--tolerance", type=float, default=0.15,
                       help="relative tolerance for the baseline gate "
                            "(default 0.15)")
    p_hot.add_argument("--refresh-baseline", metavar="FILE",
                       help="write FILE from this run instead of gating")
    p_hot.add_argument("--quiet", action="store_true",
                       help="suppress the per-stage speedup table")
    p_hot.set_defaults(fn=cmd_bench_hotpath)

    p_storm = sub.add_parser(
        "ingest-storm",
        help="concurrent-vs-serial ingestion bench + perf-bench gate")
    p_storm.add_argument("--samples-per-class", type=int, default=133_000,
                         help="world scale; the default builds the "
                              "committed-baseline 10^6+ inventory")
    p_storm.add_argument("--inventory-size", type=int, default=1_050_000)
    p_storm.add_argument("--pool-size", type=int, default=4_800)
    p_storm.add_argument("--arrivals", type=int, default=8,
                         help="total arrivals across all streams")
    p_storm.add_argument("--streams", type=int, default=4,
                         help="concurrent arrival streams (split of one "
                              "parent stream)")
    p_storm.add_argument("--workers", type=int, default=4)
    p_storm.add_argument("--queue-capacity", type=int, default=8)
    p_storm.add_argument("--rtt", type=float, default=2.0,
                         help="simulated lake-fetch round trip (s)")
    p_storm.add_argument("--per-sample", type=float, default=0.02,
                         help="simulated lake-fetch seconds per sample")
    p_storm.add_argument("--noise-rate", type=float, default=0.3)
    p_storm.add_argument("--seed", type=int, default=11)
    p_storm.add_argument("--trace-out", dest="trace_out",
                         help="write the full bench result JSON here")
    p_storm.add_argument("--baseline",
                         help="gate speedup/invariants/counters against "
                              "this committed baseline JSON")
    p_storm.add_argument("--tolerance", type=float, default=0.15,
                         help="relative tolerance for the baseline gate "
                              "(default 0.15)")
    p_storm.add_argument("--refresh-baseline", metavar="FILE",
                         help="write FILE from this run instead of gating")
    p_storm.add_argument("--quiet", action="store_true",
                         help="suppress the summary table")
    p_storm.set_defaults(fn=cmd_ingest_storm)

    p_chaos = sub.add_parser(
        "chaos", help="fault-injected platform run + resume round-trip")
    p_chaos.add_argument("--dataset", default="toy",
                         choices=["toy", "emnist_like", "cifar100_like",
                                  "tiny_imagenet_like"])
    p_chaos.add_argument("--noise-rate", type=float, default=0.2)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--arrivals", type=int, default=5,
                         help="number of incremental datasets to stream")
    p_chaos.add_argument("--fail-stage", action="append", default=None,
                         help="stage to inject a failure into "
                              "(repeatable; default: iteration)")
    p_chaos.add_argument("--times", type=int, default=1,
                         help="injections per stage; max_retries+1 "
                              "forces the coarse fallback (default 1: "
                              "one retry absorbs the fault)")
    p_chaos.add_argument("--checkpoint-dir",
                         help="checkpoint here and verify a resume "
                              "round-trip (also enables the journal)")
    p_chaos.add_argument("--update-every", type=int, default=None,
                         help="schedule a model update every N arrivals "
                              "(enables the update_* fault stages)")
    p_chaos.add_argument("--update-mode", default="inline",
                         choices=["inline", "thread", "process"],
                         help="model-update execution mode (default: "
                              "inline, i.e. synchronous)")
    p_chaos.set_defaults(fn=cmd_chaos, fail_stage=None)

    p_versions = sub.add_parser(
        "versions", help="time-travel queries over a checkpoint's "
                         "model-version lineage")
    p_versions.add_argument("--checkpoint-dir", required=True,
                            help="platform checkpoint directory "
                                 "(reads platform.json)")
    p_versions.add_argument("--journal",
                            help="journal path (default: "
                                 "<checkpoint-dir>/journal.jsonl)")
    p_versions.add_argument("--verdicts", metavar="REF",
                            help="show per-dataset verdicts judged by "
                                 "version REF (id, unique prefix, or seq)")
    p_versions.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON")
    p_versions.set_defaults(fn=cmd_versions)

    from .analysis.cli import add_parser as add_lint_parser
    from .analysis.deps import add_parser as add_deps_parser
    add_lint_parser(sub)
    add_deps_parser(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
