"""Fine-grained noisy-label detection (paper Algorithm 3, §IV-E).

Given the general model ``θ``, an incremental dataset ``D`` and the
inventory candidate pool ``I_c``, the detector:

1. *warms up* a fine-tuned copy ``θ'`` on the initial contrastive set,
   keeping the checkpoint with the best validation accuracy on ``D``;
2. runs ``t`` iterations of ``s`` fine-tuning steps; after each step the
   samples of ``D`` whose prediction matches their observed label vote,
   and samples with at least ``⌊s/2⌋+1`` votes within the iteration are
   *selected clean* (majority voting);
3. at the end of each iteration, recomputes the ambiguous set ``A`` and
   high-quality set ``H'`` under the current ``θ'``, re-runs the
   sampling policy, and merges the clean set into the contrastive set
   (``C = C ∪ S``) for training stability;
4. votes clean *inventory* samples with the stringent ``t``-of-``t``
   criterion, producing ``S_c`` for the optional model update (Alg. 4);
5. gives missing-label samples (§V-H) a pseudo-label vote per step and
   returns their majority pseudo labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..index.classindex import ClassFeatureIndex
from ..nn.data import LabeledDataset
from ..nn.featurecache import FeatureCache
from ..nn.models import Classifier
from ..nn.optim import SGD
from ..nn.serialize import clone_module
from ..nn.train import fit, fit_epoch
from ..noise.injector import MISSING_LABEL
from ..obs import incr, observe, trace_span
from .config import ENLDConfig
from .policies import (PolicySelection, SamplingPolicy, SamplingRequest,
                       build_policy)
from .samplesets import ModelView, ambiguous_mask, compute_view, high_quality_mask


@dataclass
class IterationSnapshot:
    """Per-iteration state recorded for the Fig. 9 / Fig. 13b analyses."""

    iteration: int
    clean_mask: np.ndarray
    num_ambiguous: int
    contrastive_size: int
    train_samples: int


@dataclass
class DetectionResult:
    """Outcome of fine-grained detection on one incremental dataset.

    ``clean_mask`` / ``noisy_mask`` partition the *labelled* rows of
    ``D``; rows with missing labels are in neither and receive
    ``pseudo_labels`` instead (-1 for rows that had observed labels).
    ``pseudo_labels`` is ``None`` for coarse/fallback detectors that
    run no voting steps and therefore cannot pseudo-label.
    ``inventory_clean_positions`` index rows of the candidate pool
    ``I_c`` voted clean with the stringent criterion.
    """

    clean_mask: np.ndarray
    noisy_mask: np.ndarray
    inventory_clean_positions: np.ndarray
    pseudo_labels: Optional[np.ndarray]
    trace: List[IterationSnapshot] = field(default_factory=list)
    train_samples: int = 0
    process_seconds: float = 0.0
    detector_name: str = "enld"

    @property
    def num_clean(self) -> int:
        return int(self.clean_mask.sum())

    @property
    def num_noisy(self) -> int:
        return int(self.noisy_mask.sum())


class FineGrainedDetector:
    """Algorithm 3 runner bound to a config and sampling policy."""

    def __init__(self, config: ENLDConfig,
                 policy: Optional[SamplingPolicy] = None) -> None:
        self.config = config
        if policy is not None:
            self.policy = policy
        elif not config.use_contrastive_sampling:
            # ENLD-1: random samples replace contrastive sampling.
            self.policy = build_policy("random")
        elif config.sampling_policy == "contrastive":
            self.policy = build_policy(
                "contrastive",
                use_probability_label=config.use_probability_label)
        else:
            self.policy = build_policy(config.sampling_policy)

    # ------------------------------------------------------------------
    def detect(self, model: Classifier, dataset: LabeledDataset,
               candidates: LabeledDataset, cond_prob: np.ndarray,
               rng: np.random.Generator,
               dataset_view: Optional[ModelView] = None,
               cache: Optional[FeatureCache] = None
               ) -> DetectionResult:
        """Run fine-grained detection of ``dataset`` against ``model``.

        ``model`` is never mutated; fine-tuning happens on a clone.
        ``candidates`` is the full ``I_c``; restriction to ``label(D)``
        (the paper's ``I'``) happens internally.  ``cache`` memoises
        the initial view of ``I'`` under ``θ`` across arrivals (the
        per-iteration views under ``θ'`` are never cached — the clone's
        weights change every step).
        """
        cfg = self.config
        num_classes = model.num_classes
        labeled = dataset.y != MISSING_LABEL
        labels_in_d = np.unique(dataset.y[labeled])

        # I' = candidates restricted to label(D)  (Alg. 3 line 3).
        cand_keep = np.isin(candidates.y, labels_in_d)
        cand_positions = np.nonzero(cand_keep)[0]
        pool = candidates.subset(cand_positions, name="I_prime")

        theta = clone_module(model)
        train_samples = 0

        # Initial views under θ.  The pool view is the cacheable one:
        # θ and I_c only change on an Alg. 4 refresh, so arrivals with
        # a recurring label set re-use the stored forward pass.
        with trace_span("initial_views"):
            d_view = dataset_view or compute_view(theta, dataset)
            pool_view = compute_view(theta, pool, cache=cache)
            a_mask = ambiguous_mask(dataset, d_view)
            hq_mask = high_quality_mask(
                pool, pool_view,
                confidence_filter=cfg.high_quality_confidence_filter)

        with trace_span("contrastive_sampling"):
            selection = self._select(dataset, d_view, a_mask, pool,
                                     pool_view, hq_mask, cond_prob, rng)
            contrast = self._materialise(pool, selection)
        observe("detector.ambiguous_set_size", int(a_mask.sum()))
        observe("detector.contrastive_set_size", len(contrast))

        # Warming up (Alg. 3 line 4): best-validation checkpoint on D.
        validate_on = dataset.mask(labeled) if labeled.any() else None
        if len(contrast) and cfg.warmup_epochs:
            with trace_span("warmup"):
                report = fit(theta, contrast, epochs=cfg.warmup_epochs,
                             rng=rng, lr=cfg.finetune_lr,
                             momentum=cfg.finetune_momentum,
                             batch_size=cfg.finetune_batch_size,
                             validate_on=validate_on,
                             keep_best=validate_on is not None)
            train_samples += report.samples_processed

        optimizer = SGD(theta.parameters(), lr=cfg.finetune_lr,
                        momentum=cfg.finetune_momentum)

        n = len(dataset)
        clean_mask = np.zeros(n, dtype=bool)
        count_c = np.zeros(len(pool), dtype=int)
        pseudo_votes = np.zeros((n, num_classes), dtype=int)
        missing = ~labeled
        trace: List[IterationSnapshot] = []

        flat_d = dataset.flat_x()
        for iteration in range(cfg.iterations):
            steps = cfg.steps_per_iteration
            step_preds = np.empty((steps, n), dtype=np.int64)
            with trace_span("iteration"):
                for step in range(steps):
                    if len(contrast):
                        with trace_span("fine_tune"):
                            _, n_trained = fit_epoch(
                                theta, contrast, optimizer, rng,
                                batch_size=cfg.finetune_batch_size,
                                num_classes=num_classes)
                        train_samples += n_trained
                    with trace_span("vote"):
                        step_preds[step] = theta.predict(flat_d)
                    incr("detector.vote_rounds")

                # Fused vote accumulation: the per-step vote bookkeeping
                # collapses into epoch-level array ops.  A sample is
                # selected clean iff some step both agreed and had
                # reached the majority threshold — with a running count
                # that is exactly ``agree & (cumsum >= threshold)``
                # anywhere, because the count is monotone within the
                # iteration.  Bit-identical to the per-step updates.
                with trace_span("vote_fuse"):
                    agree_steps = ((step_preds == dataset.y[None, :])
                                   & labeled[None, :])
                    cum = np.cumsum(agree_steps, axis=0)
                    if cfg.use_majority_voting:
                        newly = agree_steps & (cum >= cfg.majority_threshold)
                    else:
                        newly = agree_steps  # ENLD-2: aggressive selection
                    clean_mask |= newly.any(axis=0)
                    denom = max(int(labeled.sum()), 1)
                    for step in range(steps):
                        observe("detector.vote_agreement_rate",
                                float(agree_steps[step].sum()) / denom)
                    if missing.any():
                        rows = np.nonzero(missing)[0]
                        np.add.at(pseudo_votes,
                                  (np.tile(rows, steps),
                                   step_preds[:, rows].ravel()), 1)

                # End-of-iteration updates (Alg. 3 lines 15–21).
                with trace_span("recompute_views"):
                    d_view = compute_view(theta, dataset)
                    pool_view = compute_view(theta, pool)
                    a_mask = ambiguous_mask(dataset, d_view)
                    hq_mask = high_quality_mask(
                        pool, pool_view,
                        confidence_filter=cfg.high_quality_confidence_filter)
                count_c += hq_mask

                trace.append(IterationSnapshot(
                    iteration=iteration,
                    clean_mask=clean_mask.copy(),
                    num_ambiguous=int(a_mask.sum()),
                    contrastive_size=len(contrast),
                    train_samples=train_samples,
                ))
                observe("detector.ambiguous_set_size", int(a_mask.sum()))

                if iteration + 1 < cfg.iterations:
                    with trace_span("resample"):
                        selection = self._select(
                            dataset, d_view, a_mask, pool, pool_view,
                            hq_mask, cond_prob, rng)
                        contrast = self._materialise(pool, selection)
                        if (cfg.merge_clean_into_contrastive
                                and clean_mask.any()):
                            contrast = self._merge_clean(
                                contrast, dataset, clean_mask)
                    observe("detector.contrastive_set_size", len(contrast))

        noisy_mask = labeled & ~clean_mask
        # Stringent t-of-t criterion for inventory clean samples (§IV-E).
        sc_local = np.nonzero(count_c == cfg.iterations)[0]
        pseudo_labels = np.full(n, -1, dtype=int)
        if missing.any():
            rows = np.nonzero(missing)[0]
            pseudo_labels[rows] = pseudo_votes[rows].argmax(axis=1)

        return DetectionResult(
            clean_mask=clean_mask,
            noisy_mask=noisy_mask,
            inventory_clean_positions=cand_positions[sc_local],
            pseudo_labels=pseudo_labels,
            trace=trace,
            train_samples=train_samples,
        )

    # ------------------------------------------------------------------
    def _select(self, dataset: LabeledDataset, d_view: ModelView,
                a_mask: np.ndarray, pool: LabeledDataset,
                pool_view: ModelView, hq_mask: np.ndarray,
                cond_prob: np.ndarray,
                rng: np.random.Generator) -> PolicySelection:
        """Run the sampling policy for the current ambiguous set."""
        hq_positions = np.nonzero(hq_mask)[0]
        hq_index = ClassFeatureIndex(
            pool_view.features[hq_positions], pool.y[hq_positions],
            backend=self.config.effective_index_backend,
            source_indices=hq_positions)
        request = SamplingRequest(
            candidate_view=pool_view,
            candidate_labels=pool.y,
            hq_index=hq_index,
            ambiguous_features=d_view.features[a_mask],
            ambiguous_labels=dataset.y[a_mask],
            cond_prob=cond_prob,
            k=self.config.contrastive_k,
            rng=rng,
        )
        return self.policy.select(request)

    @staticmethod
    def _materialise(pool: LabeledDataset,
                     selection: PolicySelection) -> LabeledDataset:
        """Build the contrastive training set from a policy selection."""
        subset = pool.subset(selection.indices, name="C")
        if selection.label_overrides is not None:
            subset = subset.with_labels(selection.label_overrides, name="C")
        return subset

    @staticmethod
    def _merge_clean(contrast: LabeledDataset, dataset: LabeledDataset,
                     clean_mask: np.ndarray) -> LabeledDataset:
        """``C = C ∪ S`` (Alg. 3 line 21)."""
        clean = dataset.mask(clean_mask, name="S")
        if len(contrast) == 0:
            return clean
        return contrast.concat(clean, name="C")
