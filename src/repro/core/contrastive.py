"""Contrastive sampling (paper Algorithm 2 and §IV-D).

For each ambiguous sample of the incremental dataset, draw a probable
true label from the estimated conditional ``P̃`` (restricted to
``label(H')``) and fetch its ``k`` nearest high-quality inventory
samples in feature space.  Repeated selections act as implicit sample
weights ("a re-weighting process", §IV-D), so the result is returned as
an index multiset.

Also provides the closed-form quantities of Corollary 1 (probability a
class is absent from ``label(D)``) and Corollary 2 (expected label
distribution of the contrastive set).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..index.classindex import ClassFeatureIndex
from ..obs import incr
from .probability import sample_probable_true_labels


@dataclass(frozen=True)
class ContrastiveSample:
    """Result of one contrastive-sampling pass.

    Attributes
    ----------
    indices:
        Candidate-set positions, *with multiplicity* (an index repeated
        m times carries weight m in subsequent fine-tuning).
    target_labels:
        The probable-true-label drawn for each ambiguous sample
        (aligned with the ambiguous set, not with ``indices``).
    """

    indices: np.ndarray
    target_labels: np.ndarray

    def __len__(self) -> int:
        return len(self.indices)

    def unique_counts(self) -> tuple:
        """Distinct indices and their multiplicities (the weights)."""
        return np.unique(self.indices, return_counts=True)


def contrastive_sampling(ambiguous_features: np.ndarray,
                         ambiguous_labels: np.ndarray,
                         index: ClassFeatureIndex,
                         cond_prob: np.ndarray,
                         k: int,
                         rng: np.random.Generator,
                         use_probability_label: bool = True
                         ) -> ContrastiveSample:
    """Algorithm 2: select ``k`` nearest high-quality contrastive samples
    per ambiguous sample.

    Parameters
    ----------
    ambiguous_features:
        ``M̂(x, θ)`` of the ambiguous samples, shape ``(|A|, D)``.
    ambiguous_labels:
        Observed labels of the ambiguous samples, shape ``(|A|,)``.
    index:
        Per-class KD-tree index over the high-quality candidates ``H'``
        (already restricted to ``label(D)``).
    cond_prob:
        Estimated ``P̃(y* = j | ỹ = i)``.
    use_probability_label:
        ``False`` reproduces the ENLD-4 ablation: query class ``j = i``
        (the observed label) instead of sampling from ``P̃``.
    """
    ambiguous_features = np.asarray(ambiguous_features, dtype=np.float64)
    ambiguous_labels = np.asarray(ambiguous_labels)
    if len(ambiguous_features) != len(ambiguous_labels):
        raise ValueError("features and labels of A must align")
    if len(ambiguous_labels) == 0:
        return ContrastiveSample(indices=np.empty(0, dtype=int),
                                 target_labels=np.empty(0, dtype=int))
    available = np.array(index.classes, dtype=int)
    if available.size == 0:
        return ContrastiveSample(indices=np.empty(0, dtype=int),
                                 target_labels=ambiguous_labels.copy())

    if use_probability_label:
        targets = sample_probable_true_labels(
            ambiguous_labels, cond_prob, available, rng)
    else:
        targets = ambiguous_labels.copy()

    # One batched lookup answers every ambiguous sample: rows are
    # grouped by target class inside the index, so each class costs a
    # single backend call.  Results come back in row order, so the
    # selected multiset is identical to per-row querying.
    results = index.query_batch(ambiguous_features, targets, k)
    per_row: list = []
    for row, (_, idx) in enumerate(results):
        if idx.size == 0:
            # ENLD-4 may target a class absent from H'; fall back to the
            # nearest populated class so the ambiguous sample still gets
            # contrastive supervision.  Drawing per row (in row order)
            # keeps the RNG stream identical to the historical
            # per-sample loop.
            fallback = int(available[rng.integers(len(available))])
            _, idx = index.query(ambiguous_features[row], fallback, k)
            incr("contrastive.fallback_queries")
        per_row.append(np.asarray(idx, dtype=int))
    chosen = (np.concatenate(per_row) if per_row
              else np.empty(0, dtype=int))
    incr("contrastive.ambiguous_queried", len(ambiguous_labels))
    incr("contrastive.samples_selected", len(chosen))
    return ContrastiveSample(indices=chosen, target_labels=targets)


# ----------------------------------------------------------------------
# Corollary helpers
# ----------------------------------------------------------------------

def prob_class_absent(per_class_keep_prob: float, class_count: int) -> float:
    """Corollary 1: P(class m ∉ label(D)) = (1 - P(ỹ=m|y*=m))^{|D^m|}."""
    if not 0.0 <= per_class_keep_prob <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if class_count < 0:
        raise ValueError("class_count must be non-negative")
    return float((1.0 - per_class_keep_prob) ** class_count)


def expected_contrastive_distribution(ambiguous_label_dist: np.ndarray,
                                      cond_prob: np.ndarray) -> np.ndarray:
    """Corollary 2: E(L(C))_j = Σ_i L(A)_i · P̃(y* = j | ỹ = i)."""
    dist = np.asarray(ambiguous_label_dist, dtype=np.float64)
    if dist.ndim != 1 or dist.shape[0] != cond_prob.shape[0]:
        raise ValueError("distribution and cond_prob sizes must match")
    total = dist.sum()
    if total <= 0:
        raise ValueError("ambiguous label distribution is empty")
    return (dist / total) @ cond_prob


def label_distribution(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Normalised label histogram ``L(·)`` used by Corollary 2."""
    counts = np.bincount(np.asarray(labels), minlength=num_classes)
    total = counts.sum()
    return counts / total if total else counts.astype(float)
