"""Missing-label handling helpers (paper §V-H).

Missing labels are treated as a special case of noisy labels: during
fine-grained detection every unlabelled sample receives one pseudo-label
vote per training step (see ``FineGrainedDetector``), and its final
label is the majority vote.  This module provides the scoring utilities
for the Fig. 13a experiment.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..nn.data import LabeledDataset
from ..noise.injector import MISSING_LABEL
from .detector import DetectionResult


def missing_rows(dataset: LabeledDataset) -> np.ndarray:
    """Positions of samples whose observed label is missing."""
    return np.nonzero(dataset.y == MISSING_LABEL)[0]


def _require_pseudo_labels(result: DetectionResult) -> None:
    """Clear error when a detector produced no pseudo-label votes.

    Coarse/fallback detectors (e.g. the general-model disagreement
    fallback of :mod:`repro.datalake.resilience`) run no voting steps,
    so ``pseudo_labels`` is ``None`` and §V-H scoring is undefined.
    """
    if result.pseudo_labels is None:
        raise ValueError(
            f"detector {result.detector_name!r} produced no pseudo labels "
            "(coarse/fallback detectors don't vote); re-run the arrival "
            "through fine-grained detection to score missing labels")


def pseudo_label_accuracy(result: DetectionResult,
                          dataset: LabeledDataset) -> float:
    """Fraction of missing-label samples whose pseudo label is correct."""
    _require_pseudo_labels(result)
    if dataset.true_y is None:
        raise ValueError("dataset has no ground truth")
    rows = missing_rows(dataset)
    if rows.size == 0:
        return 0.0
    return float((result.pseudo_labels[rows] == dataset.true_y[rows]).mean())


def pseudo_label_f1(result: DetectionResult,
                    dataset: LabeledDataset) -> float:
    """Macro F1 of pseudo labels over the missing-label samples.

    Macro-averages the one-vs-rest F1 over classes present in the true
    labels of the missing rows, matching the paper's 'average f1 scores
    of the pseudo label' reporting.
    """
    _require_pseudo_labels(result)
    if dataset.true_y is None:
        raise ValueError("dataset has no ground truth")
    rows = missing_rows(dataset)
    if rows.size == 0:
        return 0.0
    pred = result.pseudo_labels[rows]
    true = dataset.true_y[rows]
    scores = []
    for cls in np.unique(true):
        tp = int(((pred == cls) & (true == cls)).sum())
        fp = int(((pred == cls) & (true != cls)).sum())
        fn = int(((pred != cls) & (true == cls)).sum())
        denom = 2 * tp + fp + fn
        scores.append(2 * tp / denom if denom else 0.0)
    return float(np.mean(scores))


def missing_label_report(result: DetectionResult,
                         dataset: LabeledDataset) -> Dict[str, float]:
    """Summary of the §V-H experiment for one dataset."""
    _require_pseudo_labels(result)
    rows = missing_rows(dataset)
    return {
        "missing_count": int(rows.size),
        "missing_fraction": rows.size / len(dataset) if len(dataset) else 0.0,
        "pseudo_accuracy": pseudo_label_accuracy(result, dataset),
        "pseudo_f1": pseudo_label_f1(result, dataset),
    }
