"""Joint-distribution and conditional mislabel-probability estimation.

Implements the paper's §IV-B probability estimation (Eq. 3–5): using
the general model's predictions on the candidate inventory ``I_c`` as a
stand-in for true labels (the INCV assumption), count the joint
occurrence of (observed label ``ỹ = i``, predicted label ``y* = j``)
and normalise rows to obtain ``P̃(y* = j | ỹ = i)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.data import LabeledDataset
from ..nn.models import Classifier


def estimate_joint_counts(observed: np.ndarray, predicted: np.ndarray,
                          num_classes: int) -> np.ndarray:
    """Joint count matrix ``J[i, j] = |{ỹ = i, argmax M = j}|`` (Eq. 3–4)."""
    observed = np.asarray(observed)
    predicted = np.asarray(predicted)
    if observed.shape != predicted.shape:
        raise ValueError("observed and predicted must align")
    joint = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(joint, (observed, predicted), 1)
    return joint


def conditional_from_joint(joint: np.ndarray) -> np.ndarray:
    """Row-normalise a joint count matrix into ``P̃(y*=j | ỹ=i)`` (Eq. 5).

    Rows with zero mass fall back to the identity (a sample with an
    unseen observed label is assumed correctly labelled), keeping the
    result row-stochastic.
    """
    joint = np.asarray(joint, dtype=np.float64)
    if joint.ndim != 2 or joint.shape[0] != joint.shape[1]:
        raise ValueError(f"joint must be square, got {joint.shape}")
    row_sums = joint.sum(axis=1, keepdims=True)
    cond = np.where(row_sums > 0, joint / np.maximum(row_sums, 1e-300), 0.0)
    empty = np.nonzero(row_sums.ravel() == 0)[0]
    cond[empty, empty] = 1.0
    return cond


def estimate_conditional(model: Classifier, dataset: LabeledDataset,
                         num_classes: Optional[int] = None,
                         batch_size: int = 256) -> np.ndarray:
    """End-to-end §IV-B estimation on a dataset's observed labels."""
    n_classes = num_classes or model.num_classes
    predicted = model.predict(dataset.flat_x(), batch_size=batch_size)
    joint = estimate_joint_counts(dataset.y, predicted, n_classes)
    return conditional_from_joint(joint)


def sample_probable_true_labels(observed: np.ndarray, cond_prob: np.ndarray,
                                allowed_labels: np.ndarray,
                                rng: np.random.Generator) -> np.ndarray:
    """``random_label(i, P̃, label(H'))`` of Alg. 2, vectorised.

    For each observed label ``i``, draw ``j ~ P̃(y* = · | ỹ = i)``
    restricted (and renormalised) to ``allowed_labels``.  When an
    observed label has no probability mass inside the allowed set, the
    draw falls back to the observed label itself if allowed, else to a
    uniform draw over the allowed set (Corollary 1 argues this case is
    rare because the true label is almost surely in ``label(D)``).
    """
    observed = np.asarray(observed)
    allowed_labels = np.unique(np.asarray(allowed_labels))
    if allowed_labels.size == 0:
        raise ValueError("allowed_labels must be non-empty")
    num_classes = cond_prob.shape[0]
    mask = np.zeros(num_classes, dtype=bool)
    mask[allowed_labels] = True

    restricted = cond_prob * mask[None, :]
    row_mass = restricted.sum(axis=1, keepdims=True)
    uniform = mask.astype(np.float64) / mask.sum()
    safe = np.where(row_mass > 0, restricted / np.maximum(row_mass, 1e-300),
                    uniform[None, :])
    # Fall back to the observed label when it is allowed and its row had
    # no mass in the allowed set.
    zero_rows = np.nonzero(row_mass.ravel() == 0)[0]
    for i in zero_rows:
        if mask[i]:
            safe[i] = 0.0
            safe[i, i] = 1.0

    rows = safe[observed]
    cdf = np.cumsum(rows, axis=1)
    cdf[:, -1] = 1.0  # guard against round-off
    u = rng.random(len(observed))
    return (u[:, None] < cdf).argmax(axis=1)
