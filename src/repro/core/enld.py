"""The ENLD framework (paper Algorithm 1).

:class:`ENLD` owns the platform state — general model ``θ``, inventory
halves ``I_t`` / ``I_c``, estimated conditional probability ``P̃`` and
the running clean-inventory set ``S_c`` — and serves noisy-label
detection requests for arriving incremental datasets.

Typical usage::

    from repro import ENLD, ENLDConfig

    enld = ENLD(ENLDConfig(model_name="tinyresnet", iterations=5))
    enld.initialize(inventory)          # Step 0: train θ, estimate P̃
    for arrival in stream:              # Steps 1–2 per arrival
        result = enld.detect(arrival)
        print(result.num_noisy, "noisy samples flagged")
    enld.update_model()                 # Optional step (Alg. 4)
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from ..index.classindex import ClassFeatureIndex
from ..nn.data import LabeledDataset, train_test_split
from ..nn.featurecache import FeatureCache
from ..nn.models import Classifier, build_model
from ..nn.train import fit
from ..obs import Stopwatch, Tracer, trace_span, use_tracer
from .config import ENLDConfig
from .detector import DetectionResult, FineGrainedDetector
from .probability import estimate_conditional
from .update import UpdateResult, model_update

#: Opaque rollback snapshot captured by :meth:`ENLD.snapshot_swap_state`.
SwapState = Tuple[Optional[Classifier], Optional[np.ndarray],
                  Optional[LabeledDataset], Optional[LabeledDataset],
                  Set[int], int]

#: By-reference detection inputs captured by :meth:`ENLD.detection_snapshot`
#: — ``(θ, I_c, P̃)``.  Everything :meth:`ENLD.detect_stateless` reads.
DetectionSnapshot = Tuple[Classifier, LabeledDataset, np.ndarray]


class NotInitializedError(RuntimeError):
    """Raised when detection is requested before :meth:`ENLD.initialize`."""


class ENLD:
    """Efficient Noisy Label Detection for incremental datasets."""

    def __init__(self, config: Optional[ENLDConfig] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.config = config or ENLDConfig()
        # Optional repro.obs.Tracer; None defers to the ambient tracer
        # (a no-op unless the caller activated one via use_tracer).
        self.tracer = tracer
        self.model: Optional[Classifier] = None
        self.cond_prob: Optional[np.ndarray] = None
        self.inventory_train: Optional[LabeledDataset] = None      # I_t
        self.inventory_candidates: Optional[LabeledDataset] = None  # I_c
        self.num_classes: int = 0
        self.setup_seconds: float = 0.0
        self.setup_train_samples: int = 0
        self.results: List[DetectionResult] = []
        self._clean_candidate_positions: Set[int] = set()
        self._rng = np.random.default_rng(self.config.seed)
        self._detector = FineGrainedDetector(self.config)
        # Hot-path state (DESIGN.md §11): memoised forward passes of θ
        # over I', and an incrementally maintained per-class index over
        # the accumulated S_c.  Both are derived state — never
        # checkpointed, rebuilt on demand after a restore or refresh.
        self.feature_cache: Optional[FeatureCache] = (
            FeatureCache(self.config.feature_cache_entries)
            if self.config.feature_cache else None)
        self._clean_index: Optional[ClassFeatureIndex] = None
        self._clean_indexed: Set[int] = set()

    # ------------------------------------------------------------------
    # Step 0: model initialisation & probability estimation (§IV-B)
    # ------------------------------------------------------------------
    def initialize(self, inventory: LabeledDataset,
                   num_classes: Optional[int] = None) -> "ENLD":
        """Split the inventory, train the general model, estimate ``P̃``.

        Returns ``self`` for chaining.
        """
        watch = Stopwatch()
        cfg = self.config
        with watch, use_tracer(self.tracer), trace_span("setup"):
            self.num_classes = num_classes or inventory.num_classes
            candidates, train = train_test_split(
                inventory, test_fraction=cfg.inventory_train_fraction,
                rng=self._rng)
            # train_test_split names the halves train/test; relabel to
            # the paper's I_t / I_c.
            self.inventory_train = LabeledDataset(
                train.x, train.y, true_y=train.true_y, ids=train.ids,
                name=f"{inventory.name}/I_t")
            self.inventory_candidates = LabeledDataset(
                candidates.x, candidates.y, true_y=candidates.true_y,
                ids=candidates.ids, name=f"{inventory.name}/I_c")

            self.model = build_model(cfg.model_name, inventory.feature_dim,
                                     self.num_classes, rng=self._rng,
                                     **cfg.model_kwargs)
            with trace_span("train_general"):
                report = fit(self.model, self.inventory_train,
                             epochs=cfg.init_epochs, rng=self._rng,
                             lr=cfg.init_lr, batch_size=cfg.init_batch_size,
                             mixup_alpha=cfg.mixup_alpha)
            self.setup_train_samples = report.samples_processed
            with trace_span("estimate_probability"):
                self.cond_prob = estimate_conditional(
                    self.model, self.inventory_candidates,
                    num_classes=self.num_classes)
        self.setup_seconds = watch.seconds
        return self

    # ------------------------------------------------------------------
    # Steps 1–2: per-arrival detection (Alg. 1 lines 5–9)
    # ------------------------------------------------------------------
    def detect(self, dataset: LabeledDataset) -> DetectionResult:
        """Detect noisy labels in an arriving incremental dataset."""
        self._require_initialized()
        watch = Stopwatch()
        with watch, use_tracer(self.tracer), trace_span("detect"):
            result = self._detector.detect(
                self.model, dataset, self.inventory_candidates,
                self.cond_prob, self._rng, cache=self.feature_cache)
        result.process_seconds = watch.seconds
        self._clean_candidate_positions.update(
            int(p) for p in result.inventory_clean_positions)
        if self._clean_index is not None:
            self._extend_clean_index()
        self.results.append(result)
        return result

    # ------------------------------------------------------------------
    # Concurrent detection (repro.datalake.ingest)
    # ------------------------------------------------------------------
    def detection_snapshot(self) -> DetectionSnapshot:
        """By-reference capture of the inputs :meth:`detect` reads.

        Detection never mutates ``θ``, ``I_c`` or ``P̃`` in place (a
        model refresh *replaces* the references), so the snapshot is
        O(1) and stays valid across a concurrent hot-swap — workers
        holding it keep detecting under the epoch they were dispatched
        with while the owner decides whether that verdict is still
        current (see :mod:`repro.datalake.ingest`).
        """
        self._require_initialized()
        assert (self.model is not None
                and self.inventory_candidates is not None
                and self.cond_prob is not None)
        return self.model, self.inventory_candidates, self.cond_prob

    def detect_stateless(self, dataset: LabeledDataset,
                         rng: np.random.Generator,
                         snapshot: Optional[DetectionSnapshot] = None
                         ) -> DetectionResult:
        """Pure detection: same algorithm as :meth:`detect`, no state.

        The verdict is a function of ``(snapshot, dataset, rng)`` only —
        nothing on ``self`` is read besides the config-derived detector,
        and nothing is written, so concurrent calls from worker threads
        are safe and replay bit-identically for a fixed rng stream
        regardless of interleaving.  Feed the result back through
        :meth:`commit_detection` (owner thread) to take effect.
        """
        self._require_initialized()
        if snapshot is None:
            snapshot = self.detection_snapshot()
        model, candidates, cond_prob = snapshot
        watch = Stopwatch()
        with watch, use_tracer(self.tracer), trace_span("detect"):
            result = self._detector.detect(
                model, dataset, candidates, cond_prob, rng,
                cache=self.feature_cache
                if model is self.model else None)
        result.process_seconds = watch.seconds
        return result

    def commit_detection(self, result: DetectionResult) -> DetectionResult:
        """Fold a :meth:`detect_stateless` verdict into platform state.

        Owner-thread only: applies exactly the mutations
        :meth:`detect` performs after detecting — accumulate the voted
        clean positions into ``S_c``, extend the live clean index, and
        record the result.
        """
        self._require_initialized()
        self._clean_candidate_positions.update(
            int(p) for p in result.inventory_clean_positions)
        if self._clean_index is not None:
            self._extend_clean_index()
        self.results.append(result)
        return result

    # ------------------------------------------------------------------
    # Optional step: model update (Alg. 4)
    # ------------------------------------------------------------------
    @property
    def clean_positions(self) -> np.ndarray:
        """Sorted ``I_c`` row positions accumulated into ``S_c``."""
        self._require_initialized()
        return np.array(sorted(self._clean_candidate_positions), dtype=int)

    @property
    def clean_inventory(self) -> LabeledDataset:
        """Accumulated ``S_c`` as a dataset (rows of ``I_c``)."""
        self._require_initialized()
        return self.inventory_candidates.subset(self.clean_positions,
                                                name="S_c")

    def update_model(self, epochs: Optional[int] = None) -> "ENLD":
        """Refresh ``θ`` from the accumulated clean inventory set."""
        self._require_initialized()
        with use_tracer(self.tracer), trace_span("model_update"):
            outcome = model_update(
                self.model, self.clean_inventory,
                self.inventory_train, self.inventory_candidates,
                self.config, self._rng, epochs=epochs)
        self.install_update(outcome)
        return self

    def install_update(self, outcome: UpdateResult) -> None:
        """Atomically adopt a prepared :class:`UpdateResult`.

        This is the swap half of Alg. 4, separated from training so a
        background worker can produce the ``UpdateResult`` off-thread
        and the owner can install it in one step: ``θ``, ``P̃`` and the
        inventory halves are replaced together, then every piece of
        derived state keyed on the old model or the old ``I_c`` (clean
        positions, feature cache, ``S_c`` index) is dropped.
        """
        self._require_initialized()
        self.model = outcome.model
        self.cond_prob = outcome.cond_prob
        self.inventory_train = outcome.inventory_train
        self.inventory_candidates = outcome.inventory_candidates
        self.setup_train_samples += outcome.train_samples
        # Clean-position bookkeeping referred to the old I_c; reset it.
        self._clean_candidate_positions.clear()
        self._reset_derived_state()

    def snapshot_swap_state(self) -> SwapState:
        """Capture the references :meth:`install_update` replaces.

        The snapshot is by-reference (datasets and model are never
        mutated in place by detection or training), so taking one is
        O(1); pair with :meth:`restore_swap_state` to roll a failed
        swap back to exactly the pre-swap platform state.
        """
        return (self.model, self.cond_prob, self.inventory_train,
                self.inventory_candidates,
                set(self._clean_candidate_positions),
                self.setup_train_samples)

    def restore_swap_state(self, state: SwapState) -> None:
        """Roll back to a :meth:`snapshot_swap_state` capture."""
        (self.model, self.cond_prob, self.inventory_train,
         self.inventory_candidates, positions,
         self.setup_train_samples) = state
        self._clean_candidate_positions = set(positions)
        self._reset_derived_state()

    # ------------------------------------------------------------------
    # Clean-inventory queries (incremental index over S_c)
    # ------------------------------------------------------------------
    def clean_index(self) -> Optional[ClassFeatureIndex]:
        """Per-class index over ``S_c`` features under the current ``θ``.

        Built lazily; afterwards each :meth:`detect` *appends* its newly
        voted-clean candidates via :meth:`ClassFeatureIndex.add` instead
        of rebuilding.  A model refresh (Alg. 4) drops the index — the
        feature space changed — and the next call rebuilds it.  Returns
        ``None`` while ``S_c`` is empty.
        """
        self._require_initialized()
        if not self._clean_candidate_positions:
            return None
        if self._clean_index is None:
            positions = np.array(sorted(self._clean_candidate_positions),
                                 dtype=int)
            feats = self._candidate_features()
            assert self.inventory_candidates is not None
            self._clean_index = ClassFeatureIndex(
                feats[positions], self.inventory_candidates.y[positions],
                backend=self.config.effective_index_backend,
                source_indices=positions)
            self._clean_indexed = set(int(p) for p in positions)
        return self._clean_index

    def nearest_clean(self, feature: np.ndarray, label: int, k: int = 1
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """``k`` nearest accumulated-clean samples of class ``label``.

        ``feature`` is a raw sample (any shape); it is flattened and
        embedded with the current ``θ`` before querying.  Returns
        ``(distances, candidate_positions)`` — positions index rows of
        ``I_c``.  Empty arrays when ``S_c`` has no such class yet.
        """
        index = self.clean_index()
        if index is None:
            return np.empty(0), np.empty(0, dtype=int)
        assert self.model is not None
        x = np.asarray(feature, dtype=np.float64).reshape(1, -1)
        embedded = self.model.predict_view(x)[1][0]
        return index.query(embedded, int(label), k)

    def _extend_clean_index(self) -> None:
        """Append newly voted-clean candidates to the live ``S_c`` index."""
        assert self._clean_index is not None
        assert self.inventory_candidates is not None
        new = sorted(self._clean_candidate_positions - self._clean_indexed)
        if not new:
            return
        positions = np.array(new, dtype=int)
        feats = self._candidate_features()
        self._clean_index.add(
            feats[positions], self.inventory_candidates.y[positions],
            source_indices=positions)
        self._clean_indexed.update(new)

    def _candidate_features(self) -> np.ndarray:
        """``M̂(I_c, θ)``, via the feature cache when enabled."""
        assert self.model is not None and self.inventory_candidates is not None
        x = self.inventory_candidates.flat_x()
        if self.feature_cache is not None:
            return self.feature_cache.view(self.model, x)[1]
        return self.model.predict_view(x)[1]

    def _reset_derived_state(self) -> None:
        """Drop caches/indexes keyed on the previous ``θ`` or ``I_c``."""
        if self.feature_cache is not None:
            self.feature_cache.invalidate()
        self._clean_index = None
        self._clean_indexed = set()

    # ------------------------------------------------------------------
    # Crash-safe state export / import (platform checkpointing)
    # ------------------------------------------------------------------
    def reseed(self, seed: int) -> None:
        """Replace the detection RNG (degradation retries re-roll it)."""
        self._rng = np.random.default_rng(seed)

    def state_dict(self) -> dict:
        """JSON-ready snapshot of all mutable ENLD state except ``θ``.

        Model weights are deliberately excluded — they are arrays and
        belong in an ``nn.serialize`` checkpoint next to this state.
        The inventory halves are stored *by id* (the payloads live in
        the lake); :meth:`load_state` rebuilds the row subsets from the
        inventory handed back at resume time.
        """
        self._require_initialized()
        return {
            "num_classes": int(self.num_classes),
            "setup_seconds": float(self.setup_seconds),
            "setup_train_samples": int(self.setup_train_samples),
            "inventory_train_ids": [int(i)
                                    for i in self.inventory_train.ids],
            "inventory_candidate_ids": [
                int(i) for i in self.inventory_candidates.ids],
            "cond_prob": self.cond_prob.tolist(),
            "clean_candidate_positions": sorted(
                self._clean_candidate_positions),
            "rng_state": self._rng.bit_generator.state,
        }

    def load_state(self, state: dict,
                   inventory: LabeledDataset) -> "ENLD":
        """Reconstruct the state captured by :meth:`state_dict`.

        ``inventory`` must be the same inventory dataset (same ids) the
        exporting platform was built on; the general model is rebuilt
        with the configured architecture and zero-initialised — load
        its weights from the sibling checkpoint afterwards.  Returns
        ``self`` for chaining.
        """
        position_of = {int(i): p for p, i in enumerate(inventory.ids)}
        try:
            train_pos = [position_of[i]
                         for i in state["inventory_train_ids"]]
            cand_pos = [position_of[i]
                        for i in state["inventory_candidate_ids"]]
        except KeyError as exc:
            raise ValueError(
                f"inventory id {exc.args[0]} from the checkpoint is not "
                f"present in the provided inventory "
                f"{inventory.name!r}") from None
        self.num_classes = int(state["num_classes"])
        self.setup_seconds = float(state["setup_seconds"])
        self.setup_train_samples = int(state["setup_train_samples"])
        self.inventory_train = inventory.subset(
            np.asarray(train_pos, dtype=int),
            name=f"{inventory.name}/I_t")
        self.inventory_candidates = inventory.subset(
            np.asarray(cand_pos, dtype=int),
            name=f"{inventory.name}/I_c")
        self.cond_prob = np.asarray(state["cond_prob"], dtype=float)
        self._clean_candidate_positions = set(
            int(p) for p in state["clean_candidate_positions"])
        self.model = build_model(
            self.config.model_name, inventory.feature_dim,
            self.num_classes, rng=self._rng, **self.config.model_kwargs)
        self._rng = np.random.default_rng(self.config.seed)
        self._rng.bit_generator.state = state["rng_state"]
        self._reset_derived_state()
        return self

    # ------------------------------------------------------------------
    def _require_initialized(self) -> None:
        if self.model is None:
            raise NotInitializedError(
                "call ENLD.initialize(inventory) before detect()")
