"""High-quality and ambiguous sample identification (paper Definition 1).

- *Ambiguous* samples of an incremental dataset ``D``: observed label
  disagrees with the model's prediction, ``argmax M(x, θ) ≠ ỹ``.
- *High-quality* samples of the inventory candidates ``I_c``: observed
  label agrees with the prediction, ``argmax M(x, θ) = ỹ``; optionally
  refined by the confidence filter of §IV-E (keep only samples whose
  confidence is at least the per-class average).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn.data import LabeledDataset
from ..nn.featurecache import FeatureCache
from ..nn.models import Classifier
from ..noise.injector import MISSING_LABEL


@dataclass(frozen=True)
class ModelView:
    """Cached model outputs over a dataset.

    ``probs`` is ``M(x, θ)`` (softmax confidences), ``features`` is
    ``M̂(x, θ)`` (penultimate representation).
    """

    probs: np.ndarray
    features: np.ndarray

    def __post_init__(self) -> None:
        if len(self.probs) != len(self.features):
            raise ValueError("probs and features must align")

    @property
    def predictions(self) -> np.ndarray:
        return self.probs.argmax(axis=1)

    @property
    def confidences(self) -> np.ndarray:
        """Confidence of the predicted class per sample."""
        return self.probs.max(axis=1)

    def __len__(self) -> int:
        return len(self.probs)


def compute_view(model: Classifier, dataset: LabeledDataset,
                 batch_size: int = 256,
                 cache: Optional[FeatureCache] = None) -> ModelView:
    """Evaluate ``M`` and ``M̂`` for every sample of ``dataset``.

    Both views come from one fused forward pass
    (:meth:`Classifier.predict_view`); with a :class:`FeatureCache`,
    repeated evaluations of the same data under the same weights skip
    the forward pass entirely.  Outputs are bit-identical either way.
    """
    x = dataset.flat_x()
    if cache is not None:
        probs, features = cache.view(model, x, batch_size=batch_size)
    else:
        probs, features = model.predict_view(x, batch_size=batch_size)
    return ModelView(probs=probs, features=features)


def ambiguous_mask(dataset: LabeledDataset, view: ModelView) -> np.ndarray:
    """Boolean mask of ambiguous samples (prediction ≠ observed label).

    Samples with missing labels are never ambiguous — they carry no
    observed label to disagree with (they are handled by the
    pseudo-labelling path of §V-H instead).
    """
    _check_alignment(dataset, view)
    labeled = dataset.y != MISSING_LABEL
    return (view.predictions != dataset.y) & labeled


def high_quality_mask(dataset: LabeledDataset, view: ModelView,
                      confidence_filter: bool = True) -> np.ndarray:
    """Boolean mask of high-quality samples (prediction = observed label).

    With ``confidence_filter`` (§IV-E), a sample predicted as class
    ``i`` additionally needs confidence at least the average confidence
    of all samples predicted as ``i``.
    """
    _check_alignment(dataset, view)
    labeled = dataset.y != MISSING_LABEL
    agree = (view.predictions == dataset.y) & labeled
    if not confidence_filter:
        return agree
    preds = view.predictions
    conf = view.confidences
    keep = agree.copy()
    for cls in np.unique(preds):
        cls_mask = preds == cls
        avg = conf[cls_mask].mean()
        keep &= ~cls_mask | (conf >= avg)
    return keep


def _check_alignment(dataset: LabeledDataset, view: ModelView) -> None:
    if len(dataset) != len(view):
        raise ValueError(
            f"dataset has {len(dataset)} rows but view has {len(view)}")
