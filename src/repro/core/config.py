"""Configuration for the ENLD framework.

Defaults follow the paper's experiment settings (§V-A6): contrastive
sample size ``k = 3``, step count ``s = 5``, warming-up epochs ``= 2``,
Mixup ``α = 0.2``, and dataset-dependent iteration counts ``t`` (5 for
EMNIST, 17 for CIFAR100/Tiny-ImageNet).

The ablation flags map one-to-one onto the paper's Fig. 14 variants:

- ``use_contrastive_sampling = False``  → ENLD-1 (random contrastive set)
- ``use_majority_voting = False``       → ENLD-2 (aggressive selection)
- ``merge_clean_into_contrastive = False`` → ENLD-3 (no ``C = C ∪ S``)
- ``use_probability_label = False``     → ENLD-4 (``j = i`` directly)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional


@dataclass(frozen=True)
class ENLDConfig:
    """All tunables of ENLD in one immutable record."""

    # -- contrastive sampling (Alg. 2) ----------------------------------
    contrastive_k: int = 3
    use_probability_label: bool = True    # False → ENLD-4
    use_kdtree: bool = True

    # -- hot path: index facade + feature caching (DESIGN.md §11) --------
    #: "auto" lets repro.index.facade pick the fastest exact backend per
    #: class; any concrete name ("kdtree", "balltree", "brute") pins it.
    #: All backends return identical neighbour sets, so this knob moves
    #: wall-clock only, never verdicts.
    index_backend: str = "auto"
    #: Memoise (probs, features) of the general model over the inventory
    #: candidates across arrivals, keyed on weight + data digests.
    feature_cache: bool = True
    #: LRU entry budget of the feature cache (0 disables storage).
    feature_cache_entries: int = 8

    # -- fine-grained detection (Alg. 3) ---------------------------------
    iterations: int = 5                   # t
    steps_per_iteration: int = 5          # s
    warmup_epochs: int = 2
    use_majority_voting: bool = True      # False → ENLD-2
    merge_clean_into_contrastive: bool = True  # False → ENLD-3
    use_contrastive_sampling: bool = True      # False → ENLD-1
    sampling_policy: str = "contrastive"  # see repro.core.policies

    # -- general model initialisation (§IV-B) ----------------------------
    init_epochs: int = 20
    init_lr: float = 0.05
    init_batch_size: int = 64
    mixup_alpha: Optional[float] = 0.2    # None disables Mixup

    # -- fine-tuning optimisation ----------------------------------------
    finetune_lr: float = 0.01
    finetune_batch_size: int = 32
    finetune_momentum: float = 0.9

    # -- model ------------------------------------------------------------
    model_name: str = "tinyresnet"
    model_kwargs: dict = field(default_factory=dict)

    # -- misc ---------------------------------------------------------------
    inventory_train_fraction: float = 0.5  # I_t vs I_c split
    high_quality_confidence_filter: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.contrastive_k < 1:
            raise ValueError("contrastive_k must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.steps_per_iteration < 1:
            raise ValueError("steps_per_iteration must be >= 1")
        if self.warmup_epochs < 0:
            raise ValueError("warmup_epochs must be >= 0")
        if not 0.0 < self.inventory_train_fraction < 1.0:
            raise ValueError("inventory_train_fraction must be in (0, 1)")
        if self.mixup_alpha is not None and self.mixup_alpha <= 0:
            raise ValueError("mixup_alpha must be positive or None")
        if self.index_backend not in ("auto", "kdtree", "balltree", "brute"):
            raise ValueError(
                f"index_backend must be 'auto', 'kdtree', 'balltree' or "
                f"'brute', got {self.index_backend!r}")
        if self.feature_cache_entries < 0:
            raise ValueError("feature_cache_entries must be non-negative")

    @property
    def majority_threshold(self) -> int:
        """Votes needed for clean selection: ``⌊s/2⌋ + 1`` (§IV-E)."""
        return self.steps_per_iteration // 2 + 1

    @property
    def effective_index_backend(self) -> str:
        """Backend handed to the index facade.

        The legacy ``use_kdtree=False`` switch (the paper's brute-force
        ablation) wins over ``index_backend`` so historical configs
        keep their meaning.
        """
        return self.index_backend if self.use_kdtree else "brute"

    def with_overrides(self, **kwargs: Any) -> "ENLDConfig":
        """Copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    def ablation(self, variant: str) -> "ENLDConfig":
        """The paper's Fig. 14 ablation variants by name."""
        variants = {
            "origin": {},
            "enld-1": {"use_contrastive_sampling": False},
            "enld-2": {"use_majority_voting": False},
            "enld-3": {"merge_clean_into_contrastive": False},
            "enld-4": {"use_probability_label": False},
        }
        try:
            overrides = variants[variant.lower()]
        except KeyError:
            raise KeyError(f"unknown ablation {variant!r}; "
                           f"available: {sorted(variants)}") from None
        return self.with_overrides(**overrides)
