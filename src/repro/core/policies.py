"""Sample-selection policies for fine-grained detection (paper §V-A5).

ENLD's default policy is contrastive sampling (Alg. 2).  The paper's
Fig. 10 study swaps it for active-learning-style alternatives with the
same sampling budget ``k·|A|``:

- ``random``   — uniform over the candidate pool;
- ``highest_confidence`` — most confident candidates (HC-ENLD);
- ``least_confidence``   — least confident candidates (LC-ENLD);
- ``entropy``  — highest predictive entropy (Entropy-ENLD);
- ``pseudo``   — most confident candidates with their observed labels
  replaced by the model's pseudo labels (Pseudo-ENLD).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..index.classindex import ClassFeatureIndex
from .contrastive import contrastive_sampling
from .samplesets import ModelView


@dataclass(frozen=True)
class SamplingRequest:
    """Everything a policy may look at when selecting samples.

    The candidate pool is ``I'`` — inventory candidates restricted to
    ``label(D)``.  Indices returned by policies refer to rows of this
    pool.
    """

    candidate_view: ModelView
    candidate_labels: np.ndarray
    hq_index: ClassFeatureIndex
    ambiguous_features: np.ndarray
    ambiguous_labels: np.ndarray
    cond_prob: np.ndarray
    k: int
    rng: np.random.Generator

    @property
    def budget(self) -> int:
        """Common sampling budget ``k · |A|``."""
        return self.k * max(len(self.ambiguous_labels), 1)


@dataclass(frozen=True)
class PolicySelection:
    """Indices into the candidate pool plus optional label overrides."""

    indices: np.ndarray
    label_overrides: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if (self.label_overrides is not None
                and len(self.label_overrides) != len(self.indices)):
            raise ValueError("label_overrides must align with indices")

    def __len__(self) -> int:
        return len(self.indices)


class SamplingPolicy(ABC):
    """Strategy interface for contrastive-set selection."""

    name: str = "abstract"

    @abstractmethod
    def select(self, request: SamplingRequest) -> PolicySelection:
        """Choose candidate-pool rows for the next fine-tuning round."""


class ContrastivePolicy(SamplingPolicy):
    """The paper's Algorithm 2 (default)."""

    name = "contrastive"

    def __init__(self, use_probability_label: bool = True) -> None:
        self.use_probability_label = use_probability_label

    def select(self, request: SamplingRequest) -> PolicySelection:
        sample = contrastive_sampling(
            request.ambiguous_features, request.ambiguous_labels,
            request.hq_index, request.cond_prob, request.k, request.rng,
            use_probability_label=self.use_probability_label)
        return PolicySelection(indices=sample.indices)


class RandomPolicy(SamplingPolicy):
    """Uniform selection from the candidate pool (Random-ENLD)."""

    name = "random"

    def select(self, request: SamplingRequest) -> PolicySelection:
        n = len(request.candidate_labels)
        if n == 0:
            return PolicySelection(indices=np.empty(0, dtype=int))
        idx = request.rng.choice(n, size=min(request.budget, n),
                                 replace=False)
        return PolicySelection(indices=np.sort(idx))


class _ScoreTopPolicy(SamplingPolicy):
    """Pick the budget-many candidates maximising a per-sample score."""

    def _scores(self, request: SamplingRequest) -> np.ndarray:
        raise NotImplementedError

    def select(self, request: SamplingRequest) -> PolicySelection:
        n = len(request.candidate_labels)
        if n == 0:
            return PolicySelection(indices=np.empty(0, dtype=int))
        scores = self._scores(request)
        take = min(request.budget, n)
        idx = np.argpartition(-scores, take - 1)[:take]
        return PolicySelection(indices=np.sort(idx))


class HighestConfidencePolicy(_ScoreTopPolicy):
    """Most confident candidates (HC-ENLD)."""

    name = "highest_confidence"

    def _scores(self, request: SamplingRequest) -> np.ndarray:
        return request.candidate_view.confidences


class LeastConfidencePolicy(_ScoreTopPolicy):
    """Least confident candidates (LC-ENLD)."""

    name = "least_confidence"

    def _scores(self, request: SamplingRequest) -> np.ndarray:
        return -request.candidate_view.confidences


class EntropyPolicy(_ScoreTopPolicy):
    """Highest predictive entropy (Entropy-ENLD)."""

    name = "entropy"

    def _scores(self, request: SamplingRequest) -> np.ndarray:
        p = np.clip(request.candidate_view.probs, 1e-12, 1.0)
        return -(p * np.log(p)).sum(axis=1)


class PseudoLabelPolicy(_ScoreTopPolicy):
    """HC selection with observed labels replaced by pseudo labels."""

    name = "pseudo"

    def _scores(self, request: SamplingRequest) -> np.ndarray:
        return request.candidate_view.confidences

    def select(self, request: SamplingRequest) -> PolicySelection:
        base = super().select(request)
        pseudo = request.candidate_view.predictions[base.indices]
        return PolicySelection(indices=base.indices, label_overrides=pseudo)


_POLICIES: Dict[str, Callable[[], SamplingPolicy]] = {
    "contrastive": ContrastivePolicy,
    "random": RandomPolicy,
    "highest_confidence": HighestConfidencePolicy,
    "least_confidence": LeastConfidencePolicy,
    "entropy": EntropyPolicy,
    "pseudo": PseudoLabelPolicy,
}


def available_policies() -> List[str]:
    """Names of all registered sampling policies."""
    return sorted(_POLICIES)


def build_policy(name: str, **kwargs: Any) -> SamplingPolicy:
    """Instantiate a policy by registry name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; "
                       f"available: {available_policies()}") from None
    return factory(**kwargs)
