"""``repro.core`` — the ENLD framework (the paper's contribution)."""

from .config import ENLDConfig
from .contrastive import (ContrastiveSample, contrastive_sampling,
                          expected_contrastive_distribution,
                          label_distribution, prob_class_absent)
from .detector import DetectionResult, FineGrainedDetector, IterationSnapshot
from .enld import ENLD, NotInitializedError
from .missing import (missing_label_report, missing_rows,
                      pseudo_label_accuracy, pseudo_label_f1)
from .policies import (ContrastivePolicy, EntropyPolicy,
                       HighestConfidencePolicy, LeastConfidencePolicy,
                       PolicySelection, PseudoLabelPolicy, RandomPolicy,
                       SamplingPolicy, SamplingRequest, available_policies,
                       build_policy)
from .probability import (conditional_from_joint, estimate_conditional,
                          estimate_joint_counts,
                          sample_probable_true_labels)
from .samplesets import (ModelView, ambiguous_mask, compute_view,
                         high_quality_mask)
from .scheduler import (AnyOf, CleanPoolGrowth, DetectionDegradation,
                        EveryNArrivals, UpdateScheduler)
from .update import UpdateResult, model_update

__all__ = [
    "ENLD", "ENLDConfig", "NotInitializedError",
    "FineGrainedDetector", "DetectionResult", "IterationSnapshot",
    "contrastive_sampling", "ContrastiveSample", "prob_class_absent",
    "expected_contrastive_distribution", "label_distribution",
    "estimate_joint_counts", "conditional_from_joint",
    "estimate_conditional", "sample_probable_true_labels",
    "ModelView", "compute_view", "ambiguous_mask", "high_quality_mask",
    "SamplingPolicy", "SamplingRequest", "PolicySelection",
    "ContrastivePolicy", "RandomPolicy", "HighestConfidencePolicy",
    "LeastConfidencePolicy", "EntropyPolicy", "PseudoLabelPolicy",
    "build_policy", "available_policies",
    "model_update", "UpdateResult",
    "UpdateScheduler", "EveryNArrivals", "CleanPoolGrowth",
    "DetectionDegradation", "AnyOf",
    "missing_rows", "pseudo_label_accuracy", "pseudo_label_f1",
    "missing_label_report",
]
