"""Model update (paper Algorithm 4, §IV-F).

After several detection tasks have accumulated clean inventory samples
``S_c``, the platform can refresh its general model: train ``θ^u`` on
``S_c``, swap the roles of ``I_t`` and ``I_c``, and re-estimate the
conditional mislabel probability on the new candidate half.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.data import LabeledDataset
from ..nn.models import Classifier
from ..nn.serialize import clone_module
from ..nn.train import fit
from .config import ENLDConfig
from .probability import estimate_conditional


@dataclass
class UpdateResult:
    """Everything produced by one model-update pass.

    The result is a pure value — :func:`model_update` never mutates its
    inputs — so it can be produced by a background worker and installed
    atomically later (see :mod:`repro.datalake.updater`).
    """

    model: Classifier
    cond_prob: np.ndarray
    inventory_train: LabeledDataset   # new I_t (old I_c)
    inventory_candidates: LabeledDataset  # new I_c (old I_t)
    train_samples: int
    # Resolved epoch budget actually trained (recorded in the catalog's
    # model-version entry); 0 only for hand-built results.
    epochs: int = 0


def model_update(model: Classifier, clean_inventory: LabeledDataset,
                 inventory_train: LabeledDataset,
                 inventory_candidates: LabeledDataset,
                 config: ENLDConfig, rng: np.random.Generator,
                 epochs: int | None = None,
                 lr: float | None = None) -> UpdateResult:
    """Run Algorithm 4.

    Parameters
    ----------
    clean_inventory:
        The accumulated ``S_c`` — inventory samples voted clean by the
        stringent criterion across detection tasks.
    epochs:
        Training epochs for the update; defaults to half the init
        budget (the update is a refinement, not a from-scratch train).
    lr:
        Learning rate for the update; defaults to the fine-tuning rate.
        ``S_c`` typically covers only the classes seen in processed
        arrivals, so the update must refine θ gently rather than
        retrain it — a large rate causes catastrophic forgetting of
        classes absent from ``S_c``.

    Returns
    -------
    UpdateResult
        With ``inventory_train``/``inventory_candidates`` swapped per
        Alg. 4 line 2 and ``cond_prob`` re-estimated on the new
        candidates (Alg. 4 line 3).
    """
    if len(clean_inventory) == 0:
        raise ValueError("model update requires a non-empty clean set S_c")
    epochs = epochs if epochs is not None else max(config.init_epochs // 2, 1)
    lr = lr if lr is not None else config.finetune_lr
    updated = clone_module(model)
    report = fit(updated, clean_inventory, epochs=epochs, rng=rng,
                 lr=lr, batch_size=config.init_batch_size,
                 mixup_alpha=config.mixup_alpha)
    # swap(I_t, I_c): the old training half becomes the candidate pool.
    new_train, new_candidates = inventory_candidates, inventory_train
    cond = estimate_conditional(updated, new_candidates,
                                num_classes=model.num_classes)
    return UpdateResult(model=updated, cond_prob=cond,
                        inventory_train=new_train,
                        inventory_candidates=new_candidates,
                        train_samples=report.samples_processed,
                        epochs=epochs)
