"""Model-update scheduling policies (platform extension).

The paper leaves *when* to run the Alg. 4 model update to the platform
("the system can choose to update the general model", §IV-F).  This
module provides concrete triggers a deployment can choose from:

- :class:`EveryNArrivals` — fixed cadence;
- :class:`CleanPoolGrowth` — update once enough stringently-voted clean
  inventory samples have accumulated (enough signal to retrain on);
- :class:`DetectionDegradation` — update when the fraction of samples
  flagged noisy drifts away from its running baseline, a symptom of the
  general model aging against the incoming distribution.

All schedulers share the same ``observe → should_update`` contract and
are composable via :class:`AnyOf`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, Iterable, List

from .detector import DetectionResult


class UpdateScheduler(ABC):
    """Decides, after each detection, whether to run the model update."""

    @abstractmethod
    def observe(self, result: DetectionResult) -> None:
        """Record the outcome of one detection task."""

    @abstractmethod
    def should_update(self) -> bool:
        """True when the platform should run Alg. 4 now."""

    def notify_updated(self) -> None:
        """Reset any state that the model update invalidates."""

    def notify_enqueued(self) -> None:
        """An async update job was enqueued on this scheduler's trigger.

        Hook for the asynchronous update service
        (:mod:`repro.datalake.updater`): the platform calls it when a
        firing enqueues a background job instead of updating inline.
        The default keeps the scheduler armed — :meth:`notify_updated`
        still resets it when the swap lands — so a failed job is
        naturally re-requested.  Policies that must not re-fire while a
        job is pending can override it.
        """

    # -- checkpointable state (platform crash/resume) -------------------
    def params(self) -> dict:
        """Constructor arguments, for rebuilding the scheduler."""
        return {}

    def state_dict(self) -> dict:
        """JSON-ready snapshot of the mutable scheduling state."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""


class EveryNArrivals(UpdateScheduler):
    """Fixed cadence: update after every ``n`` processed arrivals."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self._count = 0

    def observe(self, result: DetectionResult) -> None:
        self._count += 1

    def should_update(self) -> bool:
        return self._count >= self.n

    def notify_updated(self) -> None:
        self._count = 0

    def params(self) -> dict:
        return {"n": self.n}

    def state_dict(self) -> dict:
        return {"count": self._count}

    def load_state_dict(self, state: dict) -> None:
        self._count = int(state["count"])


class CleanPoolGrowth(UpdateScheduler):
    """Update once ≥ ``min_clean_samples`` clean inventory ids accrued.

    Counts the *stringently voted* inventory positions each detection
    contributes; duplicates across arrivals are counted once.
    """

    def __init__(self, min_clean_samples: int) -> None:
        if min_clean_samples < 1:
            raise ValueError("min_clean_samples must be >= 1")
        self.min_clean_samples = min_clean_samples
        self._positions: set = set()

    def observe(self, result: DetectionResult) -> None:
        self._positions.update(
            int(p) for p in result.inventory_clean_positions)

    def should_update(self) -> bool:
        return len(self._positions) >= self.min_clean_samples

    def notify_updated(self) -> None:
        self._positions.clear()

    def params(self) -> dict:
        return {"min_clean_samples": self.min_clean_samples}

    def state_dict(self) -> dict:
        return {"positions": sorted(self._positions)}

    def load_state_dict(self, state: dict) -> None:
        self._positions = set(int(p) for p in state["positions"])


class DetectionDegradation(UpdateScheduler):
    """Update when the flagged-noisy fraction drifts from its baseline.

    Keeps a window of recent flagged fractions; triggers when the last
    observation deviates from the window mean by more than ``tolerance``
    (absolute).  A drifting flag rate signals that the general model no
    longer matches the arriving data distribution.
    """

    def __init__(self, window: int = 5, tolerance: float = 0.15) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.window = window
        self.tolerance = tolerance
        self._history: Deque[float] = deque(maxlen=window)
        self._last: float | None = None

    def observe(self, result: DetectionResult) -> None:
        total = result.num_clean + result.num_noisy
        fraction = result.num_noisy / total if total else 0.0
        self._last = fraction
        self._history.append(fraction)

    def should_update(self) -> bool:
        if self._last is None or len(self._history) < self.window:
            return False
        baseline = (sum(self._history) - self._last) \
            / (len(self._history) - 1)
        return abs(self._last - baseline) > self.tolerance

    def notify_updated(self) -> None:
        self._history.clear()
        self._last = None

    def params(self) -> dict:
        return {"window": self.window, "tolerance": self.tolerance}

    def state_dict(self) -> dict:
        return {"history": list(self._history), "last": self._last}

    def load_state_dict(self, state: dict) -> None:
        self._history = deque(state["history"], maxlen=self.window)
        self._last = state["last"]


class AnyOf(UpdateScheduler):
    """Composite: update when any member scheduler says so."""

    def __init__(self, schedulers: Iterable[UpdateScheduler]) -> None:
        self.schedulers: List[UpdateScheduler] = list(schedulers)
        if not self.schedulers:
            raise ValueError("AnyOf needs at least one scheduler")

    def observe(self, result: DetectionResult) -> None:
        for scheduler in self.schedulers:
            scheduler.observe(result)

    def should_update(self) -> bool:
        return any(s.should_update() for s in self.schedulers)

    def notify_updated(self) -> None:
        for scheduler in self.schedulers:
            scheduler.notify_updated()

    def state_dict(self) -> dict:
        return {"members": [scheduler_to_state(s)
                            for s in self.schedulers]}

    def load_state_dict(self, state: dict) -> None:
        self.schedulers = [scheduler_from_state(m)
                           for m in state["members"]]


# ----------------------------------------------------------------------
# Checkpointable reconstruction (used by NoisyLabelPlatform.resume)
# ----------------------------------------------------------------------
_SCHEDULER_TYPES = {
    "EveryNArrivals": EveryNArrivals,
    "CleanPoolGrowth": CleanPoolGrowth,
    "DetectionDegradation": DetectionDegradation,
    "AnyOf": AnyOf,
}


def scheduler_to_state(scheduler: UpdateScheduler) -> dict:
    """Full reconstruction record: type + constructor params + state."""
    return {"type": type(scheduler).__name__,
            "params": scheduler.params(),
            "state": scheduler.state_dict()}


def scheduler_from_state(record: dict) -> UpdateScheduler:
    """Rebuild a scheduler saved by :func:`scheduler_to_state`."""
    try:
        cls = _SCHEDULER_TYPES[record["type"]]
    except KeyError:
        raise ValueError(
            f"unknown scheduler type {record['type']!r}; "
            f"known: {sorted(_SCHEDULER_TYPES)}") from None
    if cls is AnyOf:
        # Members carry their own params; construct then restore.
        scheduler = AnyOf([scheduler_from_state(m)
                           for m in record["state"]["members"]])
    else:
        scheduler = cls(**record["params"])
        scheduler.load_state_dict(record["state"])
    return scheduler
