"""Named dataset presets matching the paper's three benchmarks.

Each preset mirrors the class count of the paper's dataset and a
difficulty regime chosen so the general model lands in a comparable
base-accuracy band (easy → hard): EMNIST-like > CIFAR100-like >
Tiny-ImageNet-like.  Two scales are provided:

- ``scale="full"``  — larger sample counts for longer experiments;
- ``scale="bench"`` — the default for tests/benchmarks on CPU.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .synthetic import SyntheticSpec

_SCALES = {"bench": 1.0, "small": 0.5, "full": 3.0}


def _spc(base: int, scale: str) -> int:
    try:
        factor = _SCALES[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; "
                       f"available: {sorted(_SCALES)}") from None
    return max(int(round(base * factor)), 6)


def emnist_like(scale: str = "bench") -> SyntheticSpec:
    """26-class letters analog (paper: EMNIST letters, 28x28x1).

    Easy regime: low adjacent-class correlation and low pixel noise so a
    trained model reaches high accuracy, as on EMNIST.
    """
    return SyntheticSpec(
        num_classes=26,
        samples_per_class=_spc(90, scale),
        image_shape=(1, 16, 16),
        class_corr=0.25,
        noise_scale=0.45,
        style_rank=3,
        style_scale=0.25,
        name=f"emnist_like[{scale}]",
    )


def cifar100_like(scale: str = "bench") -> SyntheticSpec:
    """100-class analog (paper: CIFAR100, 32x32x3). Medium difficulty."""
    return SyntheticSpec(
        num_classes=100,
        samples_per_class=_spc(60, scale),
        image_shape=(3, 8, 8),
        class_corr=0.55,
        noise_scale=0.8,
        style_rank=4,
        style_scale=0.35,
        name=f"cifar100_like[{scale}]",
    )


def tiny_imagenet_like(scale: str = "bench") -> SyntheticSpec:
    """200-class analog (paper: Tiny-ImageNet, 64x64x3). Hard regime."""
    return SyntheticSpec(
        num_classes=200,
        samples_per_class=_spc(36, scale),
        image_shape=(3, 8, 8),
        class_corr=0.7,
        noise_scale=1.0,
        style_rank=4,
        style_scale=0.4,
        name=f"tiny_imagenet_like[{scale}]",
    )


def toy(num_classes: int = 6, samples_per_class: int = 40) -> SyntheticSpec:
    """A tiny easily separable dataset for unit tests and examples."""
    return SyntheticSpec(
        num_classes=num_classes,
        samples_per_class=samples_per_class,
        image_shape=(1, 6, 6),
        class_corr=0.1,
        noise_scale=0.3,
        style_rank=2,
        style_scale=0.2,
        name="toy",
    )


_PRESETS: Dict[str, Callable[..., SyntheticSpec]] = {
    "emnist_like": emnist_like,
    "cifar100_like": cifar100_like,
    "tiny_imagenet_like": tiny_imagenet_like,
    "toy": toy,
}


def available_presets() -> List[str]:
    """Names of all dataset presets."""
    return sorted(_PRESETS)


def get_preset(name: str, **kwargs) -> SyntheticSpec:
    """Look up a dataset preset by name."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; "
            f"available: {available_presets()}") from None
    return factory(**kwargs)
