"""Inventory / incremental data splits (paper §V-A1).

The paper randomly divides each dataset into inventory data ``I`` and an
incremental pool ``D`` at ratio 2:1, then shards ``D`` into unbalanced
incremental datasets covering a subset of classes each:

- EMNIST: 10 shards with 5–6 categories;
- CIFAR100: 20 shards with 10 categories;
- Tiny-ImageNet: 20 shards with 20 categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..nn.data import LabeledDataset


@dataclass(frozen=True)
class ShardPlan:
    """How to shard the incremental pool into arriving datasets."""

    num_shards: int
    classes_per_shard: int
    dirichlet_alpha: float = 0.6  # < 1 → unbalanced within-shard classes

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")
        if self.classes_per_shard < 1:
            raise ValueError("classes_per_shard must be positive")
        if self.dirichlet_alpha <= 0:
            raise ValueError("dirichlet_alpha must be positive")


def split_inventory_incremental(
        dataset: LabeledDataset, rng: np.random.Generator,
        inventory_fraction: float = 2.0 / 3.0
) -> Tuple[LabeledDataset, LabeledDataset]:
    """Random 2:1 split into inventory ``I`` and incremental pool ``D``."""
    if not 0.0 < inventory_fraction < 1.0:
        raise ValueError("inventory_fraction must be in (0, 1)")
    n = len(dataset)
    order = rng.permutation(n)
    cut = int(round(n * inventory_fraction))
    inv = dataset.subset(order[:cut], name=f"{dataset.name}/inventory")
    inc = dataset.subset(order[cut:], name=f"{dataset.name}/incremental")
    return inv, inc


def _assign_shard_classes(num_classes: int, plan: ShardPlan,
                          rng: np.random.Generator) -> List[np.ndarray]:
    """Pick the class subset of each shard.

    Every class is guaranteed to appear in at least one shard (so no
    incremental sample is orphaned); remaining slots are filled at
    random without within-shard repetition.
    """
    capacity = plan.num_shards * plan.classes_per_shard
    if capacity < num_classes:
        raise ValueError(
            f"{plan.num_shards} shards x {plan.classes_per_shard} classes "
            f"cannot cover {num_classes} classes")
    shard_classes: List[set] = [set() for _ in range(plan.num_shards)]
    # Round-robin the full class list over shards for coverage.
    perm = rng.permutation(num_classes)
    for i, cls in enumerate(perm):
        shard_classes[i % plan.num_shards].add(int(cls))
    # Fill the remaining slots randomly.
    for shard in shard_classes:
        pool = [c for c in range(num_classes) if c not in shard]
        need = plan.classes_per_shard - len(shard)
        if need > 0:
            extra = rng.choice(len(pool), size=min(need, len(pool)),
                               replace=False)
            shard.update(pool[e] for e in extra)
    return [np.array(sorted(s)) for s in shard_classes]


def make_incremental_shards(pool: LabeledDataset, plan: ShardPlan,
                            rng: np.random.Generator,
                            num_classes: Optional[int] = None
                            ) -> List[LabeledDataset]:
    """Shard the incremental pool into unbalanced arriving datasets.

    Each shard receives a subset of classes; within a class, samples are
    divided among the shards holding that class with Dirichlet-weighted
    (hence unbalanced) proportions.  Shard labels refer to *observed*
    labels so the procedure works on already-noisy pools as well.
    """
    n_classes = num_classes or int(pool.y.max()) + 1
    shard_classes = _assign_shard_classes(n_classes, plan, rng)
    shard_indices: List[list] = [[] for _ in range(plan.num_shards)]

    holders: List[List[int]] = [[] for _ in range(n_classes)]
    for shard_id, classes in enumerate(shard_classes):
        for cls in classes:
            holders[cls].append(shard_id)

    for cls in range(n_classes):
        cls_idx = np.nonzero(pool.y == cls)[0]
        if len(cls_idx) == 0:
            continue
        cls_idx = rng.permutation(cls_idx)
        owners = holders[cls]
        if not owners:
            raise AssertionError(f"class {cls} not covered by any shard")
        if len(owners) == 1:
            shard_indices[owners[0]].extend(cls_idx.tolist())
            continue
        weights = rng.dirichlet(np.full(len(owners), plan.dirichlet_alpha))
        counts = np.floor(weights * len(cls_idx)).astype(int)
        remainder = len(cls_idx) - counts.sum()
        for j in rng.choice(len(owners), size=remainder, replace=True):
            counts[j] += 1
        start = 0
        for owner, count in zip(owners, counts):
            shard_indices[owner].extend(cls_idx[start:start + count].tolist())
            start += count

    shards = []
    for shard_id, idx in enumerate(shard_indices):
        idx_arr = np.array(sorted(idx), dtype=int)
        shards.append(pool.subset(
            idx_arr, name=f"{pool.name}/shard{shard_id:02d}"))
    return shards


def paper_shard_plan(dataset_preset: str) -> ShardPlan:
    """The paper's shard plan for each benchmark (§V-A1)."""
    plans = {
        "emnist_like": ShardPlan(num_shards=10, classes_per_shard=6),
        "cifar100_like": ShardPlan(num_shards=20, classes_per_shard=10),
        "tiny_imagenet_like": ShardPlan(num_shards=20, classes_per_shard=20),
        "toy": ShardPlan(num_shards=3, classes_per_shard=3),
    }
    try:
        return plans[dataset_preset]
    except KeyError:
        raise KeyError(f"no shard plan for preset {dataset_preset!r}; "
                       f"available: {sorted(plans)}") from None
