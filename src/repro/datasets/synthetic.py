"""Procedural prototype-based image datasets.

Since the reproduction environment has no network access, the paper's
public datasets (EMNIST, CIFAR100, Tiny-ImageNet) are replaced by
synthetic datasets with matched class counts and controllable
difficulty (see DESIGN.md, substitution table).

Generation model
----------------
Each class ``i`` owns a smooth prototype image ``p_i``.  Prototypes are
produced by a correlated random walk through prototype space::

    p_0 = smooth(g_0)
    p_i = corr * p_{i-1} + sqrt(1 - corr^2) * smooth(g_i)

so *adjacent classes are similar*.  This mirrors the semantic
confusability that pair-asymmetric label noise (the paper's noise
model, §V-A2) exploits: class ``i`` is flipped to ``i+1``, its most
similar neighbour, making the detection problem realistically hard.

A sample of class ``i`` is::

    x = a * p_i + B_i @ z + sigma * eps

with amplitude jitter ``a ~ N(1, amp_var)``, a low-rank within-class
style term ``B_i z`` (class-specific directions, ``z ~ N(0, I_r)``) and
white pixel noise.  ``corr`` and ``sigma`` control task difficulty:
EMNIST-like presets use low correlation and low noise (high base
accuracy), Tiny-ImageNet-like presets use high correlation and noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from ..nn.data import LabeledDataset


@dataclass(frozen=True)
class SyntheticSpec:
    """Full parameterisation of a synthetic dataset.

    Attributes
    ----------
    num_classes:
        Number of classes ``L``.
    samples_per_class:
        Class-balanced sample count before any split.
    image_shape:
        ``(C, H, W)`` of the generated images.
    class_corr:
        Adjacent-class prototype correlation in [0, 1); higher = harder.
    noise_scale:
        White-noise sigma; higher = harder.
    style_rank:
        Rank of the within-class style subspace.
    style_scale:
        Magnitude of the style term.
    amp_var:
        Variance of the multiplicative amplitude jitter.
    smoothness:
        Gaussian-blur sigma applied to prototype noise fields.
    name:
        Dataset name recorded on the resulting ``LabeledDataset``.
    """

    num_classes: int
    samples_per_class: int
    image_shape: Tuple[int, int, int] = (1, 16, 16)
    class_corr: float = 0.3
    noise_scale: float = 0.6
    style_rank: int = 4
    style_scale: float = 0.35
    amp_var: float = 0.05
    smoothness: float = 2.0
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.samples_per_class < 1:
            raise ValueError("samples_per_class must be positive")
        if not 0.0 <= self.class_corr < 1.0:
            raise ValueError("class_corr must be in [0, 1)")
        if self.noise_scale < 0:
            raise ValueError("noise_scale must be non-negative")

    @property
    def feature_dim(self) -> int:
        c, h, w = self.image_shape
        return c * h * w

    @property
    def total_samples(self) -> int:
        return self.num_classes * self.samples_per_class


def _smooth_field(rng: np.random.Generator, shape: Tuple[int, int, int],
                  sigma: float) -> np.ndarray:
    """A unit-norm smooth random image of shape (C, H, W)."""
    field = rng.normal(size=shape)
    if sigma > 0:
        field = np.stack(
            [ndimage.gaussian_filter(ch, sigma=sigma) for ch in field])
    norm = np.linalg.norm(field)
    return field / (norm + 1e-12)


def make_prototypes(spec: SyntheticSpec,
                    rng: np.random.Generator) -> np.ndarray:
    """Correlated-walk class prototypes, shape (L, C, H, W), unit norm."""
    protos = np.empty((spec.num_classes, *spec.image_shape))
    current = _smooth_field(rng, spec.image_shape, spec.smoothness)
    protos[0] = current
    mix = np.sqrt(max(1.0 - spec.class_corr ** 2, 0.0))
    for i in range(1, spec.num_classes):
        fresh = _smooth_field(rng, spec.image_shape, spec.smoothness)
        current = spec.class_corr * current + mix * fresh
        current = current / (np.linalg.norm(current) + 1e-12)
        protos[i] = current
    return protos


def generate(spec: SyntheticSpec, seed: int = 0,
             scale: float = 8.0) -> LabeledDataset:
    """Generate a class-balanced dataset from ``spec``.

    Parameters
    ----------
    seed:
        Seeds both the prototypes and the samples; the same seed always
        yields the same dataset.
    scale:
        Global signal amplitude applied to prototypes, so the white
        noise is measured relative to a fixed signal strength.

    Returns
    -------
    LabeledDataset
        ``x`` has shape ``(L * samples_per_class, F)`` (flattened),
        ``y == true_y`` (clean labels; apply ``repro.noise`` to corrupt).
    """
    rng = np.random.default_rng(seed)
    protos = make_prototypes(spec, rng).reshape(spec.num_classes, -1) * scale
    dim = spec.feature_dim
    n_total = spec.total_samples

    # Per-class low-rank style directions.
    styles = rng.normal(size=(spec.num_classes, spec.style_rank, dim))
    styles /= np.linalg.norm(styles, axis=2, keepdims=True) + 1e-12

    x = np.empty((n_total, dim))
    y = np.repeat(np.arange(spec.num_classes), spec.samples_per_class)
    for cls in range(spec.num_classes):
        lo = cls * spec.samples_per_class
        hi = lo + spec.samples_per_class
        n = spec.samples_per_class
        amp = rng.normal(1.0, np.sqrt(spec.amp_var), size=(n, 1))
        z = rng.normal(size=(n, spec.style_rank))
        style = (z @ styles[cls]) * spec.style_scale * scale
        # White-noise sigma is normalised by sqrt(dim) so that
        # ``noise_scale`` measures the noise *vector norm* relative to
        # the prototype norm (= scale), independent of image size.
        sigma = spec.noise_scale * scale / np.sqrt(dim)
        noise = rng.normal(scale=sigma, size=(n, dim))
        x[lo:hi] = amp * protos[cls] + style + noise

    order = rng.permutation(n_total)
    return LabeledDataset(x=x[order], y=y[order], true_y=y[order].copy(),
                          name=spec.name)


def generate_images(spec: SyntheticSpec, seed: int = 0,
                    scale: float = 8.0) -> LabeledDataset:
    """Like :func:`generate` but keeps the NCHW image shape in ``x``."""
    flat = generate(spec, seed=seed, scale=scale)
    imgs = flat.x.reshape(len(flat), *spec.image_shape)
    return LabeledDataset(x=imgs, y=flat.y, true_y=flat.true_y,
                          ids=flat.ids, name=spec.name)
