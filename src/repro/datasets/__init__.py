"""``repro.datasets`` — synthetic benchmark datasets and paper splits."""

from .io import from_arrays, load_csv, load_npz, save_csv, save_npz
from .registry import (available_presets, cifar100_like, emnist_like,
                       get_preset, tiny_imagenet_like, toy)
from .splits import (ShardPlan, make_incremental_shards, paper_shard_plan,
                     split_inventory_incremental)
from .synthetic import SyntheticSpec, generate, generate_images, make_prototypes

__all__ = [
    "SyntheticSpec", "generate", "generate_images", "make_prototypes",
    "emnist_like", "cifar100_like", "tiny_imagenet_like", "toy",
    "get_preset", "available_presets",
    "ShardPlan", "split_inventory_incremental", "make_incremental_shards",
    "paper_shard_plan",
    "from_arrays", "save_npz", "load_npz", "save_csv", "load_csv",
]
