"""Dataset IO: bring your own data, persist generated data.

Adopters screening real lake data need to get it into
:class:`~repro.nn.data.LabeledDataset` form and back out.  Three
formats are supported without extra dependencies:

- ``from_arrays`` — zero-copy wrapper over in-memory numpy arrays;
- ``.npz`` — lossless save/load including hidden true labels and ids;
- ``.csv`` — interchange with spreadsheet/SQL exports (one feature per
  column, a ``label`` column, optional ``true_label`` / ``id`` columns).
"""

from __future__ import annotations

import csv
import os
from typing import Optional

import numpy as np

from ..nn.data import LabeledDataset

_NPZ_VERSION = 1


def from_arrays(x: np.ndarray, y: np.ndarray,
                true_y: Optional[np.ndarray] = None,
                ids: Optional[np.ndarray] = None,
                name: str = "dataset") -> LabeledDataset:
    """Wrap in-memory arrays as a :class:`LabeledDataset` (validated)."""
    return LabeledDataset(np.asarray(x), np.asarray(y),
                          true_y=None if true_y is None
                          else np.asarray(true_y),
                          ids=None if ids is None else np.asarray(ids),
                          name=name)


def save_npz(dataset: LabeledDataset, path: str) -> None:
    """Persist a dataset losslessly to an ``.npz`` archive."""
    payload = {
        "__version__": np.array([_NPZ_VERSION]),
        "x": dataset.x,
        "y": dataset.y,
        "ids": dataset.ids,
        "name": np.array([dataset.name]),
    }
    if dataset.true_y is not None:
        payload["true_y"] = dataset.true_y
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, **payload)


def load_npz(path: str) -> LabeledDataset:
    """Load a dataset saved by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as archive:
        if "__version__" not in archive.files:
            raise ValueError(f"{path} is not a repro dataset archive")
        return LabeledDataset(
            x=archive["x"],
            y=archive["y"],
            true_y=archive["true_y"] if "true_y" in archive.files else None,
            ids=archive["ids"],
            name=str(archive["name"][0]),
        )


def save_csv(dataset: LabeledDataset, path: str) -> None:
    """Write a dataset as CSV (features flattened to ``f0..fN``)."""
    x = dataset.flat_x()
    headers = [f"f{i}" for i in range(x.shape[1])] + ["label", "id"]
    if dataset.true_y is not None:
        headers.append("true_label")
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for i in range(len(dataset)):
            row = list(x[i]) + [int(dataset.y[i]), int(dataset.ids[i])]
            if dataset.true_y is not None:
                row.append(int(dataset.true_y[i]))
            writer.writerow(row)


def load_csv(path: str, name: Optional[str] = None) -> LabeledDataset:
    """Load a CSV written by :func:`save_csv` (or shaped like it).

    Requires ``f*`` feature columns and a ``label`` column; ``id`` and
    ``true_label`` columns are optional.
    """
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        headers = next(reader)
        rows = list(reader)
    if "label" not in headers:
        raise ValueError(f"{path} has no 'label' column")
    feature_cols = [i for i, h in enumerate(headers) if h.startswith("f")
                    and h[1:].isdigit()]
    if not feature_cols:
        raise ValueError(f"{path} has no feature columns (f0, f1, ...)")
    label_col = headers.index("label")
    id_col = headers.index("id") if "id" in headers else None
    true_col = headers.index("true_label") if "true_label" in headers \
        else None

    n = len(rows)
    x = np.empty((n, len(feature_cols)))
    y = np.empty(n, dtype=np.int64)
    ids = np.empty(n, dtype=np.int64) if id_col is not None else None
    true_y = np.empty(n, dtype=np.int64) if true_col is not None else None
    for r, row in enumerate(rows):
        for c, col in enumerate(feature_cols):
            x[r, c] = float(row[col])
        y[r] = int(row[label_col])
        if ids is not None:
            ids[r] = int(row[id_col])
        if true_y is not None:
            true_y[r] = int(row[true_col])
    return LabeledDataset(x, y, true_y=true_y, ids=ids,
                          name=name or os.path.basename(path))
