"""Loss-tracking baselines (paper §I / §II-A related work).

The paper contrasts ENLD against *training-based* detectors that watch
per-sample loss statistics over training (O2U-Net [11], INCV [12],
small-loss selection as in Co-teaching [22]).  Two representatives are
implemented here as extension baselines:

- :class:`O2UDetector` — train with a cyclic learning rate and rank
  samples by their *mean loss over the cycle*; samples whose loss stays
  high while the rate oscillates are memorised noise (O2U-Net's core
  observation).
- :class:`SmallLossDetector` — the classic small-loss criterion: after
  a warm-up, treat the ``1 - η̂`` fraction of lowest-loss samples as
  clean, estimating ``η̂`` from the general model when not given.

Both train per arrival on the arriving dataset together with the
related inventory subset (the same fair-comparison protocol as
Topofilter), so they share the training-based cost regime.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.detector import DetectionResult
from ..nn.data import LabeledDataset
from ..nn.losses import cross_entropy
from ..nn.models import build_model
from ..nn.optim import SGD
from ..nn.tensor import Tensor
from ..nn.train import fit_epoch
from ..noise.injector import MISSING_LABEL
from ..obs import trace_span
from .base import NoisyLabelDetector


def per_sample_losses(model, dataset: LabeledDataset,
                      batch_size: int = 256) -> np.ndarray:
    """Cross-entropy of every sample under the current model."""
    model.eval()
    x = dataset.flat_x()
    out = np.empty(len(dataset))
    for start in range(0, len(dataset), batch_size):
        xb = Tensor(x[start:start + batch_size])
        yb = dataset.y[start:start + batch_size]
        losses = cross_entropy(model(xb), yb, reduction="none")
        out[start:start + len(yb)] = losses.data
    return out


class _TrainingBasedDetector(NoisyLabelDetector):
    """Shared setup for per-arrival training-based baselines."""

    def __init__(self, inventory: LabeledDataset, num_classes: int,
                 model_name: str = "tinyresnet",
                 model_kwargs: Optional[dict] = None,
                 lr: float = 0.05, batch_size: int = 64, seed: int = 0):
        super().__init__()
        self.inventory = inventory
        self.num_classes = num_classes
        self.model_name = model_name
        self.model_kwargs = model_kwargs or {}
        self.lr = lr
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)

    def _training_pool(self, dataset: LabeledDataset,
                       labeled: np.ndarray) -> LabeledDataset:
        labels_in_d = np.unique(dataset.y[labeled])
        related = self.inventory.mask(
            np.isin(self.inventory.y, labels_in_d), name="I_related")
        return related.concat(dataset.mask(labeled), name="train_pool")

    def _fresh_model(self, dataset: LabeledDataset):
        return build_model(self.model_name, dataset.feature_dim,
                           self.num_classes, rng=self._rng,
                           **self.model_kwargs)


class O2UDetector(_TrainingBasedDetector):
    """O2U-Net-style cyclic-rate loss tracking.

    Trains the model through ``cycles`` triangular learning-rate cycles
    of ``cycle_epochs`` epochs each, recording each arrival sample's
    loss after every epoch of the oscillation phase; the mean recorded
    loss ranks samples, and the top ``η̂`` fraction is flagged noisy.
    """

    name = "o2u"

    def __init__(self, inventory: LabeledDataset, num_classes: int,
                 cycle_epochs: int = 5, cycles: int = 2,
                 warmup_epochs: int = 5,
                 noise_rate_estimate: Optional[float] = None,
                 **kwargs):
        super().__init__(inventory, num_classes, **kwargs)
        if cycle_epochs < 1 or cycles < 1:
            raise ValueError("cycle_epochs and cycles must be >= 1")
        self.cycle_epochs = cycle_epochs
        self.cycles = cycles
        self.warmup_epochs = warmup_epochs
        self.noise_rate_estimate = noise_rate_estimate

    def _detect(self, dataset: LabeledDataset) -> DetectionResult:
        labeled = dataset.y != MISSING_LABEL
        pool = self._training_pool(dataset, labeled)
        model = self._fresh_model(dataset)
        optimizer = SGD(model.parameters(), lr=self.lr, momentum=0.9)
        train_samples = 0

        # Constant-rate warm-up.
        with trace_span("warmup"):
            for _ in range(self.warmup_epochs):
                _, n = fit_epoch(model, pool, optimizer, self._rng,
                                 batch_size=self.batch_size,
                                 num_classes=self.num_classes)
                train_samples += n
        # Estimate the noise rate from the early-learning model, before
        # the cyclic phase lets it memorise the noisy labels (after
        # memorisation the disagreement rate collapses toward zero).
        eta = self._estimate_noise_rate(model, dataset.mask(labeled))

        # Cyclic phase: triangular rate from lr down to lr/10 and back,
        # tracking the arriving samples' losses after each epoch.
        d_labeled = dataset.mask(labeled)
        loss_sum = np.zeros(len(d_labeled))
        steps = 0
        with trace_span("cyclic_train"):
            for _ in range(self.cycles):
                for epoch in range(self.cycle_epochs):
                    phase = epoch / max(self.cycle_epochs - 1, 1)
                    optimizer.lr = self.lr * (1.0 - 0.9 * phase)
                    _, n = fit_epoch(model, pool, optimizer, self._rng,
                                     batch_size=self.batch_size,
                                     num_classes=self.num_classes)
                    train_samples += n
                    loss_sum += per_sample_losses(model, d_labeled)
                    steps += 1
        mean_loss = loss_sum / max(steps, 1)

        n_flag = int(round(eta * len(d_labeled)))
        noisy_local = np.zeros(len(d_labeled), dtype=bool)
        if n_flag > 0:
            order = np.argsort(-mean_loss, kind="stable")
            noisy_local[order[:n_flag]] = True
        noisy_mask = np.zeros(len(dataset), dtype=bool)
        noisy_mask[np.nonzero(labeled)[0][noisy_local]] = True
        return self._result_from_noisy_mask(dataset, noisy_mask,
                                            train_samples=train_samples)

    def _estimate_noise_rate(self, model, d_labeled: LabeledDataset) -> float:
        if self.noise_rate_estimate is not None:
            return self.noise_rate_estimate
        # Disagreement rate of the just-trained model, floor/cap guarded.
        preds = model.predict(d_labeled.flat_x())
        return float(np.clip((preds != d_labeled.y).mean(), 0.02, 0.6))


class SmallLossDetector(_TrainingBasedDetector):
    """Small-loss selection (Co-teaching-style single-network variant).

    After ``train_epochs`` of standard training, flags the highest-loss
    ``η̂`` fraction of arriving samples as noisy.
    """

    name = "small_loss"

    def _early_eta(self, model, d_labeled: LabeledDataset) -> float:
        preds = model.predict(d_labeled.flat_x())
        return float(np.clip((preds != d_labeled.y).mean(), 0.02, 0.6))

    def __init__(self, inventory: LabeledDataset, num_classes: int,
                 train_epochs: int = 10,
                 noise_rate_estimate: Optional[float] = None,
                 **kwargs):
        super().__init__(inventory, num_classes, **kwargs)
        if train_epochs < 1:
            raise ValueError("train_epochs must be >= 1")
        self.train_epochs = train_epochs
        self.noise_rate_estimate = noise_rate_estimate

    def _detect(self, dataset: LabeledDataset) -> DetectionResult:
        labeled = dataset.y != MISSING_LABEL
        pool = self._training_pool(dataset, labeled)
        model = self._fresh_model(dataset)
        optimizer = SGD(model.parameters(), lr=self.lr, momentum=0.9)
        train_samples = 0
        d_labeled = dataset.mask(labeled)
        eta = None
        # Estimate η from the early-learning model (one third into
        # training) so memorisation cannot collapse the estimate.
        early_cut = max(self.train_epochs // 3, 1)
        with trace_span("train"):
            for epoch in range(self.train_epochs):
                _, n = fit_epoch(model, pool, optimizer, self._rng,
                                 batch_size=self.batch_size,
                                 num_classes=self.num_classes)
                train_samples += n
                if epoch + 1 == early_cut:
                    eta = self._early_eta(model, d_labeled)

        losses = per_sample_losses(model, d_labeled)
        if self.noise_rate_estimate is not None:
            eta = self.noise_rate_estimate
        elif eta is None:
            eta = self._early_eta(model, d_labeled)
        n_flag = int(round(eta * len(d_labeled)))
        noisy_local = np.zeros(len(d_labeled), dtype=bool)
        if n_flag > 0:
            order = np.argsort(-losses, kind="stable")
            noisy_local[order[:n_flag]] = True
        noisy_mask = np.zeros(len(dataset), dtype=bool)
        noisy_mask[np.nonzero(labeled)[0][noisy_local]] = True
        return self._result_from_noisy_mask(dataset, noisy_mask,
                                            train_samples=train_samples)
