"""Confident Learning baselines (Northcutt et al., 2021; paper §V-A4).

Confident learning estimates the joint distribution of observed and
true labels from calibrated model confidences, then prunes the samples
most likely mislabelled.  The paper reports the two best-scoring CL
variants (CL-1, CL-2); following the reference implementation these are:

- **prune by class (CL-1)**: for each observed class ``i``, remove the
  ``Σ_{j≠i} C[i,j]`` samples of class ``i`` with the lowest
  self-confidence ``p(ỹ=i | x)``;
- **prune by noise rate (CL-2)**: for each off-diagonal cell ``(i, j)``
  remove the ``C[i,j]`` samples of observed class ``i`` with the
  largest margin ``p(j|x) − p(i|x)``.

Both use the *confident joint* ``C[i, j] = |{x : ỹ = i, p(j|x) ≥ t_j}|``
with per-class thresholds ``t_j`` equal to the mean confidence of class
``j`` over samples observed as ``j``.  Per the paper's experiment
setup, thresholds are calibrated on ``I_c`` together with the arriving
dataset.
"""

from __future__ import annotations

import numpy as np

from ..core.detector import DetectionResult
from ..nn.data import LabeledDataset
from ..nn.models import Classifier
from ..noise.injector import MISSING_LABEL
from ..obs import trace_span
from .base import NoisyLabelDetector


def class_thresholds(probs: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Per-class expected self-confidence ``t_j = E[p(j|x) | ỹ = j]``.

    Classes with no observed samples get threshold ``+inf`` so they can
    never absorb confident counts.
    """
    thresholds = np.full(num_classes, np.inf)
    for cls in range(num_classes):
        mask = labels == cls
        if mask.any():
            thresholds[cls] = probs[mask, cls].mean()
    return thresholds


def confident_joint(probs: np.ndarray, labels: np.ndarray,
                    thresholds: np.ndarray) -> np.ndarray:
    """The confident joint ``C[i, j]`` over the given samples.

    A sample counts toward ``(ỹ, j*)`` where ``j*`` is the class of
    maximal confidence among classes whose confidence clears the class
    threshold; samples clearing no threshold are not counted.
    """
    num_classes = thresholds.shape[0]
    above = probs >= thresholds[None, :]
    masked = np.where(above, probs, -np.inf)
    best = masked.argmax(axis=1)
    counted = above.any(axis=1)
    joint = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(joint, (labels[counted], best[counted]), 1)
    return joint


class ConfidentLearningDetector(NoisyLabelDetector):
    """CL baseline over the pre-trained general model.

    Parameters
    ----------
    model:
        The shared general model ``θ``.
    calibration:
        The inventory candidate half ``I_c`` used (together with the
        arriving dataset) to calibrate thresholds.
    method:
        ``"prune_by_class"`` (CL-1) or ``"prune_by_noise_rate"`` (CL-2).
    """

    def __init__(self, model: Classifier, calibration: LabeledDataset,
                 method: str = "prune_by_class"):
        super().__init__()
        if method not in ("prune_by_class", "prune_by_noise_rate"):
            raise ValueError(f"unknown CL method {method!r}")
        self.model = model
        self.method = method
        self.name = ("cl_prune_by_class" if method == "prune_by_class"
                     else "cl_prune_by_noise_rate")
        self._cal_probs = model.predict_proba(calibration.flat_x())
        self._cal_labels = calibration.y

    def _detect(self, dataset: LabeledDataset) -> DetectionResult:
        labeled = dataset.y != MISSING_LABEL
        with trace_span("calibrate"):
            probs_d = self.model.predict_proba(dataset.flat_x())
            num_classes = probs_d.shape[1]

            # Calibrate thresholds on I_c ∪ D (paper §V-A4).
            all_probs = np.concatenate([self._cal_probs, probs_d[labeled]])
            all_labels = np.concatenate([self._cal_labels,
                                         dataset.y[labeled]])
            thresholds = class_thresholds(all_probs, all_labels,
                                          num_classes)

        # Confident joint restricted to the arriving dataset: the noise
        # counts to prune must describe D itself.
        with trace_span("prune"):
            d_probs = probs_d[labeled]
            d_labels = dataset.y[labeled]
            joint = confident_joint(d_probs, d_labels, thresholds)

            local_noisy = (self._prune_by_class(d_probs, d_labels, joint)
                           if self.method == "prune_by_class"
                           else self._prune_by_noise_rate(d_probs, d_labels,
                                                          joint))
        noisy_mask = np.zeros(len(dataset), dtype=bool)
        noisy_mask[np.nonzero(labeled)[0][local_noisy]] = True
        return self._result_from_noisy_mask(dataset, noisy_mask)

    @staticmethod
    def _prune_by_class(probs: np.ndarray, labels: np.ndarray,
                        joint: np.ndarray) -> np.ndarray:
        noisy = np.zeros(len(labels), dtype=bool)
        for cls in np.unique(labels):
            cls_rows = np.nonzero(labels == cls)[0]
            n_prune = int(joint[cls].sum() - joint[cls, cls])
            n_prune = min(n_prune, len(cls_rows))
            if n_prune <= 0:
                continue
            self_conf = probs[cls_rows, cls]
            worst = cls_rows[np.argsort(self_conf, kind="stable")[:n_prune]]
            noisy[worst] = True
        return noisy

    @staticmethod
    def _prune_by_noise_rate(probs: np.ndarray, labels: np.ndarray,
                             joint: np.ndarray) -> np.ndarray:
        noisy = np.zeros(len(labels), dtype=bool)
        num_classes = joint.shape[0]
        for i in np.unique(labels):
            cls_rows = np.nonzero(labels == i)[0]
            for j in range(num_classes):
                if j == i:
                    continue
                n_prune = min(int(joint[i, j]), len(cls_rows))
                if n_prune <= 0:
                    continue
                margin = probs[cls_rows, j] - probs[cls_rows, i]
                order = np.argsort(-margin, kind="stable")[:n_prune]
                noisy[cls_rows[order]] = True
        return noisy
