"""``repro.baselines`` — comparison detectors from the paper (§V-A4)."""

from .base import NoisyLabelDetector
from .confident_learning import (ConfidentLearningDetector, class_thresholds,
                                 confident_joint)
from .default import DefaultDetector
from .loss_tracking import O2UDetector, SmallLossDetector, per_sample_losses
from .topofilter import TopofilterDetector, knn_graph_components

__all__ = [
    "NoisyLabelDetector",
    "DefaultDetector",
    "ConfidentLearningDetector", "class_thresholds", "confident_joint",
    "TopofilterDetector", "knn_graph_components",
    "O2UDetector", "SmallLossDetector", "per_sample_losses",
]
