"""Common detector interface shared by ENLD and the baselines."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.detector import DetectionResult
from ..nn.data import LabeledDataset
from ..noise.injector import MISSING_LABEL
from ..obs import Stopwatch, trace_span


class NoisyLabelDetector(ABC):
    """A detector that partitions a dataset into clean and noisy parts.

    Subclasses implement :meth:`_detect`; the public :meth:`detect`
    wraps it with wall-clock timing so every method reports comparable
    *process time* (paper §V-A3).
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.setup_seconds: float = 0.0
        self.setup_train_samples: int = 0

    def detect(self, dataset: LabeledDataset) -> DetectionResult:
        """Detect noisy labels; returns a timed :class:`DetectionResult`."""
        watch = Stopwatch()
        with watch, trace_span("detect"), trace_span(self.name):
            result = self._detect(dataset)
        result.process_seconds = watch.seconds
        result.detector_name = self.name
        return result

    @abstractmethod
    def _detect(self, dataset: LabeledDataset) -> DetectionResult:
        """Implementation hook."""

    @staticmethod
    def _result_from_noisy_mask(dataset: LabeledDataset,
                                noisy_mask: np.ndarray,
                                train_samples: int = 0) -> DetectionResult:
        """Assemble a result given the noisy mask over labelled rows."""
        labeled = dataset.y != MISSING_LABEL
        noisy_mask = np.asarray(noisy_mask, dtype=bool) & labeled
        return DetectionResult(
            clean_mask=labeled & ~noisy_mask,
            noisy_mask=noisy_mask,
            inventory_clean_positions=np.empty(0, dtype=int),
            pseudo_labels=np.full(len(dataset), -1, dtype=int),
            train_samples=train_samples,
        )
