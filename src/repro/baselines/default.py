"""The Default baseline (paper §V-A4).

Uses the pre-trained general model directly: a sample is flagged noisy
when ``argmax M(x, θ) ≠ ỹ``.  Zero per-request training cost; accuracy
entirely dependent on the general model's generalisation.
"""

from __future__ import annotations

from ..core.detector import DetectionResult
from ..nn.data import LabeledDataset
from ..nn.models import Classifier
from ..obs import trace_span
from .base import NoisyLabelDetector


class DefaultDetector(NoisyLabelDetector):
    """Flag disagreements between the general model and observed labels."""

    name = "default"

    def __init__(self, model: Classifier):
        super().__init__()
        self.model = model

    def _detect(self, dataset: LabeledDataset) -> DetectionResult:
        with trace_span("predict"):
            preds = self.model.predict(dataset.flat_x())
        return self._result_from_noisy_mask(dataset, preds != dataset.y)
