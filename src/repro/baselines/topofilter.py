"""Topofilter baseline (Wu et al., NeurIPS 2020; paper §V-A4).

Topofilter trains a model, embeds the data in its latent feature space,
builds a k-NN graph per observed class and keeps the largest connected
component — samples outside it (including isolated points) are flagged
noisy.

Per the paper's fair-comparison protocol, for each arriving dataset the
detector trains on ``D`` together with the subset of inventory data
whose labels appear in ``label(D)``, making it a *training-based*
method whose per-request cost dominates ENLD's fine-tuning (this is the
source of the Fig. 8 speedup gap).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from ..core.detector import DetectionResult
from ..nn.data import LabeledDataset
from ..nn.models import build_model
from ..nn.train import fit
from ..noise.injector import MISSING_LABEL
from ..obs import trace_span
from .base import NoisyLabelDetector


def knn_graph_components(features: np.ndarray, k: int,
                         mutual: bool = True) -> np.ndarray:
    """Connected-component labels of the (mutual) k-NN graph.

    With ``mutual=True`` an edge requires each endpoint to be among the
    other's ``k`` nearest neighbours — the standard sparsification that
    keeps noise points from bridging into the clean cluster, matching
    Topofilter's intent of isolating outliers.  Returns an integer
    component id per point.
    """
    n = len(features)
    if n == 0:
        return np.empty(0, dtype=int)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if n > 1:
        diffs = features[:, None, :] - features[None, :, :]
        d2 = np.einsum("ijd,ijd->ij", diffs, diffs)
        np.fill_diagonal(d2, np.inf)
        kk = min(k, n - 1)
        neighbours = np.argpartition(d2, kk - 1, axis=1)[:, :kk]
        neighbour_sets = [set(map(int, row)) for row in neighbours]
        for i in range(n):
            for j in neighbour_sets[i]:
                if not mutual or i in neighbour_sets[j]:
                    graph.add_edge(i, j)
    labels = np.empty(n, dtype=int)
    for comp_id, comp in enumerate(nx.connected_components(graph)):
        for node in comp:
            labels[node] = comp_id
    return labels


class TopofilterDetector(NoisyLabelDetector):
    """Per-arrival training + per-class largest-connected-component filter.

    Parameters
    ----------
    inventory:
        The full inventory ``I`` (the method trains on its
        label-related subset per arrival).
    model_name / model_kwargs:
        Architecture trained per request.
    train_epochs:
        Per-request training budget (the method's dominant cost).
    knn_k:
        Neighbour count of the latent-space graphs.
    """

    name = "topofilter"

    def __init__(self, inventory: LabeledDataset, num_classes: int,
                 model_name: str = "tinyresnet",
                 model_kwargs: Optional[dict] = None,
                 train_epochs: int = 10, knn_k: int = 4,
                 mutual_knn: bool = True,
                 lr: float = 0.05, batch_size: int = 64,
                 mixup_alpha: Optional[float] = None,
                 seed: int = 0):
        super().__init__()
        self.inventory = inventory
        self.num_classes = num_classes
        self.model_name = model_name
        self.model_kwargs = model_kwargs or {}
        self.train_epochs = train_epochs
        self.knn_k = knn_k
        self.mutual_knn = mutual_knn
        self.lr = lr
        self.batch_size = batch_size
        self.mixup_alpha = mixup_alpha
        self._rng = np.random.default_rng(seed)

    def _detect(self, dataset: LabeledDataset) -> DetectionResult:
        labeled = dataset.y != MISSING_LABEL
        labels_in_d = np.unique(dataset.y[labeled])

        related = self.inventory.mask(
            np.isin(self.inventory.y, labels_in_d), name="I_related")
        train_pool = related.concat(dataset.mask(labeled), name="topo_train")

        model = build_model(self.model_name, dataset.feature_dim,
                            self.num_classes, rng=self._rng,
                            **self.model_kwargs)
        with trace_span("train"):
            report = fit(model, train_pool, epochs=self.train_epochs,
                         rng=self._rng, lr=self.lr,
                         batch_size=self.batch_size,
                         mixup_alpha=self.mixup_alpha)

        # Latent-space per-class largest connected component over the
        # combined pool; D rows outside their class's LCC are noisy.
        noisy_mask = np.zeros(len(dataset), dtype=bool)
        d_rows = np.nonzero(labeled)[0]
        d_features = model.features(dataset.flat_x()[d_rows])
        rel_features = model.features(related.flat_x()) if len(related) \
            else np.empty((0, d_features.shape[1]))

        with trace_span("knn_graph"):
            for cls in labels_in_d:
                d_cls_local = np.nonzero(dataset.y[d_rows] == cls)[0]
                if d_cls_local.size == 0:
                    continue
                rel_cls = np.nonzero(related.y == cls)[0]
                combined = np.concatenate(
                    [d_features[d_cls_local], rel_features[rel_cls]])
                comp = knn_graph_components(combined, self.knn_k,
                                            mutual=self.mutual_knn)
                counts = np.bincount(comp)
                largest = counts.argmax()
                outside = comp[:len(d_cls_local)] != largest
                noisy_mask[d_rows[d_cls_local[outside]]] = True

        return self._result_from_noisy_mask(
            dataset, noisy_mask, train_samples=report.samples_processed)
