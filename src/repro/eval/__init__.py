"""``repro.eval`` — metrics, timing, and the experiment runner."""

from .export import load_json, report_rows, write_csv, write_json
from .metrics import (DetectionScore, score_detection, score_masks,
                      score_trace, true_noise_mask)
from .reporting import (format_table, method_comparison_table, series_table,
                        speedup_line)
from .runner import MethodReport, ShardOutcome, compare_detectors, run_detector
from .significance import PairedComparison, paired_bootstrap
# Stopwatch's canonical home is repro.obs.clock; repro.eval.timer only
# re-exports it for external compatibility (REP602 facade contract).
from ..obs.clock import Stopwatch
from .timer import CostProfile

__all__ = [
    "DetectionScore", "score_masks", "score_detection", "score_trace",
    "true_noise_mask",
    "MethodReport", "ShardOutcome", "run_detector", "compare_detectors",
    "CostProfile", "Stopwatch",
    "format_table", "method_comparison_table", "series_table", "speedup_line",
    "write_csv", "write_json", "load_json", "report_rows",
    "paired_bootstrap", "PairedComparison",
]
