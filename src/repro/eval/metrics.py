"""Noise-detection metrics (paper §V-A3).

The paper scores the *detected noisy set* ``D̃_N`` against the
ground-truth noisy set ``D_N``:

- precision ``P = |D_N ∩ D̃_N| / |D̃_N|``
- recall    ``R = |D_N ∩ D̃_N| / |D_N|``
- f1        ``F1 = 2PR / (P + R)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.detector import DetectionResult
from ..nn.data import LabeledDataset
from ..noise.injector import MISSING_LABEL


@dataclass(frozen=True)
class DetectionScore:
    """Precision/recall/F1 of one detection run."""

    precision: float
    recall: float
    f1: float
    detected_noisy: int
    true_noisy: int
    total: int

    def as_dict(self) -> dict:
        return {
            "precision": self.precision, "recall": self.recall,
            "f1": self.f1, "detected_noisy": self.detected_noisy,
            "true_noisy": self.true_noisy, "total": self.total,
        }


def score_masks(detected_noisy: np.ndarray,
                true_noisy: np.ndarray) -> DetectionScore:
    """Score a detected-noisy mask against the ground-truth mask."""
    detected_noisy = np.asarray(detected_noisy, dtype=bool)
    true_noisy = np.asarray(true_noisy, dtype=bool)
    if detected_noisy.shape != true_noisy.shape:
        raise ValueError("masks must have identical shapes")
    hit = int((detected_noisy & true_noisy).sum())
    n_det = int(detected_noisy.sum())
    n_true = int(true_noisy.sum())
    precision = hit / n_det if n_det else 0.0
    recall = hit / n_true if n_true else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return DetectionScore(precision=precision, recall=recall, f1=f1,
                          detected_noisy=n_det, true_noisy=n_true,
                          total=detected_noisy.size)


def true_noise_mask(dataset: LabeledDataset) -> np.ndarray:
    """Ground-truth noisy mask over labelled rows."""
    if dataset.true_y is None:
        raise ValueError(f"dataset {dataset.name!r} has no ground truth")
    labeled = dataset.y != MISSING_LABEL
    return (dataset.y != dataset.true_y) & labeled


def score_detection(result: DetectionResult,
                    dataset: LabeledDataset) -> DetectionScore:
    """Score a :class:`DetectionResult` against the dataset's ground truth."""
    return score_masks(result.noisy_mask, true_noise_mask(dataset))


def score_trace(result: DetectionResult,
                dataset: LabeledDataset) -> List[DetectionScore]:
    """Per-iteration scores from a detector trace (Fig. 9).

    At iteration ``i`` the noisy set is ``labelled \\ clean_so_far``.
    """
    truth = true_noise_mask(dataset)
    labeled = dataset.y != MISSING_LABEL
    scores = []
    for snap in result.trace:
        noisy = labeled & ~snap.clean_mask
        scores.append(score_masks(noisy, truth))
    return scores
