"""Statistical significance of method comparisons.

The paper reports mean F1 over 10–20 incremental shards; whether method
A "beats" method B should account for per-shard variance.  This module
provides a paired bootstrap over shard-level scores — the standard test
when two methods are evaluated on the same shards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .runner import MethodReport


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired bootstrap between two methods."""

    method_a: str
    method_b: str
    mean_difference: float      # mean(A) - mean(B) on the observed shards
    p_value: float              # P(bootstrap difference <= 0)
    ci_low: float               # 95% CI of the difference
    ci_high: float
    num_shards: int

    @property
    def significant(self) -> bool:
        """True when A > B at the 5% level."""
        return self.p_value < 0.05 and self.mean_difference > 0


def paired_bootstrap(report_a: MethodReport, report_b: MethodReport,
                     metric: str = "f1", num_resamples: int = 10000,
                     seed: int = 0) -> PairedComparison:
    """Paired bootstrap test that method A outperforms method B.

    Both reports must cover the same shards in the same order.  The
    statistic is the mean per-shard difference of ``metric``; resampling
    is over shards with replacement.
    """
    names_a = [o.shard_name for o in report_a.outcomes]
    names_b = [o.shard_name for o in report_b.outcomes]
    if names_a != names_b:
        raise ValueError(
            "paired bootstrap requires identical shard sequences; got "
            f"{names_a} vs {names_b}")
    if not names_a:
        raise ValueError("no shards to compare")
    a = np.array([getattr(o.score, metric) for o in report_a.outcomes])
    b = np.array([getattr(o.score, metric) for o in report_b.outcomes])
    diffs = a - b
    rng = np.random.default_rng(seed)
    n = len(diffs)
    samples = diffs[rng.integers(0, n, size=(num_resamples, n))].mean(axis=1)
    p_value = float((samples <= 0).mean())
    low, high = np.percentile(samples, [2.5, 97.5])
    return PairedComparison(
        method_a=report_a.method, method_b=report_b.method,
        mean_difference=float(diffs.mean()), p_value=p_value,
        ci_low=float(low), ci_high=float(high), num_shards=n)
