"""Experiment runner: evaluate detectors over streams of arrivals.

Mirrors the paper's protocol: every method sees the same sequence of
noisy incremental datasets; per-shard precision/recall/F1 and process
times are collected and averaged (the numbers behind Figs. 4–8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Protocol

import numpy as np

from ..core.detector import DetectionResult
from ..nn.data import LabeledDataset
from ..obs import use_tracer
from .metrics import DetectionScore, score_detection
from .timer import CostProfile


class Detector(Protocol):
    """Anything with ENLD's ``detect`` contract (ENLD or a baseline)."""

    def detect(self, dataset: LabeledDataset) -> DetectionResult: ...


@dataclass
class ShardOutcome:
    """Score + cost of one detector on one arriving dataset."""

    shard_name: str
    score: DetectionScore
    process_seconds: float
    train_samples: int
    result: DetectionResult


@dataclass
class MethodReport:
    """Aggregated outcomes of one method across a stream."""

    method: str
    outcomes: List[ShardOutcome] = field(default_factory=list)
    cost: CostProfile = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.cost is None:
            self.cost = CostProfile(method=self.method)

    def add(self, outcome: ShardOutcome) -> None:
        self.outcomes.append(outcome)
        self.cost.add_request(outcome.process_seconds,
                              outcome.train_samples)

    def _values(self, attr: str) -> np.ndarray:
        return np.array([getattr(o.score, attr) for o in self.outcomes])

    @property
    def mean_precision(self) -> float:
        return float(self._values("precision").mean()) if self.outcomes else 0.0

    @property
    def mean_recall(self) -> float:
        return float(self._values("recall").mean()) if self.outcomes else 0.0

    @property
    def mean_f1(self) -> float:
        return float(self._values("f1").mean()) if self.outcomes else 0.0

    @property
    def std_f1(self) -> float:
        return float(self._values("f1").std()) if self.outcomes else 0.0

    def summary(self) -> dict:
        return {
            "method": self.method,
            "shards": len(self.outcomes),
            "precision": self.mean_precision,
            "recall": self.mean_recall,
            "f1": self.mean_f1,
            "mean_process_seconds": self.cost.mean_process_seconds,
            "setup_seconds": self.cost.setup_seconds,
        }


def run_detector(detector: Detector, arrivals: Iterable[LabeledDataset],
                 method_name: str,
                 setup_seconds: float = 0.0,
                 setup_train_samples: int = 0,
                 tracer=None) -> MethodReport:
    """Run one detector over every arrival and score each result.

    ``tracer`` (a :class:`repro.obs.Tracer`) is made ambient for the
    whole stream, so per-stage spans from every arrival accumulate into
    one trace; ``None`` keeps whatever tracer is already active.
    """
    report = MethodReport(method=method_name)
    report.cost.setup_seconds = setup_seconds
    report.cost.setup_train_samples = setup_train_samples
    with use_tracer(tracer):
        for dataset in arrivals:
            result = detector.detect(dataset)
            outcome = ShardOutcome(
                shard_name=dataset.name,
                score=score_detection(result, dataset),
                process_seconds=result.process_seconds,
                train_samples=result.train_samples,
                result=result,
            )
            report.add(outcome)
    return report


def compare_detectors(detectors: Dict[str, Detector],
                      arrivals: List[LabeledDataset],
                      setup_seconds: Dict[str, float] | None = None
                      ) -> Dict[str, MethodReport]:
    """Run several detectors over the *same* materialised arrivals."""
    setup_seconds = setup_seconds or {}
    return {
        name: run_detector(det, arrivals, name,
                           setup_seconds=setup_seconds.get(name, 0.0))
        for name, det in detectors.items()
    }
