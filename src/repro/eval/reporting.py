"""Paper-style plain-text reporting of experiment results.

Benchmarks print the same rows/series the paper's figures plot; these
helpers keep that formatting consistent.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from .runner import MethodReport


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with a separator line, like the paper's tables."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def method_comparison_table(reports: Dict[str, MethodReport],
                            title: str = "") -> str:
    """The Figs. 4/5/7 layout: per-method precision/recall/F1 + time."""
    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            report.mean_precision,
            report.mean_recall,
            report.mean_f1,
            report.cost.mean_process_seconds,
            report.cost.setup_seconds,
        ])
    rows.sort(key=lambda r: -r[3])
    return format_table(
        ["method", "precision", "recall", "f1",
         "process_s/shard", "setup_s"],
        rows, title=title)


def series_table(x_name: str, xs: Sequence, columns: Dict[str, Sequence],
                 title: str = "") -> str:
    """A figure-as-table: one x column plus one column per series."""
    headers = [x_name] + list(columns)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [columns[c][i] for c in columns])
    return format_table(headers, rows, title=title)


def speedup_line(fast: MethodReport, slow: MethodReport) -> str:
    """The paper's 'X× detection speedup' phrasing."""
    ratio = fast.cost.speedup_over(slow.cost)
    return (f"{fast.method} achieves {ratio:.2f}x detection speedup on "
            f"average process time over {slow.method}")
