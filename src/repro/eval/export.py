"""Export experiment results to CSV / JSON.

Downstream users typically feed detection reports into dashboards or
spreadsheets; these helpers serialise :class:`MethodReport` collections
without extra dependencies.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable

from .runner import MethodReport

_SHARD_FIELDS = ("method", "shard", "precision", "recall", "f1",
                 "detected_noisy", "true_noisy", "total",
                 "process_seconds", "train_samples")


def report_rows(reports: Dict[str, MethodReport]) -> Iterable[dict]:
    """Flatten per-shard outcomes of several reports into dict rows."""
    for name, report in reports.items():
        for outcome in report.outcomes:
            yield {
                "method": name,
                "shard": outcome.shard_name,
                "precision": outcome.score.precision,
                "recall": outcome.score.recall,
                "f1": outcome.score.f1,
                "detected_noisy": outcome.score.detected_noisy,
                "true_noisy": outcome.score.true_noisy,
                "total": outcome.score.total,
                "process_seconds": outcome.process_seconds,
                "train_samples": outcome.train_samples,
            }


def write_csv(reports: Dict[str, MethodReport], path: str) -> int:
    """Write per-shard rows as CSV; returns the number of rows."""
    rows = list(report_rows(reports))
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_SHARD_FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def write_json(reports: Dict[str, MethodReport], path: str) -> None:
    """Write method summaries + per-shard rows as a JSON document."""
    payload = {
        "summaries": {name: report.summary()
                      for name, report in reports.items()},
        "shards": list(report_rows(reports)),
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=float)


def load_json(path: str) -> dict:
    """Load a document produced by :func:`write_json`."""
    with open(path) as fh:
        return json.load(fh)
