"""Timing instrumentation for the Fig. 8 / Fig. 12 cost analyses.

Two complementary cost views are reported everywhere:

- **wall-clock** seconds (setup vs. per-request process time, §V-A3);
- a machine-independent **work model**: training sample-epochs
  processed, which drives the wall-clock on any substrate and lets the
  paper's relative speedups be checked analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

# Wall-clock reads are owned by observability; re-exported here so
# existing ``from repro.eval.timer import Stopwatch`` callers keep
# working.
from ..obs.clock import Stopwatch

__all__ = ["Stopwatch", "CostProfile"]


@dataclass
class CostProfile:
    """Accumulated cost of a detection method over a stream."""

    method: str
    setup_seconds: float = 0.0
    setup_train_samples: int = 0
    process_seconds: List[float] = field(default_factory=list)
    process_train_samples: List[int] = field(default_factory=list)

    def add_request(self, seconds: float, train_samples: int) -> None:
        self.process_seconds.append(seconds)
        self.process_train_samples.append(train_samples)

    @property
    def mean_process_seconds(self) -> float:
        return (sum(self.process_seconds) / len(self.process_seconds)
                if self.process_seconds else 0.0)

    @property
    def total_seconds(self) -> float:
        return self.setup_seconds + sum(self.process_seconds)

    @property
    def mean_process_train_samples(self) -> float:
        return (sum(self.process_train_samples)
                / len(self.process_train_samples)
                if self.process_train_samples else 0.0)

    def speedup_over(self, other: "CostProfile") -> float:
        """Mean-process-time speedup of *this* method over ``other``.

        Matches the paper's "X× detection speedup on average process
        time" phrasing: ``other.mean / self.mean``.
        """
        if self.mean_process_seconds == 0:
            return float("inf")
        return other.mean_process_seconds / self.mean_process_seconds

    def work_speedup_over(self, other: "CostProfile") -> float:
        """Same ratio in the analytic work model (sample-epochs)."""
        if self.mean_process_train_samples == 0:
            return float("inf")
        return (other.mean_process_train_samples
                / self.mean_process_train_samples)
