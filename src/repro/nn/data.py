"""Dataset containers and mini-batch loading for ``repro.nn``.

:class:`LabeledDataset` is the unit of data exchanged throughout the
reproduction: a pair of arrays (features ``x``, observed labels ``y``)
plus optional hidden true labels used exclusively for evaluation, and
stable per-sample ids so that subsets can be traced back to their
origin (needed by the data-lake bookkeeping and the voting logic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from .rng import resolve_rng


@dataclass
class LabeledDataset:
    """An immutable view over a labelled sample collection.

    Attributes
    ----------
    x:
        Feature array of shape ``(N, ...)``.
    y:
        Observed (possibly noisy) integer labels, shape ``(N,)``.
    true_y:
        Hidden ground-truth labels used only by evaluation code; ``None``
        when unknown.
    ids:
        Stable global sample identifiers of shape ``(N,)``.  Generated
        sequentially when not supplied.
    name:
        Human-readable dataset name.
    """

    x: np.ndarray
    y: np.ndarray
    true_y: Optional[np.ndarray] = None
    ids: Optional[np.ndarray] = None
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x)
        self.y = np.asarray(self.y)
        if self.y.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {self.y.shape}")
        if len(self.x) != len(self.y):
            raise ValueError(
                f"x has {len(self.x)} rows but y has {len(self.y)}")
        if self.true_y is not None:
            self.true_y = np.asarray(self.true_y)
            if self.true_y.shape != self.y.shape:
                raise ValueError("true_y must match y's shape")
        if self.ids is None:
            self.ids = np.arange(len(self.y), dtype=np.int64)
        else:
            self.ids = np.asarray(self.ids, dtype=np.int64)
            if self.ids.shape != self.y.shape:
                raise ValueError("ids must match y's shape")

    def __len__(self) -> int:
        return len(self.y)

    @property
    def num_classes(self) -> int:
        """Number of classes inferred from the observed labels."""
        return int(self.y.max()) + 1 if len(self.y) else 0

    @property
    def feature_dim(self) -> int:
        """Flattened per-sample feature dimensionality."""
        return int(np.prod(self.x.shape[1:]))

    def flat_x(self) -> np.ndarray:
        """Features flattened to ``(N, F)``."""
        return self.x.reshape(len(self), -1)

    def labels_present(self) -> np.ndarray:
        """Sorted unique observed labels — ``label(D)`` in the paper."""
        return np.unique(self.y)

    def subset(self, indices: Sequence[int],
               name: Optional[str] = None) -> "LabeledDataset":
        """Row-subset preserving ids and hidden labels."""
        indices = np.asarray(indices)
        return LabeledDataset(
            x=self.x[indices],
            y=self.y[indices],
            true_y=None if self.true_y is None else self.true_y[indices],
            ids=self.ids[indices],
            name=name or self.name,
        )

    def mask(self, boolean_mask: np.ndarray,
             name: Optional[str] = None) -> "LabeledDataset":
        """Boolean-mask subset."""
        boolean_mask = np.asarray(boolean_mask, dtype=bool)
        if boolean_mask.shape != self.y.shape:
            raise ValueError("mask must match y's shape")
        return self.subset(np.nonzero(boolean_mask)[0], name=name)

    def concat(self, other: "LabeledDataset",
               name: Optional[str] = None) -> "LabeledDataset":
        """Row-concatenate two datasets (ids are preserved, may repeat)."""
        true_y = None
        if self.true_y is not None and other.true_y is not None:
            true_y = np.concatenate([self.true_y, other.true_y])
        return LabeledDataset(
            x=np.concatenate([self.x, other.x]),
            y=np.concatenate([self.y, other.y]),
            true_y=true_y,
            ids=np.concatenate([self.ids, other.ids]),
            name=name or self.name,
        )

    def with_labels(self, new_y: np.ndarray,
                    name: Optional[str] = None) -> "LabeledDataset":
        """Copy of this dataset with replaced observed labels."""
        new_y = np.asarray(new_y)
        if new_y.shape != self.y.shape:
            raise ValueError("new labels must match y's shape")
        return LabeledDataset(self.x, new_y, true_y=self.true_y,
                              ids=self.ids, name=name or self.name)

    def class_counts(self, num_classes: Optional[int] = None) -> np.ndarray:
        """Histogram of observed labels."""
        n = num_classes or self.num_classes
        return np.bincount(self.y, minlength=n)

    def noise_mask(self) -> np.ndarray:
        """Boolean mask of mislabelled samples (requires ``true_y``)."""
        if self.true_y is None:
            raise ValueError(f"dataset {self.name!r} has no ground truth")
        return self.y != self.true_y

    def noise_rate(self) -> float:
        """Fraction of mislabelled samples (requires ``true_y``)."""
        if len(self) == 0:
            return 0.0
        return float(self.noise_mask().mean())


class DataLoader:
    """Mini-batch iterator over a :class:`LabeledDataset`.

    Shuffling is driven by an explicit generator for reproducibility.
    """

    def __init__(self, dataset: LabeledDataset, batch_size: int = 64,
                 shuffle: bool = True, drop_last: bool = False,
                 rng: Optional[np.random.Generator] = None):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = resolve_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = (self.rng.permutation(n) if self.shuffle
                 else np.arange(n))
        stop = (n - n % self.batch_size) if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.dataset.x[idx], self.dataset.y[idx]


def train_test_split(dataset: LabeledDataset, test_fraction: float,
                     rng: np.random.Generator,
                     stratify: bool = False
                     ) -> Tuple[LabeledDataset, LabeledDataset]:
    """Split a dataset into train/test parts.

    With ``stratify=True`` the split preserves per-class proportions.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(
            f"test_fraction must be in (0, 1), got {test_fraction}")
    n = len(dataset)
    if stratify:
        test_idx: list = []
        train_idx: list = []
        for cls in np.unique(dataset.y):
            cls_idx = np.nonzero(dataset.y == cls)[0]
            cls_idx = rng.permutation(cls_idx)
            cut = int(round(len(cls_idx) * test_fraction))
            test_idx.extend(cls_idx[:cut])
            train_idx.extend(cls_idx[cut:])
        train_arr = np.array(sorted(train_idx))
        test_arr = np.array(sorted(test_idx))
    else:
        order = rng.permutation(n)
        cut = int(round(n * test_fraction))
        test_arr = order[:cut]
        train_arr = order[cut:]
    return (dataset.subset(train_arr, name=f"{dataset.name}/train"),
            dataset.subset(test_arr, name=f"{dataset.name}/test"))
