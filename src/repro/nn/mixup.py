"""Mixup augmentation (Zhang et al., 2018) as used by ENLD's model init.

Paper §IV-B: the general model is trained on ``I_t`` with Mixup,
``λ ~ Beta(α, α)``, ``α = 0.2`` (Eq. 1 and Eq. 2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .functional import one_hot

DEFAULT_ALPHA = 0.2


def mixup_batch(x: np.ndarray, y: np.ndarray, num_classes: int,
                rng: np.random.Generator,
                alpha: float = DEFAULT_ALPHA
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Mix a batch with a random permutation of itself.

    Returns
    -------
    mixed_x:
        ``λ x_i + (1-λ) x_j`` per Eq. 1 (single λ per batch, the common
        implementation of the original paper).
    mixed_targets:
        Soft targets ``λ y_i + (1-λ) y_j`` per Eq. 2, one-hot mixed, of
        shape ``(N, num_classes)``.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    lam = float(rng.beta(alpha, alpha))
    perm = rng.permutation(len(x))
    mixed_x = lam * x + (1.0 - lam) * x[perm]
    targets = one_hot(y, num_classes)
    mixed_targets = lam * targets + (1.0 - lam) * targets[perm]
    return mixed_x, mixed_targets
