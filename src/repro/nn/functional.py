"""Stateless neural-network operations with autograd support.

These functions operate on :class:`repro.nn.tensor.Tensor` objects and
return tensors wired into the autograd graph.  They complement the
methods on ``Tensor`` with numerically stable softmax-family ops and the
im2col-based 2-D convolution used by the convolutional model variants.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .rng import resolve_rng
from .tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int,
            dtype=np.float64) -> np.ndarray:
    """Encode integer ``labels`` as a one-hot matrix."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes="
                         f"{num_classes}: [{labels.min()}, {labels.max()}]")
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales activations by ``1/(1-p)`` at train time."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = resolve_rng(rng)
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(mask)


# ----------------------------------------------------------------------
# im2col helpers for Conv2d
# ----------------------------------------------------------------------

def _im2col_indices(x_shape: Tuple[int, int, int, int], kh: int, kw: int,
                    stride: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution over NCHW input using im2col + matmul.

    Parameters
    ----------
    x:
        Input tensor of shape ``(N, C_in, H, W)``.
    weight:
        Kernel tensor of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects NCHW input, got shape {x.shape}")
    if padding:
        x = x.pad2d(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(
            f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1

    k, i, j = _im2col_indices((n, c_in, h, w), kh, kw, stride)
    x_data = x.data
    cols = x_data[:, k, i, j]  # (N, C*KH*KW, OH*OW)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C*KH*KW)
    out = np.einsum("oc,ncp->nop", w_mat, cols)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, c_out, -1)  # (N, C_out, OH*OW)
        if weight.requires_grad:
            gw = np.einsum("nop,ncp->oc", grad_mat, cols)
            weight._route(gw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._route(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            gcols = np.einsum("oc,nop->ncp", w_mat, grad_mat)
            gx = np.zeros((n, c_in, h, w), dtype=x_data.dtype)
            np.add.at(gx, (slice(None), k, i, j), gcols)
            x._route(gx)

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if kernel == stride and h % kernel == 0 and w % kernel == 0:
        # Fast path: reshape trick.
        reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
        out = reshaped.max(axis=(3, 5))

        def backward(grad: np.ndarray) -> None:
            expanded = out[:, :, :, None, :, None]
            mask = (reshaped == expanded)
            counts = mask.sum(axis=(3, 5), keepdims=True)
            g = mask * grad[:, :, :, None, :, None] / counts
            x._route(g.reshape(n, c, h, w))

        return Tensor._make(out, (x,), backward)
    raise NotImplementedError(
        "max_pool2d supports only kernel == stride with divisible sizes")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dimensions of an NCHW tensor."""
    return x.mean(axis=(2, 3))


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out
