"""Weight initialisation schemes for ``repro.nn`` layers."""

from __future__ import annotations

import numpy as np


def kaiming_uniform(shape, fan_in: int,
                    rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation suited for ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zero initialisation (biases, norm shifts)."""
    return np.zeros(shape)


def ones(shape) -> np.ndarray:
    """All-one initialisation (norm scales)."""
    return np.ones(shape)
