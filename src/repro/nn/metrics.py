"""Classification metrics for model evaluation."""

from __future__ import annotations

import numpy as np

from .data import LabeledDataset
from .models import Classifier


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact label matches."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def evaluate_accuracy(model: Classifier, dataset: LabeledDataset,
                      use_true_labels: bool = False,
                      batch_size: int = 256) -> float:
    """Model accuracy on a dataset.

    ``use_true_labels=True`` evaluates against hidden ground truth (for
    experiment reporting, e.g. paper Table II); otherwise against the
    observed labels.
    """
    labels = dataset.true_y if use_true_labels else dataset.y
    if labels is None:
        raise ValueError("dataset has no true labels")
    preds = model.predict(dataset.flat_x(), batch_size=batch_size)
    return accuracy(preds, labels)


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Dense confusion matrix ``C[i, j] = #(label i predicted as j)``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
