"""Reverse-mode automatic differentiation on top of numpy.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` neural-network framework.  A :class:`Tensor` wraps a numpy
array and records the operations applied to it so that gradients can be
computed with a single call to :meth:`Tensor.backward`.

The design follows the classic tape-based approach: every operation
returns a new tensor holding a closure that knows how to propagate the
output gradient back to the operation's inputs.  Backpropagation walks
the recorded graph in reverse topological order.

Only float64/float32 arrays are supported as differentiable data; labels
and index arrays should stay plain numpy arrays.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    Numpy broadcasting can expand operands along new leading axes or along
    axes of size one; the corresponding gradient must be summed back over
    the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out the extra leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload.  Converted to ``float64`` by default.
    requires_grad:
        When ``True``, gradients flowing through this tensor are
        accumulated into :attr:`grad` during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    # Gradient accumulator active during a backward pass.  Maps id(tensor)
    # to the gradient accumulated so far; ensures each node's backward
    # closure runs exactly once even in diamond-shaped graphs (residual
    # connections), avoiding exponential blowup.
    _active: Optional[dict] = None

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None):
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = requires_grad
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a single-element tensor, got {self.shape}")
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this
            tensor.  Defaults to ones (only valid for scalar tensors).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only "
                    f"supported for scalar tensors, got shape {self.shape}")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS for topological ordering (avoids recursion limits
        # for deep models such as the resnet110 analog).
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        previous = Tensor._active
        Tensor._active = {id(self): grad}
        try:
            for node in reversed(topo):
                node_grad = Tensor._active.pop(id(node), None)
                if node_grad is None:
                    continue
                if node._backward is not None and node._parents:
                    # The closure routes gradients to parents via _route,
                    # which accumulates into Tensor._active.
                    node._backward(node_grad)
                else:
                    node._accumulate(node_grad)
        finally:
            Tensor._active = previous

    # The closures created by ops call this helper.  During a backward
    # pass it accumulates into the active gradient table so every node's
    # closure runs exactly once; outside a pass it writes to ``grad``.
    def _route(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        active = Tensor._active
        if active is None:
            self._accumulate(grad)
            return
        key = id(self)
        if key in active:
            active[key] = active[key] + grad
        else:
            active[key] = grad

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._route(_unbroadcast(grad, self.shape))
            other_t._route(_unbroadcast(grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._route(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._route(_unbroadcast(grad, self.shape))
            other_t._route(_unbroadcast(-grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._route(_unbroadcast(grad * other_t.data, self.shape))
            other_t._route(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._route(_unbroadcast(grad / other_t.data, self.shape))
            other_t._route(_unbroadcast(
                -grad * self.data / (other_t.data ** 2), other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._route(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._route(grad @ other_t.data.swapaxes(-1, -2))
            if other_t.requires_grad:
                other_t._route(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._route(grad * mask)

        return Tensor._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._route(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._route(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._route(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._route(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._route(grad * sign)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._route(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            expanded = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly among ties to keep the op well defined.
            counts = mask.sum(axis=axis, keepdims=True)
            self._route(mask * g / counts)

        return Tensor._make(data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._route(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._route(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._route(full)

        return Tensor._make(data, (self,), backward)

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically by ``pad``."""
        if pad == 0:
            return self
        width = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        data = np.pad(self.data, width)
        sl = tuple([slice(None)] * (self.ndim - 2)
                   + [slice(pad, -pad), slice(pad, -pad)])

        def backward(grad: np.ndarray) -> None:
            self._route(grad[sl])

        return Tensor._make(data, (self,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * grad.ndim
            sl[axis] = slice(start, stop)
            t._route(grad[tuple(sl)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            t._route(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def no_grad_array(x: Union[Tensor, np.ndarray]) -> np.ndarray:
    """Return the raw numpy array of ``x`` whether tensor or array."""
    return x.data if isinstance(x, Tensor) else np.asarray(x)
