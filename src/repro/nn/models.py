"""Model zoo for the ENLD reproduction.

Every model is a :class:`Classifier` exposing the two views ENLD needs
(paper Table I):

- ``M(x, θ)``  — softmax confidences, via :meth:`Classifier.predict_proba`;
- ``M̂(x, θ)`` — penultimate feature representation, via
  :meth:`Classifier.features`.

The registry maps the paper's architecture names to CPU-tractable
analogs (see DESIGN.md):

- ``"resnet110"``  → residual MLP with 18 residual blocks;
- ``"resnet164"``  → residual MLP with 27 residual blocks;
- ``"densenet121"``→ densely connected MLP, 3 dense blocks;
- ``"smallconv"``  → a genuine convolutional network (for image input);
- ``"mlp"``        → a plain 2-hidden-layer baseline MLP.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from . import functional as F
from .blocks import (DenseMLPBlock, ResidualConvBlock, ResidualMLPBlock,
                     TransitionMLP)
from .layers import (BatchNorm1d, Conv2d, Linear, Module, ReLU,
                     Sequential)
from .rng import resolve_rng
from .tensor import Tensor


class Classifier(Module):
    """A classifier with an explicit feature extractor and linear head.

    Subclasses implement :meth:`forward_features`; the final logits are
    always produced by the linear ``head`` so that the penultimate
    representation is well defined.
    """

    def __init__(self, feature_dim: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.feature_dim = feature_dim
        self.num_classes = num_classes
        self.head = Linear(feature_dim, num_classes, rng=rng)

    def forward_features(self, x: Tensor) -> Tensor:  # pragma: no cover
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.forward_features(x))

    # ------------------------------------------------------------------
    # Inference helpers (numpy in / numpy out, batched, eval mode)
    # ------------------------------------------------------------------
    def _batched(self, x: np.ndarray, fn: Callable[[Tensor], Tensor],
                 batch_size: int) -> np.ndarray:
        was_training = self.training
        self.eval()
        outs: List[np.ndarray] = []
        try:
            for start in range(0, len(x), batch_size):
                batch = Tensor(x[start:start + batch_size])
                outs.append(fn(batch).data)
        finally:
            if was_training:
                self.train()
        return np.concatenate(outs, axis=0) if outs else np.empty((0,))

    def predict_logits(self, x: np.ndarray,
                       batch_size: int = 256) -> np.ndarray:
        """Raw class scores for each row of ``x``."""
        return self._batched(x, self.forward, batch_size)

    def predict_proba(self, x: np.ndarray,
                      batch_size: int = 256) -> np.ndarray:
        """Softmax confidences ``M(x, θ)`` for each row of ``x``."""
        logits = self.predict_logits(x, batch_size)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted labels ``argmax M(x, θ)``."""
        return self.predict_logits(x, batch_size).argmax(axis=1)

    def features(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Penultimate representation ``M̂(x, θ)`` for each row of ``x``."""
        return self._batched(x, self.forward_features, batch_size)

    def predict_view(self, x: np.ndarray, batch_size: int = 256
                     ) -> "tuple[np.ndarray, np.ndarray]":
        """``(M(x, θ), M̂(x, θ))`` sharing one forward pass.

        ENLD needs both views of the same inputs on every arrival;
        calling :meth:`predict_proba` and :meth:`features` separately
        runs the body twice.  This fused path computes the features
        once and applies only the linear head on top, halving inference
        cost while producing bit-identical outputs (softmax and head
        are row-wise, so batching does not affect values).
        """
        was_training = self.training
        self.eval()
        probs_out: List[np.ndarray] = []
        feats_out: List[np.ndarray] = []
        try:
            for start in range(0, len(x), batch_size):
                feats = self.forward_features(Tensor(x[start:start + batch_size]))
                logits = self.head(feats).data
                shifted = logits - logits.max(axis=1, keepdims=True)
                exp = np.exp(shifted)
                probs_out.append(exp / exp.sum(axis=1, keepdims=True))
                feats_out.append(feats.data)
        finally:
            if was_training:
                self.train()
        if not probs_out:
            return np.empty((0, self.num_classes)), np.empty((0, self.feature_dim))
        return np.concatenate(probs_out), np.concatenate(feats_out)


class MLPClassifier(Classifier):
    """Plain feed-forward classifier with two hidden layers."""

    def __init__(self, in_features: int, num_classes: int,
                 hidden: int = 128,
                 rng: Optional[np.random.Generator] = None):
        rng = resolve_rng(rng)
        super().__init__(hidden, num_classes, rng=rng)
        self.body = Sequential(
            Linear(in_features, hidden, rng=rng), ReLU(),
            Linear(hidden, hidden, rng=rng), ReLU(),
        )

    def forward_features(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.body(x)


class ResNetMLP(Classifier):
    """Residual MLP — the reproduction analog of ResNet-110/164."""

    def __init__(self, in_features: int, num_classes: int,
                 width: int = 96, num_blocks: int = 18,
                 use_norm: bool = True,
                 rng: Optional[np.random.Generator] = None):
        rng = resolve_rng(rng)
        super().__init__(width, num_classes, rng=rng)
        self.stem = Linear(in_features, width, rng=rng)
        self.blocks = [ResidualMLPBlock(width, rng=rng, use_norm=use_norm)
                       for _ in range(num_blocks)]
        self.final_norm = BatchNorm1d(width) if use_norm else None

    def forward_features(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        h = self.stem(x)
        for block in self.blocks:
            h = block(h)
        if self.final_norm is not None:
            h = self.final_norm(h)
        return h.relu()


class DenseNetMLP(Classifier):
    """Densely connected MLP — the reproduction analog of DenseNet-121."""

    def __init__(self, in_features: int, num_classes: int,
                 width: int = 64, growth: int = 16,
                 block_layers: tuple = (4, 4, 4),
                 rng: Optional[np.random.Generator] = None):
        rng = resolve_rng(rng)
        self._rng = rng
        blocks: List[Module] = []
        w = width
        for i, n_layers in enumerate(block_layers):
            dense = DenseMLPBlock(w, growth, n_layers, rng=rng)
            blocks.append(dense)
            w = dense.out_width
            if i < len(block_layers) - 1:
                w_out = max(width, w // 2)
                blocks.append(TransitionMLP(w, w_out, rng=rng))
                w = w_out
        super().__init__(w, num_classes, rng=rng)
        self.stem = Linear(in_features, width, rng=rng)
        self.blocks = blocks

    def forward_features(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        h = self.stem(x)
        for block in self.blocks:
            h = block(h)
        return h.relu()


class SmallConvNet(Classifier):
    """A genuine convolutional classifier for NCHW image input.

    Used to exercise the Conv2d/pooling substrate on real image-shaped
    tensors; far smaller than ResNet-110 so that CPU runs stay feasible.
    """

    def __init__(self, in_shape: tuple, num_classes: int,
                 channels: int = 16,
                 rng: Optional[np.random.Generator] = None):
        rng = resolve_rng(rng)
        c, h, w = in_shape
        if h % 4 or w % 4:
            raise ValueError(f"spatial dims must be divisible by 4, got {in_shape}")
        super().__init__(channels * 2, num_classes, rng=rng)
        self.in_shape = in_shape
        self.conv1 = Conv2d(c, channels, 3, padding=1, rng=rng)
        self.res1 = ResidualConvBlock(channels, rng=rng)
        self.conv2 = Conv2d(channels, channels * 2, 3, padding=1, rng=rng)
        self.res2 = ResidualConvBlock(channels * 2, rng=rng)

    def forward_features(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            x = x.reshape(x.shape[0], *self.in_shape)
        h = self.conv1(x).relu()
        h = F.max_pool2d(h, 2)
        h = self.res1(h)
        h = self.conv2(h).relu()
        h = F.max_pool2d(h, 2)
        h = self.res2(h)
        return F.global_avg_pool2d(h).relu()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., Classifier]] = {}


def register_model(name: str):
    """Decorator adding a model factory to the registry."""

    def wrap(factory: Callable[..., Classifier]):
        if name in _REGISTRY:
            raise KeyError(f"model {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return wrap


@register_model("mlp")
def _build_mlp(in_features: int, num_classes: int, rng=None, **kw) -> Classifier:
    return MLPClassifier(in_features, num_classes, rng=rng, **kw)


@register_model("resnet110")
def _build_resnet110(in_features: int, num_classes: int, rng=None,
                     **kw) -> Classifier:
    kw.setdefault("num_blocks", 18)
    return ResNetMLP(in_features, num_classes, rng=rng, **kw)


@register_model("resnet164")
def _build_resnet164(in_features: int, num_classes: int, rng=None,
                     **kw) -> Classifier:
    kw.setdefault("num_blocks", 27)
    return ResNetMLP(in_features, num_classes, rng=rng, **kw)


@register_model("densenet121")
def _build_densenet121(in_features: int, num_classes: int, rng=None,
                       **kw) -> Classifier:
    return DenseNetMLP(in_features, num_classes, rng=rng, **kw)


@register_model("smallconv")
def _build_smallconv(in_features: int, num_classes: int, rng=None,
                     in_shape=None, **kw) -> Classifier:
    """Convolutional classifier; infers a square 1-channel shape when
    ``in_shape`` is not given."""
    if in_shape is None:
        side = int(round(np.sqrt(in_features)))
        if side * side != in_features:
            raise ValueError(
                "smallconv needs in_shape=(C, H, W) for non-square input "
                f"of {in_features} features")
        in_shape = (1, side, side)
    return SmallConvNet(tuple(in_shape), num_classes, rng=rng, **kw)


@register_model("tinyresnet")
def _build_tinyresnet(in_features: int, num_classes: int, rng=None,
                      **kw) -> Classifier:
    """A 4-block residual MLP used by the fast benchmark presets."""
    kw.setdefault("num_blocks", 4)
    kw.setdefault("width", 64)
    return ResNetMLP(in_features, num_classes, rng=rng, **kw)


def available_models() -> List[str]:
    """Names of all registered model factories."""
    return sorted(_REGISTRY)


def build_model(name: str, in_features: int, num_classes: int,
                rng: Optional[np.random.Generator] = None,
                **kwargs) -> Classifier:
    """Instantiate a registered model by name.

    Raises ``KeyError`` listing available names when ``name`` is unknown.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; "
            f"available: {available_models()}") from None
    return factory(in_features, num_classes, rng=rng, **kwargs)
