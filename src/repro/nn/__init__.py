"""``repro.nn`` — a from-scratch numpy neural-network framework.

Provides the deep-learning substrate the ENLD paper builds on: autograd
tensors, layers, a small model zoo exposing softmax confidences
``M(x, θ)`` and penultimate features ``M̂(x, θ)``, optimisers, Mixup,
data loading and training loops.
"""

from .augment import (compose, cutout, gaussian_jitter, random_hflip,
                      random_shift)
from .data import DataLoader, LabeledDataset, train_test_split
from .layers import (BatchNorm1d, Conv2d, Dropout, Flatten, LayerNorm,
                     Linear, Module, ReLU, Sequential, Tanh)
from .losses import cross_entropy, mse_loss, soft_cross_entropy
from .metrics import accuracy, confusion_matrix, evaluate_accuracy
from .mixup import mixup_batch
from .models import (Classifier, DenseNetMLP, MLPClassifier, ResNetMLP,
                     SmallConvNet, available_models, build_model,
                     register_model)
from .optim import SGD, Adam, CosineLR, StepLR, clip_grad_norm
from .rng import resolve_rng
from .serialize import clone_module, copy_into, load_checkpoint, save_checkpoint
from .tensor import Tensor, concatenate, stack
from .train import TrainReport, evaluate_loss, fit, fit_epoch

__all__ = [
    "Tensor", "concatenate", "stack",
    "Module", "Linear", "Conv2d", "ReLU", "Tanh", "Dropout", "BatchNorm1d",
    "LayerNorm", "Sequential", "Flatten",
    "Classifier", "MLPClassifier", "ResNetMLP", "DenseNetMLP", "SmallConvNet",
    "build_model", "register_model", "available_models",
    "cross_entropy", "soft_cross_entropy", "mse_loss",
    "SGD", "Adam", "StepLR", "CosineLR", "clip_grad_norm",
    "LabeledDataset", "DataLoader", "train_test_split", "resolve_rng",
    "mixup_batch",
    "accuracy", "evaluate_accuracy", "confusion_matrix",
    "fit", "fit_epoch", "evaluate_loss", "TrainReport",
    "save_checkpoint", "load_checkpoint", "copy_into", "clone_module",
    "compose", "cutout", "gaussian_jitter", "random_hflip", "random_shift",
]
