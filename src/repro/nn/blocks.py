"""Building blocks (residual and dense) for the model zoo.

The paper evaluates on ResNet-110, ResNet-164 and DenseNet-121.  On a
CPU-only substrate we keep the *topological* properties that matter to
ENLD — depth, skip connections, dense connectivity — in MLP form (see
DESIGN.md, substitution table).  Convolutional residual blocks are also
provided for completeness and exercised by the tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import BatchNorm1d, Conv2d, Linear, Module
from .rng import resolve_rng
from .tensor import Tensor, concatenate


class ResidualMLPBlock(Module):
    """Pre-activation residual block: ``x + W2 relu(norm(W1 relu(norm(x))))``.

    Follows the identity-mapping formulation of He et al. (2016), which
    the paper's ResNet-110/164 use, transplanted to dense layers.
    """

    def __init__(self, width: int, rng: Optional[np.random.Generator] = None,
                 use_norm: bool = True):
        super().__init__()
        rng = resolve_rng(rng)
        self.norm1 = BatchNorm1d(width) if use_norm else None
        self.fc1 = Linear(width, width, rng=rng)
        self.norm2 = BatchNorm1d(width) if use_norm else None
        self.fc2 = Linear(width, width, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = x
        if self.norm1 is not None:
            h = self.norm1(h)
        h = self.fc1(h.relu())
        if self.norm2 is not None:
            h = self.norm2(h)
        h = self.fc2(h.relu())
        return x + h


class DenseMLPBlock(Module):
    """Dense block: each layer sees the concatenation of all earlier outputs.

    The MLP analog of a DenseNet block; ``growth`` plays the role of the
    growth rate.
    """

    def __init__(self, in_width: int, growth: int, num_layers: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng)
        self.layers = []
        width = in_width
        for _ in range(num_layers):
            self.layers.append(Linear(width, growth, rng=rng))
            width += growth
        self.out_width = width

    def forward(self, x: Tensor) -> Tensor:
        features = x
        for layer in self.layers:
            new = layer(features.relu())
            features = concatenate([features, new], axis=1)
        return features


class TransitionMLP(Module):
    """Compress dense-block output back down (DenseNet transition analog)."""

    def __init__(self, in_width: int, out_width: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.fc = Linear(in_width, out_width, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(x.relu())


class ResidualConvBlock(Module):
    """Basic 3x3 pre-activation convolutional residual block (NCHW)."""

    def __init__(self, channels: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng)
        self.conv1 = Conv2d(channels, channels, 3, padding=1, rng=rng)
        self.conv2 = Conv2d(channels, channels, 3, padding=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = self.conv1(x.relu())
        h = self.conv2(h.relu())
        return x + h
