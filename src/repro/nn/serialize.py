"""Model checkpoint save/load helpers.

Checkpoints are plain ``.npz`` archives of the model's state dict, so
they stay dependency-free and portable.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Dict

import numpy as np

from .layers import Module

_META_KEY = "__repro_checkpoint__"


def state_digest(model: Module, bits: int = 128) -> str:
    """Content digest of a model's parameters and buffers.

    BLAKE2b over the sorted state dict (key, shape, dtype, raw bytes),
    so two models with byte-identical weights share a digest regardless
    of construction order.  This is the weights component of the
    content-addressed model versions kept by the data-lake catalog.
    """
    h = hashlib.blake2b(digest_size=bits // 8)
    state = model.state_dict()
    for key in sorted(state):
        arr = np.ascontiguousarray(state[key])
        h.update(key.encode())
        h.update(str(arr.shape).encode())
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def save_checkpoint(model: Module, path: str) -> None:
    """Persist the model's parameters and buffers to ``path`` (.npz).

    The write is atomic (temp file in the target directory, then
    :func:`os.replace`), so a crash mid-save never leaves a torn
    checkpoint behind — at worst the previous one survives untouched.
    """
    state = model.state_dict()
    state[_META_KEY] = np.array([1])  # format version marker
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp.npz")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **state)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_checkpoint(model: Module, path: str) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``model``."""
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {
            k: archive[k] for k in archive.files if k != _META_KEY}
        if _META_KEY not in archive.files:
            raise ValueError(f"{path} is not a repro checkpoint")
    model.load_state_dict(state)


def clone_module(model: Module) -> Module:
    """Deep-copy a module, including parameters and training mode."""
    import copy

    return copy.deepcopy(model)


def copy_into(src: Module, dst: Module) -> None:
    """Copy ``src``'s parameters/buffers into ``dst`` (same architecture)."""
    dst.load_state_dict(src.state_dict())
