"""Loss functions for ``repro.nn``.

Includes the universal cross-entropy used throughout the paper (§V-A6)
and the soft-target variant required by Mixup training (§IV-B).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from . import functional as F
from .tensor import Tensor


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` and integer ``labels``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(N, L)``.
    labels:
        Integer array of shape ``(N,)``.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ValueError(
            f"labels shape {labels.shape} incompatible with logits "
            f"{logits.shape}")
    log_probs = F.log_softmax(logits, axis=1)
    picked = log_probs[np.arange(len(labels)), labels]
    return _reduce(-picked, reduction)


def soft_cross_entropy(logits: Tensor, target_probs: np.ndarray,
                       reduction: str = "mean") -> Tensor:
    """Cross-entropy against a soft target distribution.

    Used for Mixup, where the target is a convex combination of two
    one-hot vectors (Eq. 2 of the paper).
    """
    target = np.asarray(target_probs, dtype=np.float64)
    if target.shape != logits.shape:
        raise ValueError(
            f"target shape {target.shape} must match logits {logits.shape}")
    log_probs = F.log_softmax(logits, axis=1)
    losses = -(log_probs * Tensor(target)).sum(axis=1)
    return _reduce(losses, reduction)


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray],
             reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target_t
    losses = (diff * diff).sum(axis=tuple(range(1, pred.ndim))) \
        if pred.ndim > 1 else diff * diff
    return _reduce(losses, reduction)


def _reduce(losses: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")
