"""Optimisers and learning-rate schedules for ``repro.nn``."""

from __future__ import annotations

from typing import List

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimiser operating on a list of parameter tensors."""

    def __init__(self, params: List[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, params: List[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = grad + self.momentum * v if self.nesterov else v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, params: List[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1 - b1 ** self._t
        bias2 = 1 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimiser's learning rate by ``gamma`` every ``step_size``."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineLR:
    """Cosine annealing from the initial LR down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 0.0):
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.total_epochs)
        cos = 0.5 * (1 + np.cos(np.pi * self._epoch / self.total_epochs))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos


def clip_grad_norm(params: List[Tensor], max_norm: float) -> float:
    """Clip gradients in-place to a maximum global L2 norm.

    Returns the pre-clip norm, mirroring the torch API.
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
