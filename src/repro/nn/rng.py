"""RNG-discipline helper: the one sanctioned Generator fallback.

The platform's checkpoint/replay guarantee (DESIGN.md §8) requires
every random draw to come from a seeded, threaded
:class:`numpy.random.Generator`.  Unseeded ``np.random.default_rng()``
fallbacks draw OS entropy and silently diverge on resume — the
``REP102`` analysis rule bans them.  Optional-``rng`` APIs resolve
their default through this helper instead, so "caller didn't care"
means *deterministic*, never *nondeterministic*.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Seed used when a caller leaves an optional ``rng`` unset.
DEFAULT_FALLBACK_SEED = 0


def resolve_rng(rng: Optional[np.random.Generator],
                seed: int = DEFAULT_FALLBACK_SEED) -> np.random.Generator:
    """Return ``rng``, or a deterministically seeded fallback.

    Callers that want run-to-run variation must thread their own
    Generator; the fallback exists so casual construction (demos,
    doctests) stays reproducible by default.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(seed)
