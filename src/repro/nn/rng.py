"""RNG discipline: the sanctioned fallback and the stream-tag registry.

The platform's checkpoint/replay guarantee (DESIGN.md §8) requires
every random draw to come from a seeded, threaded
:class:`numpy.random.Generator`.  Unseeded ``np.random.default_rng()``
fallbacks draw OS entropy and silently diverge on resume — the
``REP102`` analysis rule bans them.  Optional-``rng`` APIs resolve
their default through this helper instead, so "caller didn't care"
means *deterministic*, never *nondeterministic*.

This module is also the **stream-tag registry**: every derived RNG
stream in the project is keyed as ``[seed, TAG, ...]`` (a SeedSequence
entropy list), and two call sites reusing one TAG silently correlate
streams that the bit-identical-replay contract needs independent.
:data:`STREAM_TAGS` is the single namespace those tags live in;
uniqueness is enforced at import time here and statically at every
use site by the ``REP801`` analysis rule (tags must be spelled
``STREAM_TAGS.<NAME>``, never as inline literals).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Seed used when a caller leaves an optional ``rng`` unset.
DEFAULT_FALLBACK_SEED = 0


@dataclass(frozen=True)
class StreamTags:
    """The project-wide RNG stream-tag namespace (one int per stream).

    Each field names one derived stream family; the value is the tag
    mixed into the SeedSequence entropy list at the deriving call
    site.  Add new streams here — never as inline literals — so the
    namespace stays collision-free by construction.
    """

    #: Per-arrival detection streams (``ingest.arrival_rng``).
    DETECT: int = 8191
    #: Per-arrival retry backoff jitter (``ingest.retry_detect``).
    INGEST_JITTER: int = 4409
    #: Per-submission retry backoff jitter (``platform.submit``).
    SUBMIT_JITTER: int = 5227
    #: Detection re-roll between submit retry attempts.
    RESEED: int = 7919
    #: Async model-update training streams (``updater``).
    UPDATE_TRAIN: int = 9973
    #: Async model-update retry backoff (``updater``).
    UPDATE_BACKOFF: int = 7717

    def __post_init__(self) -> None:
        values = [getattr(self, f.name)
                  for f in dataclasses.fields(self)]
        if any(v <= 0 for v in values):
            raise ValueError("stream tags must be positive integers")
        if len(values) != len(set(values)):
            raise ValueError(
                "duplicate stream tag values in StreamTags")

    def names(self) -> tuple:
        """Field names, in declaration order."""
        return tuple(f.name for f in dataclasses.fields(self))


#: The one registry instance every deriving call site imports.
STREAM_TAGS = StreamTags()


def resolve_rng(rng: Optional[np.random.Generator],
                seed: int = DEFAULT_FALLBACK_SEED) -> np.random.Generator:
    """Return ``rng``, or a deterministically seeded fallback.

    Callers that want run-to-run variation must thread their own
    Generator; the fallback exists so casual construction (demos,
    doctests) stays reproducible by default.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(seed)
