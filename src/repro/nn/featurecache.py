"""Content-keyed cache of model inference outputs.

ENLD's hot path recomputes the general model's view of the inventory
candidates — softmax confidences ``M(x, θ)`` and penultimate features
``M̂(x, θ)`` — for *every* arriving dataset, even though neither ``θ``
nor ``I_c`` changed between arrivals.  :class:`FeatureCache` memoises
those forward passes behind a content key:

    key = (digest of θ's weights, digest of the input array)

so a cache entry can never go stale: refreshing the model (Alg. 4)
changes the weight digest and subsequent lookups simply miss.  Eviction
is LRU with a small entry budget (each entry holds two arrays of the
input's row count).

Digests are BLAKE2b over the raw array bytes plus shape/dtype, which
makes the key portable across processes — the cache itself is
in-memory only, but the key scheme is safe to persist next to
checkpoints if a future PR wants warm starts.

Inference goes through :meth:`Classifier.predict_view`, the fused
single-forward path, so even a cache *miss* is cheaper than the
historical two-pass ``predict_proba`` + ``features`` sequence.
Returned arrays are marked read-only: they are shared across lookups.

Keys are *exact* array content.  A cached full-set view is never
sliced to stand in for a subset computation: BLAS gemm blocking varies
with the row count, so a subset forward is not bit-identical to rows
of a full-set forward — subsets hash and cache as their own entries.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Tuple

import numpy as np

from ..obs import incr
from .layers import Module
from .models import Classifier

#: Default number of (probs, features) pairs kept per cache.
DEFAULT_MAX_ENTRIES = 8

CacheKey = Tuple[str, str]
ViewPair = Tuple[np.ndarray, np.ndarray]


def array_digest(arr: np.ndarray) -> str:
    """BLAKE2b content digest of an array (shape- and dtype-aware)."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def weights_digest(model: Module) -> str:
    """Content digest of a model's parameters and buffers.

    Two models with identical state dicts (e.g. a model and its
    :func:`repro.nn.serialize.clone_module` clone) share a digest, so
    cached views survive the detector's defensive cloning.
    """
    h = hashlib.blake2b(digest_size=16)
    for name, value in sorted(model.state_dict().items()):
        h.update(name.encode())
        h.update(array_digest(np.asarray(value)).encode())
    return h.hexdigest()


class FeatureCache:
    """LRU cache of fused model views keyed on (weights, data) content.

    Parameters
    ----------
    max_entries:
        LRU budget; ``0`` disables storage (every lookup misses) while
        keeping the API uniform.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, ViewPair]" = OrderedDict()  # repro: guarded-by(_lock)
        self.hits = 0  # repro: guarded-by(_lock)
        self.misses = 0  # repro: guarded-by(_lock)
        self.evictions = 0  # repro: guarded-by(_lock)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def view(self, model: Classifier, x: np.ndarray,
             batch_size: int = 256) -> ViewPair:
        """``(probs, features)`` of ``model`` over ``x``, cached.

        A hit returns the stored arrays without touching the model; a
        miss runs one fused forward pass (`predict_view`) and stores
        the result.  Outputs are bit-identical either way.

        Thread-safe: the platform shares one cache between the submit
        hot path and thread-mode update workers operating on model
        clones.  The (expensive) forward pass on a miss deliberately
        runs *outside* the lock — two threads missing on the same key
        compute twice and store the identical read-only result, which
        costs a duplicated forward but never blocks the hot path on a
        worker's inference.
        """
        key = (weights_digest(model), array_digest(x))
        with self._lock:
            pair = self._entries.get(key)
            if pair is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                incr("featurecache.hits")
                return pair
            self.misses += 1
        incr("featurecache.misses")
        probs, features = model.predict_view(x, batch_size=batch_size)
        probs.setflags(write=False)
        features.setflags(write=False)
        if self.max_entries:
            with self._lock:
                self._entries[key] = (probs, features)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    incr("featurecache.evictions")
        return probs, features

    def invalidate(self) -> None:
        """Drop every entry (e.g. to bound memory after a model swap)."""
        incr("featurecache.invalidations")
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for observability reports."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "entries": len(self._entries)}
