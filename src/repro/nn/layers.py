"""Stateful neural-network layers (modules) for ``repro.nn``.

The module system mirrors the familiar torch-style API at a small
scale: every layer derives from :class:`Module`, exposes
``parameters()`` for optimisers, a ``train()``/``eval()`` mode switch,
and a ``__call__``/``forward`` contract.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from . import functional as F
from . import init
from .rng import resolve_rng
from .tensor import Tensor


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self.training: bool = True

    # -- parameter / submodule discovery --------------------------------
    def parameters(self) -> List[Tensor]:
        """All trainable tensors of this module and its children."""
        params: List[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            params.extend(self._collect(value, seen))
        return params

    @staticmethod
    def _collect(value, seen: set) -> List[Tensor]:
        out: List[Tensor] = []
        if isinstance(value, Tensor) and value.requires_grad:
            if id(value) not in seen:
                seen.add(id(value))
                out.append(value)
        elif isinstance(value, Module):
            for p in value.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    out.append(p)
        elif isinstance(value, (list, tuple)):
            for item in value:
                out.extend(Module._collect(item, seen))
        return out

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all nested submodules."""
        yield self
        for value in self.__dict__.values():
            yield from self._child_modules(value)

    @staticmethod
    def _child_modules(value) -> Iterator["Module"]:
        if isinstance(value, Module):
            yield from value.modules()
        elif isinstance(value, (list, tuple)):
            for item in value:
                yield from Module._child_modules(item)

    # -- train / eval ----------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    # -- gradient management ----------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state dict ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter and buffer arrays, copied."""
        state: Dict[str, np.ndarray] = {}
        self._fill_state("", state)
        return state

    def _fill_state(self, prefix: str, state: Dict[str, np.ndarray]) -> None:
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Tensor):
                state[key] = value.data.copy()
            elif isinstance(value, Module):
                value._fill_state(key + ".", state)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._fill_state(f"{key}.{i}.", state)
                    elif isinstance(item, Tensor):
                        state[f"{key}.{i}"] = item.data.copy()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict)."""
        own = {}
        self._fill_refs("", own)
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}")
        for key, tensor in own.items():
            src = np.asarray(state[key])
            if src.shape != tensor.data.shape:
                raise ValueError(
                    f"shape mismatch for {key}: "
                    f"{src.shape} vs {tensor.data.shape}")
            tensor.data = src.astype(tensor.data.dtype).copy()

    def _fill_refs(self, prefix: str, refs: Dict[str, Tensor]) -> None:
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Tensor):
                refs[key] = value
            elif isinstance(value, Module):
                value._fill_refs(key + ".", refs)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._fill_refs(f"{key}.{i}.", refs)
                    elif isinstance(item, Tensor):
                        refs[f"{key}.{i}"] = item

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- forward -----------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.forward(x)


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.kaiming_uniform((out_features, in_features), in_features, rng),
            requires_grad=True, name="linear.weight")
        self.bias = (Tensor(init.zeros(out_features), requires_grad=True,
                            name="linear.bias") if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution layer over NCHW input."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = resolve_rng(rng)
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in, rng),
            requires_grad=True, name="conv.weight")
        self.bias = (Tensor(init.zeros(out_channels), requires_grad=True,
                            name="conv.bias") if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)


class ReLU(Module):
    """Rectified linear unit activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout driven by an explicit RNG for reproducibility."""

    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = resolve_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)


class BatchNorm1d(Module):
    """Batch normalisation over the feature axis of (N, F) input."""

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Tensor(init.ones(num_features), requires_grad=True,
                            name="bn.gamma")
        self.beta = Tensor(init.zeros(num_features), requires_grad=True,
                           name="bn.beta")
        # Running statistics are buffers, not parameters.
        self.running_mean = Tensor(init.zeros(num_features))
        self.running_var = Tensor(init.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, F), got {x.shape}")
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            m = self.momentum
            self.running_mean.data = (
                (1 - m) * self.running_mean.data + m * mean.data.ravel())
            self.running_var.data = (
                (1 - m) * self.running_var.data + m * var.data.ravel())
            norm = (x - mean) / (var + self.eps) ** 0.5
        else:
            norm = ((x - Tensor(self.running_mean.data))
                    / Tensor(np.sqrt(self.running_var.data + self.eps)))
        return norm * self.gamma + self.beta


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Tensor(init.ones(num_features), requires_grad=True)
        self.beta = Tensor(init.zeros(num_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        norm = (x - mean) / (var + self.eps) ** 0.5
        return norm * self.gamma + self.beta


class Sequential(Module):
    """Run layers in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


class Flatten(Module):
    """Collapse all non-batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
