"""Image-style data augmentation for NCHW (or flat) batches.

The paper's training pipelines use standard augmentation alongside
Mixup; this module provides deterministic, generator-driven transforms
that operate on numpy batches and compose into a pipeline usable from
:func:`repro.nn.train.fit` via ``augment_fn``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

AugmentFn = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def random_shift(max_pixels: int = 2) -> AugmentFn:
    """Random per-sample spatial shift with zero padding (NCHW)."""
    if max_pixels < 0:
        raise ValueError("max_pixels must be non-negative")

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if batch.ndim != 4:
            raise ValueError(f"random_shift expects NCHW, got {batch.shape}")
        out = np.zeros_like(batch)
        n, _, h, w = batch.shape
        dys = rng.integers(-max_pixels, max_pixels + 1, size=n)
        dxs = rng.integers(-max_pixels, max_pixels + 1, size=n)
        for i, (dy, dx) in enumerate(zip(dys, dxs)):
            src_y = slice(max(0, -dy), min(h, h - dy))
            dst_y = slice(max(0, dy), min(h, h + dy))
            src_x = slice(max(0, -dx), min(w, w - dx))
            dst_x = slice(max(0, dx), min(w, w + dx))
            out[i, :, dst_y, dst_x] = batch[i, :, src_y, src_x]
        return out

    return apply


def random_hflip(probability: float = 0.5) -> AugmentFn:
    """Random horizontal flip per sample (NCHW)."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if batch.ndim != 4:
            raise ValueError(f"random_hflip expects NCHW, got {batch.shape}")
        flip = rng.random(len(batch)) < probability
        out = batch.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out

    return apply


def gaussian_jitter(sigma: float = 0.05) -> AugmentFn:
    """Additive white noise; works on any batch shape."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if sigma == 0:
            return batch
        return batch + rng.normal(scale=sigma, size=batch.shape)

    return apply


def cutout(size: int = 4) -> AugmentFn:
    """Zero a random square patch per sample (NCHW)."""
    if size < 1:
        raise ValueError("size must be positive")

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if batch.ndim != 4:
            raise ValueError(f"cutout expects NCHW, got {batch.shape}")
        out = batch.copy()
        n, _, h, w = batch.shape
        ys = rng.integers(0, max(h - size + 1, 1), size=n)
        xs = rng.integers(0, max(w - size + 1, 1), size=n)
        for i, (y, x) in enumerate(zip(ys, xs)):
            out[i, :, y:y + size, x:x + size] = 0.0
        return out

    return apply


def compose(transforms: Sequence[AugmentFn],
            image_shape: Optional[Tuple[int, int, int]] = None) -> AugmentFn:
    """Chain transforms; optionally reshape flat batches to NCHW first.

    With ``image_shape`` set, flat ``(N, F)`` batches are reshaped to
    ``(N, C, H, W)`` for the transforms and flattened back afterwards —
    matching how the synthetic datasets store images.
    """
    transforms = list(transforms)

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flat = batch.ndim == 2 and image_shape is not None
        out = batch.reshape(len(batch), *image_shape) if flat else batch
        for transform in transforms:
            out = transform(out, rng)
        return out.reshape(len(batch), -1) if flat else out

    return apply
