"""Reusable training loops.

Two entry points cover everything the reproduction needs:

- :func:`fit` — generic supervised training with optional Mixup, used
  for the general-model initialisation (paper §IV-B) and the model
  update (Alg. 4);
- :func:`fit_epoch` — a single epoch, used by the fine-grained detector
  (Alg. 3), which interleaves training with sample selection.

Both report simple per-epoch history and count *sample-epochs* — the
number of (sample, gradient-step) pairs processed — which serves as the
machine-independent work model for the Fig. 8/12 timing analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..obs import add_work
from .data import DataLoader, LabeledDataset
from .losses import cross_entropy, soft_cross_entropy
from .metrics import evaluate_accuracy
from .mixup import mixup_batch
from .models import Classifier
from .optim import Optimizer, SGD
from .tensor import Tensor


@dataclass
class TrainReport:
    """History of a training run."""

    epoch_losses: List[float] = field(default_factory=list)
    val_accuracies: List[float] = field(default_factory=list)
    samples_processed: int = 0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def fit_epoch(model: Classifier, dataset: LabeledDataset,
              optimizer: Optimizer, rng: np.random.Generator,
              batch_size: int = 64, mixup_alpha: Optional[float] = None,
              num_classes: Optional[int] = None,
              augment_fn=None) -> tuple:
    """Run one optimisation epoch; returns (mean loss, samples processed).

    ``augment_fn(batch, rng)`` (see :mod:`repro.nn.augment`) is applied
    to each input batch before the optional Mixup.
    """
    if len(dataset) == 0:
        return 0.0, 0
    model.train()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, rng=rng)
    total_loss = 0.0
    total_n = 0
    classes = num_classes or model.num_classes
    for xb, yb in loader:
        xb = xb.reshape(len(xb), -1)
        if augment_fn is not None:
            xb = augment_fn(xb, rng).reshape(len(xb), -1)
        if mixup_alpha:
            mixed_x, mixed_t = mixup_batch(xb, yb, classes, rng,
                                           alpha=mixup_alpha)
            logits = model(Tensor(mixed_x))
            loss = soft_cross_entropy(logits, mixed_t)
        else:
            logits = model(Tensor(xb))
            loss = cross_entropy(logits, yb)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        total_loss += loss.item() * len(xb)
        total_n += len(xb)
    add_work(total_n)
    return total_loss / max(total_n, 1), total_n


def fit(model: Classifier, dataset: LabeledDataset,
        epochs: int, rng: np.random.Generator,
        lr: float = 0.05, momentum: float = 0.9,
        weight_decay: float = 1e-4, batch_size: int = 64,
        mixup_alpha: Optional[float] = None,
        validate_on: Optional[LabeledDataset] = None,
        keep_best: bool = False,
        optimizer: Optional[Optimizer] = None,
        augment_fn=None) -> TrainReport:
    """Train ``model`` on ``dataset`` for ``epochs`` epochs.

    Parameters
    ----------
    mixup_alpha:
        When set, each batch is mixed per the paper's Eq. 1–2.
    validate_on:
        Dataset whose observed-label accuracy is recorded each epoch.
    keep_best:
        With ``validate_on``, restore the weights of the epoch with the
        highest validation accuracy (the warming-up rule of Alg. 3).
    """
    if epochs < 0:
        raise ValueError(f"epochs must be non-negative, got {epochs}")
    opt = optimizer or SGD(model.parameters(), lr=lr, momentum=momentum,
                           weight_decay=weight_decay)
    report = TrainReport()
    best_acc = -1.0
    best_state = None
    for _ in range(epochs):
        loss, n = fit_epoch(model, dataset, opt, rng,
                            batch_size=batch_size, mixup_alpha=mixup_alpha,
                            augment_fn=augment_fn)
        report.epoch_losses.append(loss)
        report.samples_processed += n
        if validate_on is not None:
            acc = evaluate_accuracy(model, validate_on)
            report.val_accuracies.append(acc)
            if keep_best and acc > best_acc:
                best_acc = acc
                best_state = model.state_dict()
    if keep_best and best_state is not None:
        model.load_state_dict(best_state)
    return report


def evaluate_loss(model: Classifier, dataset: LabeledDataset,
                  use_true_labels: bool = False,
                  batch_size: int = 256) -> float:
    """Mean cross-entropy of ``model`` on ``dataset`` (no gradients)."""
    if len(dataset) == 0:
        return 0.0
    labels = dataset.true_y if use_true_labels else dataset.y
    if labels is None:
        raise ValueError("dataset has no true labels")
    model.eval()
    total = 0.0
    x = dataset.flat_x()
    for start in range(0, len(dataset), batch_size):
        xb = Tensor(x[start:start + batch_size])
        yb = labels[start:start + batch_size]
        loss = cross_entropy(model(xb), yb, reduction="sum")
        total += loss.item()
    return total / len(dataset)
