"""Catalog & platform persistence: survive restarts *and* crashes.

A real data platform runs for months; detection bookkeeping must
outlive the process.  These helpers serialise the mutable state of a
:class:`~repro.datalake.catalog.DataLakeCatalog` — detection records,
quarantine entries and the accumulated clean-inventory ids — to JSON,
and extend to full platform checkpoints (catalog + ENLD's ``P̃`` matrix
and inventory split + scheduler counters + model weights via
:mod:`repro.nn.serialize`).  Dataset payloads (the arrays) are *not*
serialised; they live in the lake itself and are re-registered on
restart.

Crash safety rests on two mechanisms:

- every file is written **atomically** (temp file in the target
  directory, then :func:`os.replace`), so a kill mid-write leaves the
  previous checkpoint intact, never a torn one;
- the platform appends one line per submission to a **journal**
  (JSON-lines, fsync'd), so after a crash the operator can diff the
  journal against the last checkpoint and re-submit the tail.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List

import numpy as np

from .catalog import (DataLakeCatalog, DetectionRecord, ModelVersion,
                      QuarantineRecord)

# v2 added the quarantine section; v3 adds the content-addressed model
# version lineage and the per-record ``model_version`` tag.  Older
# states still load — missing sections default to empty/None.
_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)

#: File names inside a platform checkpoint directory.
PLATFORM_STATE_FILE = "platform.json"
MODEL_WEIGHTS_FILE = "model.npz"


# ----------------------------------------------------------------------
# Atomic file primitives
# ----------------------------------------------------------------------
def atomic_write_json(path: str, payload: Dict) -> None:
    """Write JSON via temp-file + :func:`os.replace` (atomic on POSIX)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def atomic_write_npz(path: str, arrays: Dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` archive atomically (temp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp.npz")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


# ----------------------------------------------------------------------
# Catalog state
# ----------------------------------------------------------------------
def catalog_state(catalog: DataLakeCatalog) -> Dict:
    """Extract the serialisable state of a catalog."""
    records = []
    for name in catalog.processed_names:
        record = catalog.get_detection(name)
        records.append({
            "dataset_name": record.dataset_name,
            "clean_ids": [int(i) for i in record.clean_ids],
            "noisy_ids": [int(i) for i in record.noisy_ids],
            "process_seconds": record.process_seconds,
            "detector": record.detector,
            "model_version": record.model_version,
        })
    quarantined = []
    for name in catalog.quarantined_names:
        q = catalog.get_quarantine(name)
        quarantined.append({
            "dataset_name": q.dataset_name,
            "reasons": list(q.reasons),
            "num_samples": int(q.num_samples),
        })
    return {
        "version": _FORMAT_VERSION,
        "records": records,
        "quarantined": quarantined,
        "clean_inventory_ids": [int(i) for i in
                                catalog.clean_inventory_ids],
        "model_versions": [v.to_dict() for v in catalog.versions],
    }


def save_catalog(catalog: DataLakeCatalog, path: str) -> None:
    """Atomically write the catalog's detection state to ``path``."""
    atomic_write_json(path, catalog_state(catalog))


def restore_catalog_state(catalog: DataLakeCatalog, state: Dict,
                          strict: bool = True) -> int:
    """Restore an in-memory state dict into ``catalog`` transactionally.

    All records are staged and validated first; the catalog is only
    mutated once every stored record has been checked, so a failure in
    strict mode leaves the catalog exactly as it was (no partial
    restore).  Returns the number of detection records restored.
    """
    if state.get("version") not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported catalog state version {state.get('version')!r}")
    # Stage: build every record and validate its arrival is known.
    staged: List[DetectionRecord] = []
    known = set(catalog.arrival_names)
    for item in state["records"]:
        record = DetectionRecord(
            dataset_name=item["dataset_name"],
            clean_ids=np.asarray(item["clean_ids"], dtype=np.int64),
            noisy_ids=np.asarray(item["noisy_ids"], dtype=np.int64),
            process_seconds=item["process_seconds"],
            detector=item.get("detector", "enld"),
            model_version=item.get("model_version"),
        )
        if record.dataset_name not in known:
            if strict:
                raise KeyError(
                    f"cannot restore detection for unknown dataset "
                    f"{record.dataset_name!r}; register the arrival first "
                    f"or pass strict=False")
            continue
        staged.append(record)
    quarantined = [QuarantineRecord(dataset_name=item["dataset_name"],
                                    reasons=list(item["reasons"]),
                                    num_samples=int(item["num_samples"]))
                   for item in state.get("quarantined", [])]
    versions = [ModelVersion.from_dict(item)
                for item in state.get("model_versions", [])]
    # Commit: nothing above mutated the catalog.
    for record in staged:
        catalog.record_detection(record)
    for q in quarantined:
        catalog.quarantine_arrival(q)
    catalog.add_clean_inventory_ids(
        np.asarray(state["clean_inventory_ids"], dtype=np.int64))
    for version in versions:
        catalog.register_model_version(version)
    return len(staged)


def load_catalog_state(catalog: DataLakeCatalog, path: str,
                       strict: bool = True) -> int:
    """Restore detection records into ``catalog`` from ``path``.

    Arrivals referenced by stored records must already be registered
    (they come from the lake); with ``strict=False`` unknown datasets
    are skipped instead of raising.  The restore is transactional: in
    strict mode a validation failure leaves the catalog untouched.
    Returns the number of records restored.
    """
    with open(path) as fh:
        state = json.load(fh)
    return restore_catalog_state(catalog, state, strict=strict)


# ----------------------------------------------------------------------
# Per-submission journal (JSON lines, append-only, fsync'd)
# ----------------------------------------------------------------------
def append_journal(path: str, entry: Dict) -> None:
    """Append one JSON line to the submission journal, durably."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def read_journal(path: str) -> List[Dict]:
    """All journal entries in order; missing file reads as empty.

    A torn final line (the process died mid-append) is tolerated and
    dropped — everything before it is intact by construction.
    """
    if not os.path.exists(path):
        return []
    entries: List[Dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return entries
