"""Catalog persistence: survive platform restarts.

A real data platform runs for months; detection bookkeeping must
outlive the process.  These helpers serialise the mutable state of a
:class:`~repro.datalake.catalog.DataLakeCatalog` — detection records
and the accumulated clean-inventory ids — to JSON.  Dataset payloads
(the arrays) are *not* serialised; they live in the lake itself and are
re-registered on restart.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import numpy as np

from .catalog import DataLakeCatalog, DetectionRecord

_FORMAT_VERSION = 1


def catalog_state(catalog: DataLakeCatalog) -> Dict:
    """Extract the serialisable state of a catalog."""
    records = []
    for name in catalog.processed_names:
        record = catalog.get_detection(name)
        records.append({
            "dataset_name": record.dataset_name,
            "clean_ids": [int(i) for i in record.clean_ids],
            "noisy_ids": [int(i) for i in record.noisy_ids],
            "process_seconds": record.process_seconds,
            "detector": record.detector,
        })
    return {
        "version": _FORMAT_VERSION,
        "records": records,
        "clean_inventory_ids": [int(i) for i in
                                catalog.clean_inventory_ids],
    }


def save_catalog(catalog: DataLakeCatalog, path: str) -> None:
    """Write the catalog's detection state to ``path`` (JSON)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(catalog_state(catalog), fh, indent=2)


def load_catalog_state(catalog: DataLakeCatalog, path: str,
                       strict: bool = True) -> int:
    """Restore detection records into ``catalog`` from ``path``.

    Arrivals referenced by stored records must already be registered
    (they come from the lake); with ``strict=False`` unknown datasets
    are skipped instead of raising.  Returns the number of records
    restored.
    """
    with open(path) as fh:
        state = json.load(fh)
    if state.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported catalog state version {state.get('version')!r}")
    restored = 0
    for item in state["records"]:
        record = DetectionRecord(
            dataset_name=item["dataset_name"],
            clean_ids=np.asarray(item["clean_ids"], dtype=np.int64),
            noisy_ids=np.asarray(item["noisy_ids"], dtype=np.int64),
            process_seconds=item["process_seconds"],
            detector=item.get("detector", "enld"),
        )
        try:
            catalog.record_detection(record)
            restored += 1
        except KeyError:
            if strict:
                raise
    catalog.add_clean_inventory_ids(
        np.asarray(state["clean_inventory_ids"], dtype=np.int64))
    return restored
