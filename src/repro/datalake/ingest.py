"""Concurrent submission pipeline over the platform (DESIGN.md §14).

:class:`IngestPipeline` turns the one-at-a-time
:meth:`~repro.datalake.platform.NoisyLabelPlatform.submit` loop into a
storm-capable ingestion service: ``N`` arrival streams are fetched from
the lake concurrently, detection (the pure, CPU/BLAS-heavy middle of a
submission) fans out to a worker pool, while everything that owns
platform state — admission control, quarantine, the catalog, the
journal, clean-pool accumulation and the update scheduler — stays
serialized on the single **owner thread** running :meth:`run`.

Design (mirrors the REP701–705 discipline the updater established):

- **One owner thread, one event queue.**  Producer threads (one per
  stream) fetch arrivals and post them; worker threads post finished
  detections.  The owner is the only consumer and the only code that
  touches the platform, so no platform attribute is ever mutated off
  the owner thread.
- **Backpressure by admission ticket.**  Producers acquire a slot from
  a :class:`threading.BoundedSemaphore` of ``queue_capacity`` before
  posting an arrival; the owner releases the slot when the submission
  is fully committed (or quarantined).  In-flight submissions are
  therefore hard-capped at ``queue_capacity`` — a slow detector stalls
  the fetchers instead of ballooning memory.
- **Deterministic verdicts.**  Workers run
  :meth:`~repro.core.enld.ENLD.detect_stateless` with a *derived* RNG
  keyed on ``(config seed, dataset name, attempt)`` — never a shared
  stream — so a verdict is a pure function of (model, arrival, seed)
  and identical no matter how streams interleave.  ``mode="serial"``
  runs the exact same derivation inline, which is the sequential
  baseline the ``ingest_storm`` bench and the concurrency tests compare
  against, bit for bit.
- **Epoch guard.**  Each dispatched task pins the model epoch (the
  catalog version count) and an O(1) by-reference snapshot of
  ``(θ, I_c, P̃)``.  Commits happen strictly in admission order; if a
  model swap landed after a task was dispatched, the owner re-detects
  that arrival inline under the current model before committing, so
  verdict-to-version attribution matches the sequential semantics.

Worker functions are module-level, capture the ambient tracer at spawn
and re-install it (ContextVars do not cross threads), and deliberately
do **not** inherit the fault-injection span hook — chaos plans target
the owner-side stages, matching the updater's policy.
"""

from __future__ import annotations

import hashlib
import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.detector import DetectionResult
from ..core.enld import ENLD, DetectionSnapshot
from ..nn.data import LabeledDataset
from ..nn.models import Classifier
from ..nn.rng import STREAM_TAGS
from ..obs import (NullTracer, Stopwatch, Tracer, current_tracer, incr,
                   observe, trace_span, use_tracer)
from .platform import NoisyLabelPlatform, SubmissionReport
from .resilience import (FailureEvent, RetryPolicy, coarse_fallback_detect,
                         describe_failure)
from .stream import ArrivalStream

#: Worker-pool flavours: ``serial`` (inline on the owner thread — the
#: sequential baseline), ``thread`` (default) and ``process``.
INGEST_MODES = ("serial", "thread", "process")


#: A lake-fetch model: materialise one arrival's payload (the I/O bound
#: prefix of a submission).  Identity when ``None``.
FetchFn = Callable[[LabeledDataset], LabeledDataset]


def arrival_rng_key(name: str) -> int:
    """Stable 64-bit key of a dataset name (BLAKE2b)."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def arrival_rng(seed: int, name: str, attempt: int = 0
                ) -> np.random.Generator:
    """The detection RNG for one arrival (order-independent).

    Keyed on the config seed, the dataset name and the retry attempt —
    never on submission order — so concurrent and serial ingestion draw
    identical streams per arrival.
    """
    return np.random.default_rng(
        [seed, STREAM_TAGS.DETECT, arrival_rng_key(name), attempt])


@dataclass
class _Task:
    """One admitted arrival dispatched to the detection pool."""

    seq: int
    dataset: LabeledDataset
    snapshot: DetectionSnapshot
    epoch: int


@dataclass
class _Done:
    """A finished detection travelling back to the owner thread."""

    seq: int
    dataset: LabeledDataset
    epoch: int
    result: Optional[DetectionResult] = None
    retries: int = 0
    failures: List[FailureEvent] = field(default_factory=list)
    degraded: bool = False
    error: Optional[str] = None


#: Owner-bound events: arrivals from producers, completions from
#: workers, stream/worker exits.
_Event = Tuple[str, Union[LabeledDataset, _Done, None]]


#: A pure detection callable ``(dataset, rng) -> DetectionResult``.
DetectFn = Callable[[LabeledDataset, np.random.Generator],
                    DetectionResult]


def retry_detect(
    detect: DetectFn, fallback_model: Classifier, dataset: LabeledDataset,
    seed: int, retry: RetryPolicy, fallback: bool,
) -> Tuple[DetectionResult, int, List[FailureEvent], bool]:
    """Stateless analogue of the platform's resilient detection.

    Same retry-then-degrade ladder as ``submit()`` but every RNG is
    derived from ``(seed, dataset name, attempt)`` so the outcome does
    not depend on which worker runs it or when.  Returns
    ``(result, retries, failures, degraded)``; raises only when
    ``fallback`` is disabled and the budget is exhausted.
    """
    failures: List[FailureEvent] = []
    attempts = 1 + retry.max_retries
    for attempt in range(attempts):
        if attempt > 0:
            jitter_rng = np.random.default_rng(
                [seed, STREAM_TAGS.INGEST_JITTER,
                 arrival_rng_key(dataset.name), attempt])
            retry.sleep(retry.backoff_seconds(attempt - 1, rng=jitter_rng))
        rng = arrival_rng(seed, dataset.name, attempt)
        try:
            return detect(dataset, rng), attempt, failures, False
        except Exception as exc:  # noqa: BLE001 — degrade, never die
            failures.append(describe_failure(attempt + 1, exc))
    if not fallback:
        raise RuntimeError(
            f"detection failed after {attempts} attempt(s) for "
            f"{dataset.name!r}: {failures[-1].error}")
    result = coarse_fallback_detect(fallback_model, dataset)
    return result, attempts - 1, failures, True


def detect_resilient_stateless(
    enld: ENLD, snapshot: DetectionSnapshot, dataset: LabeledDataset,
    seed: int, retry: RetryPolicy, fallback: bool,
) -> Tuple[DetectionResult, int, List[FailureEvent], bool]:
    """:func:`retry_detect` over :meth:`ENLD.detect_stateless`."""

    def run(d: LabeledDataset, rng: np.random.Generator
            ) -> DetectionResult:
        return enld.detect_stateless(d, rng, snapshot=snapshot)

    return retry_detect(run, snapshot[0], dataset, seed, retry, fallback)


def _producer_loop(stream: ArrivalStream, fetch: Optional[FetchFn],
                   slots: threading.Semaphore, stop: threading.Event,
                   events: "queue.Queue[_Event]",
                   tracer: Union[Tracer, NullTracer]) -> None:
    """Fetch one stream's arrivals and post them to the owner.

    Runs on a producer thread: the lake fetch (I/O latency) happens
    here, overlapped across streams; the semaphore acquire is the
    backpressure point.  ``stop`` aborts the stream early when the
    owner is tearing down after an error.
    """
    with use_tracer(tracer):
        for dataset in stream:
            if fetch is not None:
                with trace_span("lake_fetch"):
                    dataset = fetch(dataset)
            admitted = False
            while not stop.is_set():
                if slots.acquire(timeout=0.05):
                    admitted = True
                    break
            if not admitted:
                break
            events.put(("arrival", dataset))
        events.put(("stream_done", None))


def _worker_loop(tasks: "queue.Queue[Optional[_Task]]",
                 events: "queue.Queue[_Event]",
                 enld: ENLD, seed: int, retry: RetryPolicy,
                 fallback: bool,
                 tracer: Union[Tracer, NullTracer]) -> None:
    """Detection worker: pure compute, no platform state.

    Only ever touches the task payload, the (internally locked) feature
    cache, and the re-installed ambient tracer; results travel back to
    the owner as immutable :class:`_Done` envelopes.
    """
    with use_tracer(tracer):
        while True:
            task = tasks.get()
            if task is None:
                break
            try:
                result, retries, failures, degraded = \
                    detect_resilient_stateless(
                        enld, task.snapshot, task.dataset, seed, retry,
                        fallback)
                done = _Done(seq=task.seq, dataset=task.dataset,
                             epoch=task.epoch, result=result,
                             retries=retries, failures=failures,
                             degraded=degraded)
            except Exception as exc:  # noqa: BLE001 — owner re-raises
                done = _Done(seq=task.seq, dataset=task.dataset,
                             epoch=task.epoch, error=repr(exc))
            events.put(("done", done))


# -- process mode ------------------------------------------------------
# Spawned workers re-derive everything from this module-level state,
# installed once per worker by the initializer (REP704: module-level
# targets only, nothing bound or nested crosses the pickle boundary).
# Only the plain-array detection inputs ship — never the live ENLD,
# whose caches hold locks that cannot cross a pickle boundary.
_PROCESS_STATE: Dict[str, object] = {}


def _process_init(config: object, model: object,
                  candidates: LabeledDataset, cond_prob: np.ndarray,
                  seed: int, retry: RetryPolicy,
                  fallback: bool) -> None:
    from ..core.config import ENLDConfig
    from ..core.detector import FineGrainedDetector
    assert isinstance(config, ENLDConfig)
    _PROCESS_STATE["detector"] = FineGrainedDetector(config)
    _PROCESS_STATE["model"] = model
    _PROCESS_STATE["candidates"] = candidates
    _PROCESS_STATE["cond_prob"] = cond_prob
    _PROCESS_STATE["seed"] = seed
    _PROCESS_STATE["retry"] = retry
    _PROCESS_STATE["fallback"] = fallback


def _process_detect(dataset: LabeledDataset
                    ) -> Tuple[DetectionResult, int,
                               List[FailureEvent], bool]:
    from ..core.detector import FineGrainedDetector
    detector = _PROCESS_STATE["detector"]
    assert isinstance(detector, FineGrainedDetector)
    model = _PROCESS_STATE["model"]
    assert isinstance(model, Classifier)
    candidates = _PROCESS_STATE["candidates"]
    assert isinstance(candidates, LabeledDataset)
    cond_prob = _PROCESS_STATE["cond_prob"]
    assert isinstance(cond_prob, np.ndarray)
    retry = _PROCESS_STATE["retry"]
    assert isinstance(retry, RetryPolicy)

    def run(d: LabeledDataset, rng: np.random.Generator
            ) -> DetectionResult:
        watch = Stopwatch()
        with watch:
            result = detector.detect(model, d, candidates, cond_prob,
                                     rng)
        result.process_seconds = watch.seconds
        return result

    return retry_detect(run, model, dataset,
                        int(_PROCESS_STATE["seed"]),  # type: ignore[call-overload]
                        retry, bool(_PROCESS_STATE["fallback"]))


@dataclass(frozen=True)
class IngestConfig:
    """Worker-pool shape of one ingestion run.

    ``queue_capacity`` caps *in-flight* submissions (fetched but not
    yet committed); producers block once it is reached.  ``absorb``
    additionally grows the platform's sharded lake archive with each
    admitted arrival's voted-clean rows (a no-op without one).
    """

    mode: str = "thread"
    workers: int = 2
    queue_capacity: int = 8
    absorb: bool = False

    def __post_init__(self) -> None:
        if self.mode not in INGEST_MODES:
            raise ValueError(
                f"mode must be one of {INGEST_MODES}, got {self.mode!r}")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")


@dataclass
class StormReport:
    """Outcome of one :meth:`IngestPipeline.run` storm."""

    reports: Dict[str, SubmissionReport]
    seconds: float
    datasets: int = 0
    samples: int = 0
    quarantined: int = 0
    degraded: int = 0
    max_queue_depth: int = 0
    max_inflight: int = 0

    @property
    def datasets_per_second(self) -> float:
        return self.datasets / self.seconds if self.seconds else 0.0

    @property
    def samples_per_second(self) -> float:
        return self.samples / self.seconds if self.seconds else 0.0


class IngestPipeline:
    """Concurrent (or baseline-serial) multi-stream ingestion.

    Parameters
    ----------
    platform:
        The live platform; all of its state is owned by the thread
        calling :meth:`run` for the duration of the storm.
    config:
        Pool shape (:class:`IngestConfig`); default two threads.
    fetch:
        Optional lake-fetch callable applied to every arrival on the
        producer threads — model I/O latency here (the ``ingest_storm``
        bench does) or plug in a real lake client.
    """

    def __init__(self, platform: NoisyLabelPlatform,
                 config: Optional[IngestConfig] = None,
                 fetch: Optional[FetchFn] = None) -> None:
        self.platform = platform
        self.config = config or IngestConfig()
        self.fetch = fetch

    # ------------------------------------------------------------------
    def run(self, streams: Sequence[ArrivalStream]) -> StormReport:
        """Ingest every arrival of every stream; returns the report.

        ``mode="serial"`` processes the streams round-robin on the
        calling thread (the sequential baseline — identical RNG
        derivation, zero concurrency); the other modes fan detection
        out while this thread serializes platform state.

        Dataset names must be unique across the storm (reports and the
        derived detection RNG are keyed by name); a repeat raises
        :class:`ValueError` in every mode.
        """
        with trace_span("ingest_run"):
            if self.config.mode == "serial":
                return self._run_serial(streams)
            return self._run_concurrent(streams)

    # ------------------------------------------------------------------
    def _commit(self, done: _Done,
                report_map: Dict[str, SubmissionReport]) -> None:
        """Fold one finished detection into the platform (owner only)."""
        platform = self.platform
        updated, update_failures = platform.poll_updates()
        result = done.result
        if done.error is not None or result is None:
            raise RuntimeError(
                f"worker detection failed for {done.dataset.name!r}: "
                f"{done.error}")
        if done.epoch != len(platform.catalog.versions):
            # A model swap landed after dispatch: re-judge under the
            # current model so the committed verdict matches what
            # sequential submission would have produced here.
            incr("ingest.epoch_redetect")
            result, retries, failures, degraded = \
                detect_resilient_stateless(
                    platform.enld, platform.enld.detection_snapshot(),
                    done.dataset, platform.enld.config.seed,
                    platform.retry, platform.fallback)
            done = _Done(seq=done.seq, dataset=done.dataset,
                         epoch=len(platform.catalog.versions),
                         result=result, retries=retries,
                         failures=failures, degraded=degraded)
        platform.enld.commit_detection(result)
        platform.retries_total += done.retries
        if done.retries:
            incr("platform.retries", done.retries)
        if done.degraded:
            platform.degraded_submissions += 1
            incr("platform.degraded")
        report = platform.commit_detection(
            done.dataset, result, retries=done.retries,
            failures=update_failures + done.failures,
            degraded=done.degraded, updated=updated)
        if self.config.absorb and not done.degraded:
            platform.absorb_arrival(
                done.dataset.mask(result.clean_mask,
                                  name=f"{done.dataset.name}/clean"))
        platform.journal_report(done.dataset, report)
        report_map[done.dataset.name] = report

    def _quarantine(self, report: SubmissionReport,
                    dataset: LabeledDataset,
                    report_map: Dict[str, SubmissionReport]) -> None:
        platform = self.platform
        platform.journal_report(dataset, report)
        report_map[dataset.name] = report

    @staticmethod
    def _claim_name(name: str, seen: set) -> None:
        """Reject a repeated dataset name within one storm.

        Storm reports, journal entries and the derived detection RNG
        are all keyed by dataset name; a repeat would silently
        overwrite the first arrival's report (and draw the identical
        RNG stream), so it fails loudly at admission instead.
        """
        if name in seen:
            raise ValueError(
                f"duplicate dataset name {name!r} in storm: reports and "
                f"detection RNG streams are keyed by name, so every "
                f"arrival needs a unique name")
        seen.add(name)

    # ------------------------------------------------------------------
    def _run_serial(self, streams: Sequence[ArrivalStream]
                    ) -> StormReport:
        """Sequential baseline: fetch + detect inline, round-robin."""
        platform = self.platform
        reports: Dict[str, SubmissionReport] = {}
        seen_names: set = set()
        samples = 0
        watch = Stopwatch()
        with watch:
            iterators = [iter(s) for s in streams]
            pending = list(iterators)
            while pending:
                still = []
                for it in pending:
                    try:
                        dataset = next(it)
                    except StopIteration:
                        continue
                    still.append(it)
                    if self.fetch is not None:
                        with trace_span("lake_fetch"):
                            dataset = self.fetch(dataset)
                    self._claim_name(dataset.name, seen_names)
                    samples += len(dataset)
                    quarantined = platform.admit_arrival(dataset)
                    if quarantined is not None:
                        self._quarantine(quarantined, dataset, reports)
                        continue
                    result, retries, failures, degraded = \
                        detect_resilient_stateless(
                            platform.enld,
                            platform.enld.detection_snapshot(), dataset,
                            platform.enld.config.seed, platform.retry,
                            platform.fallback)
                    done = _Done(seq=0, dataset=dataset,
                                 epoch=len(platform.catalog.versions),
                                 result=result, retries=retries,
                                 failures=failures, degraded=degraded)
                    self._commit(done, reports)
                pending = still
        return self._finish(reports, samples, watch.seconds,
                            max_depth=1, max_inflight=0)

    # ------------------------------------------------------------------
    def _run_concurrent(self, streams: Sequence[ArrivalStream]
                        ) -> StormReport:
        cfg = self.config
        platform = self.platform
        events: "queue.Queue[_Event]" = queue.Queue()
        tasks: "queue.Queue[Optional[_Task]]" = queue.Queue()
        slots = threading.Semaphore(cfg.queue_capacity)
        stop = threading.Event()
        tracer = current_tracer()
        seed = platform.enld.config.seed

        producers = [
            threading.Thread(
                target=_producer_loop,
                args=(stream, self.fetch, slots, stop, events, tracer),
                name=f"ingest-producer-{i}", daemon=True)
            for i, stream in enumerate(streams)]
        pool_size = cfg.workers if cfg.mode == "thread" else 0
        workers = [
            threading.Thread(
                target=_worker_loop,
                args=(tasks, events, platform.enld, seed, platform.retry,
                      platform.fallback, tracer),
                name=f"ingest-worker-{i}", daemon=True)
            for i in range(pool_size)]
        executor = None
        pool_epoch: Optional[int] = None
        if cfg.mode == "process":
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            model, candidates, cond_prob = \
                platform.enld.detection_snapshot()
            # Spawned workers detect under this snapshot for the whole
            # storm, so every process task carries the epoch frozen
            # into the pool here — not the dispatch-time epoch — and a
            # later hot-swap forces the owner's re-detection.
            pool_epoch = len(platform.catalog.versions)
            # Injectable sleep callables (often lambdas, e.g.
            # NO_WAIT_RETRY's) cannot cross the pickle boundary; spawn
            # workers get the same budget with the real time.sleep.
            retry_spec = RetryPolicy(
                max_retries=platform.retry.max_retries,
                backoff_base=platform.retry.backoff_base,
                max_backoff=platform.retry.max_backoff,
                jitter=platform.retry.jitter)
            executor = ProcessPoolExecutor(
                max_workers=cfg.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_process_init,
                initargs=(platform.enld.config, model, candidates,
                          cond_prob, seed, retry_spec,
                          platform.fallback))

        reports: Dict[str, SubmissionReport] = {}
        ready: Dict[int, _Done] = {}
        seen_names: set = set()
        samples = 0
        depth = 0
        inflight = 0
        max_depth = 0
        max_inflight = 0
        next_seq = 0
        next_commit = 0
        streams_live = len(streams)
        watch = Stopwatch()
        with watch:
            for thread in (*producers, *workers):
                thread.start()
            try:
                while streams_live or depth:
                    kind, payload = events.get()
                    if kind == "stream_done":
                        streams_live -= 1
                        continue
                    if kind == "arrival":
                        assert isinstance(payload, LabeledDataset)
                        self._claim_name(payload.name, seen_names)
                        depth += 1
                        max_depth = max(max_depth, depth)
                        observe("ingest.queue_depth", depth)
                        samples += len(payload)
                        quarantined = platform.admit_arrival(payload)
                        if quarantined is not None:
                            self._quarantine(quarantined, payload,
                                             reports)
                            depth -= 1
                            slots.release()
                            continue
                        task = _Task(
                            seq=next_seq, dataset=payload,
                            snapshot=platform.enld.detection_snapshot(),
                            epoch=(len(platform.catalog.versions)
                                   if pool_epoch is None
                                   else pool_epoch))
                        next_seq += 1
                        inflight += 1
                        max_inflight = max(max_inflight, inflight)
                        observe("ingest.inflight_workers", inflight)
                        if executor is not None:
                            self._dispatch_process(executor, task,
                                                   events)
                        else:
                            tasks.put(task)
                        continue
                    assert kind == "done" and isinstance(payload, _Done)
                    inflight -= 1
                    observe("ingest.inflight_workers", inflight)
                    ready[payload.seq] = payload
                    while next_commit in ready:
                        self._commit(ready.pop(next_commit), reports)
                        next_commit += 1
                        depth -= 1
                        observe("ingest.queue_depth", depth)
                        slots.release()
            finally:
                stop.set()
                for _ in workers:
                    tasks.put(None)
                for thread in (*producers, *workers):
                    thread.join()
                if executor is not None:
                    executor.shutdown()
        return self._finish(reports, samples, watch.seconds,
                            max_depth=max_depth,
                            max_inflight=max_inflight)

    @staticmethod
    def _dispatch_process(executor: object, task: _Task,
                          events: "queue.Queue[_Event]") -> None:
        """Ship one task to the process pool; completions re-enter the
        owner's event queue from the executor's collector thread."""
        from concurrent.futures import Future, ProcessPoolExecutor
        assert isinstance(executor, ProcessPoolExecutor)
        future = executor.submit(_process_detect, task.dataset)

        def _deliver(fut: "Future[Tuple[DetectionResult, int, List[FailureEvent], bool]]") -> None:
            error = fut.exception()
            if error is not None:
                events.put(("done", _Done(
                    seq=task.seq, dataset=task.dataset, epoch=task.epoch,
                    error=repr(error))))
                return
            result, retries, failures, degraded = fut.result()
            events.put(("done", _Done(
                seq=task.seq, dataset=task.dataset, epoch=task.epoch,
                result=result, retries=retries, failures=failures,
                degraded=degraded)))

        future.add_done_callback(_deliver)

    # ------------------------------------------------------------------
    def _finish(self, reports: Dict[str, SubmissionReport],
                samples: int, seconds: float, *, max_depth: int,
                max_inflight: int) -> StormReport:
        quarantined = sum(1 for r in reports.values() if r.quarantined)
        degraded = sum(1 for r in reports.values() if r.degraded)
        incr("ingest.datasets", len(reports))
        incr("ingest.samples", samples)
        return StormReport(
            reports=reports, seconds=seconds, datasets=len(reports),
            samples=samples, quarantined=quarantined, degraded=degraded,
            max_queue_depth=max_depth, max_inflight=max_inflight)
