"""Platform resilience: admission control, degradation, fault injection.

A data-lake deployment of ENLD runs for months against an ever-growing
lake (paper Fig. 1); one malformed arrival or one mid-iteration failure
must not take the service down.  This module supplies the three
hardening primitives the :class:`~repro.datalake.platform.NoisyLabelPlatform`
composes:

- **admission control** — :func:`admission_errors` validates an arrival
  before any detection work touches it (empty/NaN/inf features, labels
  outside ``[0, num_classes) ∪ {MISSING_LABEL}``, duplicate ids, name
  collisions); rejects are quarantined into the catalog with the reason
  list instead of raising;
- **graceful degradation** — :class:`RetryPolicy` drives exponential
  backoff around the fine-grained detector (Alg. 3) with a reseeded
  RNG per attempt, and :func:`coarse_fallback_detect` provides the
  model-free last resort: the general-model disagreement decision that
  also underlies the coarse ambiguity test (Alg. 2 line 1) and the
  Confident-Learning-style baselines;
- **deterministic fault injection** — :class:`FaultPlan` /
  :class:`FaultInjector` hook into the obs-instrumented stage
  boundaries (:func:`repro.obs.use_span_hook`) so tests and the
  ``repro chaos`` CLI can prove the above without flaky sleeps: every
  injection site is keyed by span name and triggered either on the
  N-th entry or by a seeded coin flip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..nn.data import LabeledDataset
from ..nn.models import Classifier
from ..noise.injector import MISSING_LABEL
from ..core.detector import DetectionResult

#: Stage (span) names a fault plan may target — the obs-instrumented
#: boundaries of the submit pipeline plus the model-update service
#: stages (``update_train`` fires as a job starts training,
#: ``update_swap`` as the hot-swap begins, ``update_publish`` as the
#: new version is recorded).  ``setup`` is deliberately absent: a
#: platform that cannot even initialise has nothing to degrade to.
INJECTABLE_STAGES = (
    "detect", "initial_views", "contrastive_sampling", "warmup",
    "iteration", "fine_tune", "vote", "recompute_views", "resample",
    "model_update", "update_train", "update_swap", "update_publish",
    "shard_flush",
)


class InjectedFault(RuntimeError):
    """A failure injected by a :class:`FaultPlan` at a stage boundary."""

    def __init__(self, stage: str, occurrence: int) -> None:
        super().__init__(f"injected fault at stage {stage!r} "
                         f"(occurrence {occurrence})")
        self.stage = stage
        self.occurrence = occurrence


@dataclass(frozen=True)
class FaultRule:
    """One deterministic injection site.

    Parameters
    ----------
    stage:
        Span name to target (see :data:`INJECTABLE_STAGES`).
    probability:
        Chance of firing at each entry into the stage, drawn from the
        plan's seeded RNG (deterministic for a fixed plan seed).
    on_call:
        Fire exactly on the ``on_call``-th entry (1-based) instead of
        probabilistically.  Mutually exclusive with ``probability``.
    times:
        Maximum number of injections this rule performs; set to
        ``max_retries + 1`` to exhaust a platform's retry budget and
        force the coarse fallback.
    """

    stage: str
    probability: float = 0.0
    on_call: Optional[int] = None
    times: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.on_call is not None and self.on_call < 1:
            raise ValueError(f"on_call is 1-based, got {self.on_call}")
        if self.on_call is not None and self.probability:
            raise ValueError("give either on_call or probability, not both")
        if self.on_call is None and self.probability == 0.0:
            raise ValueError("rule fires never: set on_call or probability")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


class FaultPlan:
    """A seeded, reproducible collection of :class:`FaultRule`\\ s.

    The plan itself is immutable configuration; call :meth:`injector`
    to obtain a fresh stateful :class:`FaultInjector` (counters zeroed,
    RNG reseeded), so replaying a plan reproduces the same faults.
    """

    def __init__(self, rules: Iterable[FaultRule], seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed

    def injector(self) -> "FaultInjector":
        """A fresh injector for this plan (deterministic per plan)."""
        return FaultInjector(self.rules, seed=self.seed)

    def __len__(self) -> int:
        return len(self.rules)


class FaultInjector:
    """Stateful span hook raising :class:`InjectedFault` per the plan.

    Install with ``use_span_hook(injector)``; every ``trace_span(name)``
    entry calls the injector, which counts the occurrence and raises
    when a rule triggers.  ``injected`` records what actually fired,
    letting tests assert exact counter agreement with the plan.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self._rules = list(rules)
        self._rng = np.random.default_rng(seed)
        self.calls: Dict[str, int] = {}
        self.injected: Dict[str, int] = {}
        self._fired: List[int] = [0] * len(self._rules)

    def __call__(self, stage: str) -> None:
        count = self.calls.get(stage, 0) + 1
        self.calls[stage] = count
        for i, rule in enumerate(self._rules):
            if rule.stage != stage or self._fired[i] >= rule.times:
                continue
            if rule.on_call is not None:
                fire = count == rule.on_call or (
                    # Keep firing on consecutive entries until the
                    # budget is spent, so retries re-hit the fault.
                    self._fired[i] > 0 and count > rule.on_call)
            else:
                fire = bool(self._rng.random() < rule.probability)
            if fire:
                self._fired[i] += 1
                self.injected[stage] = self.injected.get(stage, 0) + 1
                raise InjectedFault(stage, count)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def admission_errors(dataset: LabeledDataset, num_classes: int,
                     existing_names: Iterable[str] = ()) -> List[str]:
    """Validate an arrival before detection; return rejection reasons.

    An empty list means the arrival is admissible.  Checks are ordered
    cheap-to-expensive and all of them run, so the quarantine record
    carries the complete reason list.
    """
    errors: List[str] = []
    if dataset.name in set(existing_names):
        errors.append(f"name collision: {dataset.name!r} already registered")
    if len(dataset) == 0:
        errors.append("empty dataset: no samples to screen")
        return errors
    x = np.asarray(dataset.x, dtype=float)
    if not np.isfinite(x).all():
        bad = int((~np.isfinite(x).reshape(len(dataset), -1).all(axis=1))
                  .sum())
        errors.append(f"non-finite features: {bad} sample(s) contain "
                      "NaN or inf")
    y = np.asarray(dataset.y)
    if not np.issubdtype(y.dtype, np.integer):
        errors.append(f"non-integer labels: dtype {y.dtype}")
    else:
        valid = ((y >= 0) & (y < num_classes)) | (y == MISSING_LABEL)
        if not valid.all():
            bad_vals = sorted(set(int(v) for v in y[~valid]))[:5]
            errors.append(
                f"labels outside [0, {num_classes}) ∪ {{{MISSING_LABEL}}}: "
                f"{int((~valid).sum())} sample(s), e.g. {bad_vals}")
    ids = np.asarray(dataset.ids)
    if not np.issubdtype(ids.dtype, np.integer):
        errors.append(f"non-integer ids: dtype {ids.dtype}")
    elif len(np.unique(ids)) != len(ids):
        errors.append(
            f"duplicate ids: {len(ids) - len(np.unique(ids))} repeated")
    return errors


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget for fine-grained detection.

    ``sleep`` is injectable so tests (and the chaos CLI) never block on
    real backoff waits; attempt ``i`` (0-based) sleeps
    ``min(backoff_base * 2**i, max_backoff)`` seconds before retrying.

    ``jitter`` randomises each backoff by up to ``±jitter`` of its
    nominal value *when the caller supplies a seeded generator* —
    deterministic backoff synchronises retry storms across concurrent
    submissions, while a seeded jitter stream keeps replays
    bit-identical.  Without an ``rng`` the schedule stays exactly the
    nominal exponential one.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    max_backoff: float = 2.0
    jitter: float = 0.25
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.max_backoff < 0:
            raise ValueError("backoff durations must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_seconds(self, attempt: int,
                        rng: Optional[np.random.Generator] = None
                        ) -> float:
        """Backoff before retry ``attempt`` (0-based retry index).

        With ``rng`` the nominal value is scaled by a uniform factor in
        ``[1 - jitter, 1 + jitter]`` (still capped at ``max_backoff``);
        pass a generator derived from the platform RNG stream so the
        schedule replays deterministically.
        """
        base = min(self.backoff_base * (2 ** attempt), self.max_backoff)
        if rng is None or self.jitter == 0.0 or base == 0.0:
            return base
        factor = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return float(min(base * factor, self.max_backoff))


#: Retry policy that never waits — used by tests and ``repro chaos``.
NO_WAIT_RETRY = RetryPolicy(backoff_base=0.0, sleep=lambda _s: None)


def coarse_fallback_detect(model: Classifier,
                           dataset: LabeledDataset) -> DetectionResult:
    """Model-free fallback: flag general-model disagreements as noisy.

    This is the coarse decision of the ambiguity test (Alg. 2 line 1)
    applied directly: a labelled sample is noisy iff
    ``argmax M(x, θ) ≠ ỹ``.  No fine-tuning, no voting — and therefore
    no pseudo labels for missing-label rows (``pseudo_labels`` is
    ``None``) and no stringent inventory votes.
    """
    labeled = dataset.y != MISSING_LABEL
    preds = model.predict(dataset.flat_x())
    noisy = (preds != dataset.y) & labeled
    return DetectionResult(
        clean_mask=labeled & ~noisy,
        noisy_mask=noisy,
        inventory_clean_positions=np.empty(0, dtype=int),
        pseudo_labels=None,
        detector_name="coarse-fallback",
    )


@dataclass
class FailureEvent:
    """One failed detection attempt in a degradation chain."""

    attempt: int
    stage: Optional[str]
    error: str

    def to_dict(self) -> dict:
        return {"attempt": self.attempt, "stage": self.stage,
                "error": self.error}


def describe_failure(attempt: int, exc: BaseException) -> FailureEvent:
    """Normalise an exception into a journal-ready failure event."""
    stage = exc.stage if isinstance(exc, InjectedFault) else None
    return FailureEvent(attempt=attempt, stage=stage,
                        error=f"{type(exc).__name__}: {exc}")
