"""Simulation of continuously arriving incremental datasets.

:class:`ArrivalStream` turns a clean data pool into the paper's arrival
process: shard the pool into unbalanced incremental datasets
(§V-A1), corrupt each shard's labels through a transition matrix
(§V-A2), and hand them out one at a time.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..datasets.splits import ShardPlan, make_incremental_shards
from ..nn.data import LabeledDataset
from ..noise.injector import corrupt_labels, drop_labels
from ..noise.transition import validate_transition


class ArrivalStream:
    """Deterministic stream of noisy incremental datasets.

    Parameters
    ----------
    pool:
        Clean incremental pool ``D`` (with ground-truth labels).
    plan:
        Sharding plan (how many arrivals, classes per arrival).
    transition:
        Label-noise transition matrix applied independently per shard.
        ``None`` leaves shards clean.
    missing_fraction:
        Optional fraction of labels to drop per shard (paper §V-H).
    seed:
        Seeds sharding and corruption; the same seed replays the same
        stream.
    """

    def __init__(self, pool: LabeledDataset, plan: ShardPlan,
                 transition: Optional[np.ndarray] = None,
                 missing_fraction: float = 0.0,
                 num_classes: Optional[int] = None,
                 seed: int = 0) -> None:
        if transition is not None:
            transition = validate_transition(transition)
        self.pool = pool
        self.plan = plan
        self.transition = transition
        self.missing_fraction = missing_fraction
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._shards = make_incremental_shards(pool, plan, rng,
                                               num_classes=num_classes)
        # Global arrival index of each shard — identity for a parent
        # stream, a strided subset for split() children.  Corruption
        # RNGs are keyed on these, never on the local position.
        self._indices: List[int] = list(range(len(self._shards)))

    def __len__(self) -> int:
        return len(self._shards)

    def __iter__(self) -> Iterator[LabeledDataset]:
        for index, shard in zip(self._indices, self._shards):
            yield self._corrupt(shard, index)

    def arrivals(self) -> List[LabeledDataset]:
        """All arrivals materialised in order."""
        return list(iter(self))

    def split(self, n: int) -> List["ArrivalStream"]:
        """Partition the stream into ``n`` concurrent child streams.

        Child ``i`` yields the parent's arrivals ``i, i+n, i+2n, …``
        — same shard rows, same labels.  Each arrival's corruption RNG
        stays keyed on the **parent** seed and the arrival's **global**
        index, so the children replay deterministically no matter how
        they are interleaved: the union of the children's arrivals is
        exactly the parent's arrival set, bit for bit, and round-robin
        interleaving of the children reproduces the parent's order.
        """
        if n < 1:
            raise ValueError(f"cannot split a stream {n} ways")
        children: List[ArrivalStream] = []
        for i in range(n):
            child = ArrivalStream.__new__(ArrivalStream)
            child.pool = self.pool
            child.plan = self.plan
            child.transition = self.transition
            child.missing_fraction = self.missing_fraction
            child.seed = self.seed
            child._shards = self._shards[i::n]
            child._indices = self._indices[i::n]
            children.append(child)
        return children

    def _corrupt(self, shard: LabeledDataset,
                 index: int) -> LabeledDataset:
        # A fresh per-shard RNG keyed on (seed, shard index) makes every
        # iteration of the stream reproduce the same corruption — a
        # shared generator would be consumed by the first pass and
        # yield differently-corrupted shards on replay.
        rng = np.random.default_rng((self.seed, index))
        out = shard
        if self.transition is not None:
            out = corrupt_labels(out, self.transition, rng,
                                 name=shard.name)
        if self.missing_fraction > 0:
            out, _ = drop_labels(out, self.missing_fraction,
                                 rng, name=out.name)
        return out
