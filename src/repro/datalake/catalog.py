"""Data-lake catalog: the platform-side bookkeeping substrate.

The paper's deployment target is a data lake / data platform that holds
a large inventory and continuously receives incremental datasets with
noisy-label-detection requests (§I, §IV-A).  :class:`DataLakeCatalog`
models that platform state:

- the inventory dataset and its ``I_t`` / ``I_c`` halves;
- a registry of arrived incremental datasets;
- per-dataset detection results (clean/noisy sample ids);
- accumulated clean inventory ids ``S_c`` feeding the model update;
- a quarantine of arrivals rejected by admission control, kept with
  their rejection reasons so operators can audit and re-submit;
- a content-addressed registry of general-model versions: one
  :class:`ModelVersion` per setup/update swap, so every verdict can be
  traced back to the exact ``θ`` + clean pool + config that produced it
  (the ``repro versions`` CLI answers those time-travel queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..nn.data import LabeledDataset


@dataclass
class QuarantineRecord:
    """An arrival rejected by admission control, with the reasons why."""

    dataset_name: str
    reasons: List[str] = field(default_factory=list)
    num_samples: int = 0


@dataclass(frozen=True)
class ModelVersion:
    """Content-addressed record of one general-model version.

    ``version_id`` is a digest over the parent id, the weights digest,
    the clean-pool membership digest and the config digest — the same
    training inputs always yield the same id, which is what lets the
    chaos gate prove a killed-and-resumed update converged to the
    *identical* model, not merely a similar one.
    """

    version_id: str
    seq: int
    reason: str                 # "setup" | "scheduled" | "forced"
    weights_digest: str
    clean_pool_digest: str
    clean_pool_size: int
    config_digest: str
    parent: Optional[str]
    train_samples: int
    train_epochs: int
    created_at_submission: int

    def to_dict(self) -> Dict:
        """JSON-ready representation (see :func:`from_dict`)."""
        return {
            "version_id": self.version_id, "seq": self.seq,
            "reason": self.reason, "weights_digest": self.weights_digest,
            "clean_pool_digest": self.clean_pool_digest,
            "clean_pool_size": self.clean_pool_size,
            "config_digest": self.config_digest, "parent": self.parent,
            "train_samples": self.train_samples,
            "train_epochs": self.train_epochs,
            "created_at_submission": self.created_at_submission,
        }

    @classmethod
    def from_dict(cls, item: Dict) -> "ModelVersion":
        """Rebuild a version record serialised by :meth:`to_dict`."""
        return cls(
            version_id=str(item["version_id"]), seq=int(item["seq"]),
            reason=str(item["reason"]),
            weights_digest=str(item["weights_digest"]),
            clean_pool_digest=str(item["clean_pool_digest"]),
            clean_pool_size=int(item["clean_pool_size"]),
            config_digest=str(item["config_digest"]),
            parent=item["parent"],
            train_samples=int(item["train_samples"]),
            train_epochs=int(item["train_epochs"]),
            created_at_submission=int(item["created_at_submission"]),
        )


@dataclass
class DetectionRecord:
    """Outcome of one noisy-label-detection request.

    ``model_version`` is the id of the :class:`ModelVersion` whose
    general model judged the arrival (``None`` for records restored
    from pre-versioning checkpoints).
    """

    dataset_name: str
    clean_ids: np.ndarray
    noisy_ids: np.ndarray
    process_seconds: float = 0.0
    detector: str = "enld"
    model_version: Optional[str] = None

    @property
    def total(self) -> int:
        return len(self.clean_ids) + len(self.noisy_ids)

    @property
    def detected_noise_fraction(self) -> float:
        return len(self.noisy_ids) / self.total if self.total else 0.0


class DataLakeCatalog:
    """Mutable platform state for incremental noisy-label detection."""

    def __init__(self, inventory: LabeledDataset) -> None:
        self.inventory = inventory
        self._arrivals: Dict[str, LabeledDataset] = {}
        self._records: Dict[str, DetectionRecord] = {}
        self._quarantine: Dict[str, QuarantineRecord] = {}
        self._clean_inventory_ids: set = set()
        self._versions: List[ModelVersion] = []

    # -- arrivals -----------------------------------------------------------
    def register_arrival(self, dataset: LabeledDataset) -> str:
        """Register an incremental dataset; names must be unique."""
        if dataset.name in self._arrivals:
            raise KeyError(f"dataset {dataset.name!r} already registered")
        self._arrivals[dataset.name] = dataset
        return dataset.name

    def get_arrival(self, name: str) -> LabeledDataset:
        try:
            return self._arrivals[name]
        except KeyError:
            raise KeyError(f"no arrival named {name!r}; "
                           f"known: {sorted(self._arrivals)}") from None

    @property
    def arrival_names(self) -> List[str]:
        return list(self._arrivals)

    # -- detection results ---------------------------------------------------
    def record_detection(self, record: DetectionRecord) -> None:
        if record.dataset_name not in self._arrivals:
            raise KeyError(
                f"cannot record detection for unknown dataset "
                f"{record.dataset_name!r}")
        self._records[record.dataset_name] = record

    def get_detection(self, name: str) -> DetectionRecord:
        try:
            return self._records[name]
        except KeyError:
            raise KeyError(f"no detection recorded for {name!r}") from None

    @property
    def processed_names(self) -> List[str]:
        return list(self._records)

    # -- quarantine (admission-control rejects) -------------------------------
    def quarantine_arrival(self, record: QuarantineRecord) -> None:
        """File an arrival rejected by admission control.

        Re-submissions of the same name overwrite the previous entry —
        the latest rejection reasons are the ones that matter.
        """
        self._quarantine[record.dataset_name] = record

    def get_quarantine(self, name: str) -> QuarantineRecord:
        try:
            return self._quarantine[name]
        except KeyError:
            raise KeyError(f"no quarantined arrival named {name!r}; "
                           f"known: {sorted(self._quarantine)}") from None

    @property
    def quarantined_names(self) -> List[str]:
        return list(self._quarantine)

    # -- model versions (content-addressed lineage) ---------------------------
    def register_model_version(self, version: ModelVersion) -> None:
        """Append a new model version; it becomes the active one.

        ``seq`` must continue the chain (``len(versions)``) — versions
        form an append-only lineage, never a tree.
        """
        if version.seq != len(self._versions):
            raise ValueError(
                f"version seq {version.seq} breaks the chain; expected "
                f"{len(self._versions)}")
        expected_parent = (self._versions[-1].version_id
                          if self._versions else None)
        if version.parent != expected_parent:
            raise ValueError(
                f"version parent {version.parent!r} is not the active "
                f"version {expected_parent!r}")
        self._versions.append(version)

    def retract_model_version(self, version_id: str) -> None:
        """Undo the most recent :meth:`register_model_version`.

        Only the head of the lineage can be retracted — this is the
        rollback path of a failed swap publish, nothing else.
        """
        if not self._versions or self._versions[-1].version_id != version_id:
            raise ValueError(
                f"cannot retract {version_id!r}: not the active version")
        self._versions.pop()

    @property
    def versions(self) -> List[ModelVersion]:
        """All registered model versions, oldest first."""
        return list(self._versions)

    @property
    def active_version(self) -> Optional[ModelVersion]:
        """The model version currently serving detection, if any."""
        return self._versions[-1] if self._versions else None

    @property
    def active_version_id(self) -> Optional[str]:
        """Id of :attr:`active_version` (``None`` pre-versioning)."""
        return self._versions[-1].version_id if self._versions else None

    def get_version(self, ref: str) -> ModelVersion:
        """Look a version up by id, unique id prefix, or decimal seq."""
        for v in self._versions:
            if v.version_id == ref:
                return v
        prefixed = [v for v in self._versions
                    if v.version_id.startswith(ref)]
        if len(prefixed) == 1:
            return prefixed[0]
        if ref.isdigit() and int(ref) < len(self._versions):
            return self._versions[int(ref)]
        if self._versions:
            raise KeyError(
                f"no model version matching {ref!r}; known seqs "
                f"0..{len(self._versions) - 1}")
        raise KeyError("no model versions registered")

    def verdicts_by_version(self, version_id: str) -> List[str]:
        """Names of arrivals whose verdicts ``version_id`` produced."""
        return [name for name, record in self._records.items()
                if record.model_version == version_id]

    # -- inventory clean-sample accumulation ---------------------------------
    def add_clean_inventory_ids(self, ids: np.ndarray) -> None:
        """Union new clean inventory ids ``S_c'`` into the running set."""
        self._clean_inventory_ids.update(int(i) for i in np.asarray(ids))

    @property
    def clean_inventory_ids(self) -> np.ndarray:
        return np.array(sorted(self._clean_inventory_ids), dtype=np.int64)

    def clean_inventory_subset(self) -> LabeledDataset:
        """The inventory rows currently believed clean (by id)."""
        wanted = self._clean_inventory_ids
        mask = np.fromiter((int(i) in wanted for i in self.inventory.ids),
                           dtype=bool, count=len(self.inventory))
        return self.inventory.mask(mask, name=f"{self.inventory.name}/clean")

    # -- reporting ------------------------------------------------------------
    def quality_report(self) -> Dict[str, float]:
        """Aggregate detection statistics across processed arrivals."""
        if not self._records:
            return {"datasets_processed": 0, "samples_screened": 0,
                    "flagged_fraction": 0.0, "mean_process_seconds": 0.0,
                    "datasets_quarantined": len(self._quarantine)}
        totals = [r.total for r in self._records.values()]
        flagged = [len(r.noisy_ids) for r in self._records.values()]
        times = [r.process_seconds for r in self._records.values()]
        screened = int(sum(totals))
        return {
            "datasets_processed": len(self._records),
            "samples_screened": screened,
            "flagged_fraction": (sum(flagged) / screened) if screened else 0.0,
            "mean_process_seconds": float(np.mean(times)),
            "datasets_quarantined": len(self._quarantine),
        }
