"""Data-lake catalog: the platform-side bookkeeping substrate.

The paper's deployment target is a data lake / data platform that holds
a large inventory and continuously receives incremental datasets with
noisy-label-detection requests (§I, §IV-A).  :class:`DataLakeCatalog`
models that platform state:

- the inventory dataset and its ``I_t`` / ``I_c`` halves;
- a registry of arrived incremental datasets;
- per-dataset detection results (clean/noisy sample ids);
- accumulated clean inventory ids ``S_c`` feeding the model update;
- a quarantine of arrivals rejected by admission control, kept with
  their rejection reasons so operators can audit and re-submit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..nn.data import LabeledDataset


@dataclass
class QuarantineRecord:
    """An arrival rejected by admission control, with the reasons why."""

    dataset_name: str
    reasons: List[str] = field(default_factory=list)
    num_samples: int = 0


@dataclass
class DetectionRecord:
    """Outcome of one noisy-label-detection request."""

    dataset_name: str
    clean_ids: np.ndarray
    noisy_ids: np.ndarray
    process_seconds: float = 0.0
    detector: str = "enld"

    @property
    def total(self) -> int:
        return len(self.clean_ids) + len(self.noisy_ids)

    @property
    def detected_noise_fraction(self) -> float:
        return len(self.noisy_ids) / self.total if self.total else 0.0


class DataLakeCatalog:
    """Mutable platform state for incremental noisy-label detection."""

    def __init__(self, inventory: LabeledDataset) -> None:
        self.inventory = inventory
        self._arrivals: Dict[str, LabeledDataset] = {}
        self._records: Dict[str, DetectionRecord] = {}
        self._quarantine: Dict[str, QuarantineRecord] = {}
        self._clean_inventory_ids: set = set()

    # -- arrivals -----------------------------------------------------------
    def register_arrival(self, dataset: LabeledDataset) -> str:
        """Register an incremental dataset; names must be unique."""
        if dataset.name in self._arrivals:
            raise KeyError(f"dataset {dataset.name!r} already registered")
        self._arrivals[dataset.name] = dataset
        return dataset.name

    def get_arrival(self, name: str) -> LabeledDataset:
        try:
            return self._arrivals[name]
        except KeyError:
            raise KeyError(f"no arrival named {name!r}; "
                           f"known: {sorted(self._arrivals)}") from None

    @property
    def arrival_names(self) -> List[str]:
        return list(self._arrivals)

    # -- detection results ---------------------------------------------------
    def record_detection(self, record: DetectionRecord) -> None:
        if record.dataset_name not in self._arrivals:
            raise KeyError(
                f"cannot record detection for unknown dataset "
                f"{record.dataset_name!r}")
        self._records[record.dataset_name] = record

    def get_detection(self, name: str) -> DetectionRecord:
        try:
            return self._records[name]
        except KeyError:
            raise KeyError(f"no detection recorded for {name!r}") from None

    @property
    def processed_names(self) -> List[str]:
        return list(self._records)

    # -- quarantine (admission-control rejects) -------------------------------
    def quarantine_arrival(self, record: QuarantineRecord) -> None:
        """File an arrival rejected by admission control.

        Re-submissions of the same name overwrite the previous entry —
        the latest rejection reasons are the ones that matter.
        """
        self._quarantine[record.dataset_name] = record

    def get_quarantine(self, name: str) -> QuarantineRecord:
        try:
            return self._quarantine[name]
        except KeyError:
            raise KeyError(f"no quarantined arrival named {name!r}; "
                           f"known: {sorted(self._quarantine)}") from None

    @property
    def quarantined_names(self) -> List[str]:
        return list(self._quarantine)

    # -- inventory clean-sample accumulation ---------------------------------
    def add_clean_inventory_ids(self, ids: np.ndarray) -> None:
        """Union new clean inventory ids ``S_c'`` into the running set."""
        self._clean_inventory_ids.update(int(i) for i in np.asarray(ids))

    @property
    def clean_inventory_ids(self) -> np.ndarray:
        return np.array(sorted(self._clean_inventory_ids), dtype=np.int64)

    def clean_inventory_subset(self) -> LabeledDataset:
        """The inventory rows currently believed clean (by id)."""
        wanted = self._clean_inventory_ids
        mask = np.fromiter((int(i) in wanted for i in self.inventory.ids),
                           dtype=bool, count=len(self.inventory))
        return self.inventory.mask(mask, name=f"{self.inventory.name}/clean")

    # -- reporting ------------------------------------------------------------
    def quality_report(self) -> Dict[str, float]:
        """Aggregate detection statistics across processed arrivals."""
        if not self._records:
            return {"datasets_processed": 0, "samples_screened": 0,
                    "flagged_fraction": 0.0, "mean_process_seconds": 0.0,
                    "datasets_quarantined": len(self._quarantine)}
        totals = [r.total for r in self._records.values()]
        flagged = [len(r.noisy_ids) for r in self._records.values()]
        times = [r.process_seconds for r in self._records.values()]
        screened = int(sum(totals))
        return {
            "datasets_processed": len(self._records),
            "samples_screened": screened,
            "flagged_fraction": (sum(flagged) / screened) if screened else 0.0,
            "mean_process_seconds": float(np.mean(times)),
            "datasets_quarantined": len(self._quarantine),
        }
