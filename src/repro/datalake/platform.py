"""The platform facade: ENLD + catalog + update scheduling in one object.

``NoisyLabelPlatform`` is the deployment-shaped API of this library —
the concrete realisation of the paper's Fig. 1: a data lake holding
inventory data, serving continuous noisy-label-detection requests, with
optional automated general-model refreshes.

Typical usage::

    from repro.datalake import NoisyLabelPlatform
    from repro.core import ENLDConfig, CleanPoolGrowth

    platform = NoisyLabelPlatform(
        inventory,
        config=ENLDConfig(model_name="tinyresnet"),
        scheduler=CleanPoolGrowth(min_clean_samples=500),
    )
    for dataset in stream:
        report = platform.submit(dataset)
        print(report.record.detected_noise_fraction, report.updated_model)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.config import ENLDConfig
from ..core.detector import DetectionResult
from ..core.enld import ENLD
from ..core.scheduler import UpdateScheduler
from ..nn.data import LabeledDataset
from ..obs import Tracer, incr, merge_trace_dicts, use_tracer
from .catalog import DataLakeCatalog, DetectionRecord


@dataclass
class SubmissionReport:
    """Everything the platform learned from one submitted dataset."""

    result: DetectionResult
    record: DetectionRecord
    updated_model: bool
    # Exported per-submission trace (spans/counters/metrics); None
    # unless the platform was built with trace=True.
    trace: Optional[dict] = None


class NoisyLabelPlatform:
    """End-to-end noisy-label screening service over a data lake.

    Parameters
    ----------
    inventory:
        The (possibly noisy) inventory dataset ``I``.
    config:
        ENLD configuration; defaults follow the paper.
    scheduler:
        Optional :class:`UpdateScheduler`; when provided and it fires
        (and clean inventory samples exist), the Alg. 4 model update
        runs automatically after the triggering submission.
    num_classes:
        Override when the inventory does not contain every class.
    trace:
        When ``True``, every submission runs under a fresh
        :class:`repro.obs.Tracer`; the exported trace is attached to
        the :class:`SubmissionReport` and the running aggregate is
        reported by :meth:`quality_report`.
    """

    def __init__(self, inventory: LabeledDataset,
                 config: Optional[ENLDConfig] = None,
                 scheduler: Optional[UpdateScheduler] = None,
                 num_classes: Optional[int] = None,
                 trace: bool = False):
        self.catalog = DataLakeCatalog(inventory)
        self.enld = ENLD(config)
        self.scheduler = scheduler
        self.trace_enabled = trace
        self.setup_trace: Optional[dict] = None
        self._submission_traces: List[dict] = []
        if trace:
            tracer = Tracer()
            with use_tracer(tracer):
                self.enld.initialize(inventory, num_classes=num_classes)
            self.setup_trace = tracer.to_dict()
        else:
            self.enld.initialize(inventory, num_classes=num_classes)
        self.model_updates: int = 0

    # ------------------------------------------------------------------
    @property
    def setup_seconds(self) -> float:
        """Wall-clock spent initialising the general model."""
        return self.enld.setup_seconds

    def submit(self, dataset: LabeledDataset) -> SubmissionReport:
        """Serve one noisy-label-detection request end-to-end.

        Registers the arrival, runs detection, records the outcome,
        accumulates clean inventory ids, and (if a scheduler is set)
        triggers the model update when due.
        """
        tracer = Tracer() if self.trace_enabled else None
        with use_tracer(tracer):
            self.catalog.register_arrival(dataset)
            incr("platform.submissions")
            result = self.enld.detect(dataset)
            record = DetectionRecord(
                dataset_name=dataset.name,
                clean_ids=dataset.ids[result.clean_mask],
                noisy_ids=dataset.ids[result.noisy_mask],
                process_seconds=result.process_seconds,
                detector=result.detector_name,
            )
            self.catalog.record_detection(record)
            self.catalog.add_clean_inventory_ids(
                self.enld.inventory_candidates.ids[
                    result.inventory_clean_positions])

            updated = False
            if self.scheduler is not None:
                self.scheduler.observe(result)
                if (self.scheduler.should_update()
                        and len(self.enld.clean_inventory)):
                    incr("platform.scheduler_fires")
                    self.update_model()
                    self.scheduler.notify_updated()
                    updated = True
        trace = tracer.to_dict() if tracer is not None else None
        if trace is not None:
            self._submission_traces.append(trace)
        return SubmissionReport(result=result, record=record,
                                updated_model=updated, trace=trace)

    def update_model(self, epochs: Optional[int] = None) -> None:
        """Run the Alg. 4 model update now (also counts it)."""
        self.enld.update_model(epochs=epochs)
        self.model_updates += 1

    # ------------------------------------------------------------------
    def clean_subset(self, dataset_name: str) -> LabeledDataset:
        """The voted-clean rows of a processed arrival, by id."""
        dataset = self.catalog.get_arrival(dataset_name)
        record = self.catalog.get_detection(dataset_name)
        wanted = set(int(i) for i in record.clean_ids)
        mask = np.fromiter((int(i) in wanted for i in dataset.ids),
                           dtype=bool, count=len(dataset))
        return dataset.mask(mask, name=f"{dataset_name}/clean")

    def noisy_subset(self, dataset_name: str) -> LabeledDataset:
        """The flagged-noisy rows of a processed arrival, by id."""
        dataset = self.catalog.get_arrival(dataset_name)
        record = self.catalog.get_detection(dataset_name)
        wanted = set(int(i) for i in record.noisy_ids)
        mask = np.fromiter((int(i) in wanted for i in dataset.ids),
                           dtype=bool, count=len(dataset))
        return dataset.mask(mask, name=f"{dataset_name}/noisy")

    def quality_report(self) -> dict:
        """Aggregate screening statistics plus platform counters.

        With tracing enabled the report carries a ``trace`` key: the
        setup trace plus the pointwise sum of every submission trace,
        giving the fleet-level Fig. 8-style stage breakdown.
        """
        report = self.catalog.quality_report()
        report["model_updates"] = self.model_updates
        report["setup_seconds"] = self.setup_seconds
        report["clean_inventory_size"] = len(self.catalog.clean_inventory_ids)
        if self.trace_enabled:
            traces = ([self.setup_trace] if self.setup_trace else []) \
                + self._submission_traces
            report["trace"] = merge_trace_dicts(traces)
        return report
