"""The platform facade: ENLD + catalog + update scheduling in one object.

``NoisyLabelPlatform`` is the deployment-shaped API of this library —
the concrete realisation of the paper's Fig. 1: a data lake holding
inventory data, serving continuous noisy-label-detection requests, with
optional automated general-model refreshes.

The platform is hardened for long-running service (see
:mod:`repro.datalake.resilience`):

- arrivals pass **admission control** before any detection work;
  rejects are quarantined into the catalog with their reasons instead
  of raising;
- a failure inside fine-grained detection (Alg. 3) is **retried** with
  exponential backoff and a reseeded RNG, then **degrades** to the
  coarse general-model disagreement decision — the submission still
  completes, flagged ``degraded=True`` with the failure chain attached;
- :meth:`NoisyLabelPlatform.checkpoint` /
  :meth:`NoisyLabelPlatform.resume` provide **crash-safe** round-trips
  of the full platform state (catalog, ``P̃``, inventory split,
  clean-inventory ids, scheduler counters, model weights), written
  atomically; an optional per-submission **journal** records every
  outcome durably.

Typical usage::

    from repro.datalake import NoisyLabelPlatform
    from repro.core import ENLDConfig, CleanPoolGrowth

    platform = NoisyLabelPlatform(
        inventory,
        config=ENLDConfig(model_name="tinyresnet"),
        scheduler=CleanPoolGrowth(min_clean_samples=500),
    )
    for dataset in stream:
        report = platform.submit(dataset)
        print(report.record.detected_noise_fraction, report.updated_model)
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.config import ENLDConfig
from ..core.detector import DetectionResult
from ..core.enld import ENLD
from ..core.scheduler import (UpdateScheduler, scheduler_from_state,
                              scheduler_to_state)
from ..nn.data import LabeledDataset
from ..nn.rng import STREAM_TAGS
from ..nn.serialize import load_checkpoint, save_checkpoint
from ..obs import (Tracer, incr, merge_trace_dicts, trace_span,
                   use_span_hook, use_tracer)
from .catalog import (DataLakeCatalog, DetectionRecord, ModelVersion,
                      QuarantineRecord)
from .persistence import (MODEL_WEIGHTS_FILE, PLATFORM_STATE_FILE,
                          append_journal, atomic_write_json, catalog_state,
                          restore_catalog_state)
from .resilience import (FailureEvent, FaultPlan, RetryPolicy,
                         admission_errors, coarse_fallback_detect,
                         describe_failure)
from .shards import ShardedInventory
from .updater import ModelUpdateService, UpdaterConfig

#: The platform accepts either a monolithic dataset or a sharded store
#: (DESIGN.md §14); the latter serves the same insertion-order view.
InventorySource = Union[LabeledDataset, ShardedInventory]

# v2 embeds the async update-service state (pending job spec) so a
# checkpoint taken mid-train re-enqueues the job on resume; v1 files
# (no updater, no model versions) still load.
_PLATFORM_FORMAT_VERSION = 2
_SUPPORTED_PLATFORM_VERSIONS = (1, 2)


@dataclass
class SubmissionReport:
    """Everything the platform learned from one submitted dataset.

    ``result`` and ``record`` are ``None`` only for quarantined
    submissions (admission control rejected the arrival before any
    detection ran).  ``degraded`` marks submissions served by the
    coarse fallback after the retry budget was exhausted; ``failures``
    carries the full failure chain in either case.
    """

    result: Optional[DetectionResult] = None
    record: Optional[DetectionRecord] = None
    updated_model: bool = False
    # Exported per-submission trace (spans/counters/metrics); None
    # unless the platform was built with trace=True.
    trace: Optional[dict] = None
    degraded: bool = False
    quarantined: bool = False
    retries: int = 0
    failures: List[FailureEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the submission completed un-degraded."""
        return not (self.degraded or self.quarantined)


class NoisyLabelPlatform:
    """End-to-end noisy-label screening service over a data lake.

    Parameters
    ----------
    inventory:
        The (possibly noisy) inventory dataset ``I``.
    config:
        ENLD configuration; defaults follow the paper.
    scheduler:
        Optional :class:`UpdateScheduler`; when provided and it fires
        (and clean inventory samples exist), the Alg. 4 model update
        runs automatically after the triggering submission.
    num_classes:
        Override when the inventory does not contain every class.
    trace:
        When ``True``, every submission runs under a fresh
        :class:`repro.obs.Tracer`; the exported trace is attached to
        the :class:`SubmissionReport` and the running aggregate is
        reported by :meth:`quality_report`.
    retry:
        :class:`RetryPolicy` for fine-grained detection failures;
        ``None`` uses the default (2 retries, exponential backoff).
    admission:
        When ``True`` (default) arrivals are validated before
        detection and rejects quarantined; ``False`` restores the
        raise-on-bad-input behaviour.
    fallback:
        When ``True`` (default) an exhausted retry budget degrades to
        the coarse general-model disagreement decision; ``False``
        re-raises the last failure instead.
    fault_plan:
        Optional :class:`FaultPlan` injected at the obs span
        boundaries of every submission — the deterministic chaos
        harness used by tests and ``repro chaos``.
    journal_path:
        Optional JSON-lines file; every submission appends one durable
        entry (name, status, detector, retries, counts, model version).
    updater:
        :class:`~repro.datalake.updater.UpdaterConfig` selecting how
        scheduled model updates run — ``inline`` (default, the
        pre-service synchronous behaviour) or asynchronously in a
        ``thread``/``process`` worker with watchdog + bounded retries.
        Either way every swap publishes a content-addressed
        :class:`~repro.datalake.catalog.ModelVersion` to the catalog.
    """

    def __init__(self, inventory: InventorySource,
                 config: Optional[ENLDConfig] = None,
                 scheduler: Optional[UpdateScheduler] = None,
                 num_classes: Optional[int] = None,
                 trace: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 admission: bool = True,
                 fallback: bool = True,
                 fault_plan: Optional[FaultPlan] = None,
                 journal_path: Optional[str] = None,
                 updater: Optional[UpdaterConfig] = None) -> None:
        self.sharded_inventory: Optional[ShardedInventory] = None
        if isinstance(inventory, ShardedInventory):
            # The sharded store keeps serving as the lake archive
            # (absorb_arrival grows it); ENLD and the catalog consume
            # its insertion-order view, bit-identical to the source
            # dataset it was built from.
            self.sharded_inventory = inventory
            inventory = inventory.as_dataset()
        self.catalog = DataLakeCatalog(inventory)
        self.enld = ENLD(config)
        self.scheduler = scheduler
        self.trace_enabled = trace
        self.retry = retry or RetryPolicy()
        self.admission = admission
        self.fallback = fallback
        self.journal_path = journal_path
        self._fault_injector = (fault_plan.injector()
                                if fault_plan is not None else None)
        self.setup_trace: Optional[dict] = None
        self._submission_traces: List[dict] = []
        # Setup is excluded from fault injection: a platform that
        # cannot initialise has nothing to degrade to.
        if trace:
            tracer = Tracer()
            with use_tracer(tracer):
                self.enld.initialize(inventory, num_classes=num_classes)
            self.setup_trace = tracer.to_dict()
        else:
            self.enld.initialize(inventory, num_classes=num_classes)
        self.model_updates: int = 0
        self.submissions: int = 0
        self.degraded_submissions: int = 0
        self.quarantined_submissions: int = 0
        self.retries_total: int = 0
        self.update_service = self._build_update_service(updater)
        self.update_service.publish_setup_version(
            train_samples=self.enld.setup_train_samples,
            epochs=self.enld.config.init_epochs)

    def _build_update_service(self, updater: Optional[UpdaterConfig]
                              ) -> ModelUpdateService:
        return ModelUpdateService(
            self.enld, self.catalog, config=updater,
            span_hook=self._fault_injector, on_swap=self._record_swap,
            progress=lambda: self.submissions)

    def _record_swap(self, version: ModelVersion) -> None:
        """Post-swap bookkeeping (runs inside the publish stage)."""
        self.model_updates += 1
        incr("platform.update_swaps")
        if self.scheduler is not None:
            self.scheduler.notify_updated()

    # ------------------------------------------------------------------
    @property
    def setup_seconds(self) -> float:
        """Wall-clock spent initialising the general model."""
        return self.enld.setup_seconds

    def submit(self, dataset: LabeledDataset) -> SubmissionReport:
        """Serve one noisy-label-detection request end-to-end.

        Validates and registers the arrival, runs detection (with
        retry/degradation), records the outcome, accumulates clean
        inventory ids, and (if a scheduler is set) triggers the model
        update when due.  Never raises for a malformed arrival or a
        detection-stage failure — those return quarantined/degraded
        reports instead.
        """
        tracer = Tracer() if self.trace_enabled else None
        with use_tracer(tracer):
            report = self._submit_inner(dataset)
        trace = tracer.to_dict() if tracer is not None else None
        if trace is not None:
            self._submission_traces.append(trace)
        report.trace = trace
        self._journal(dataset, report)
        return report

    def _submit_inner(self, dataset: LabeledDataset) -> SubmissionReport:
        # Land a finished background update *before* this arrival is
        # judged: the swap is atomic between submissions, so every
        # verdict is attributable to exactly one model version.
        updated, update_failures = self.poll_updates()

        report = self.admit_arrival(dataset)
        if report is not None:
            report.updated_model = updated
            report.failures = update_failures + report.failures
            return report

        result, retries, failures, degraded = self._detect_resilient(dataset)
        return self.commit_detection(
            dataset, result, retries=retries,
            failures=update_failures + failures,
            degraded=degraded, updated=updated)

    # ------------------------------------------------------------------
    # Pipeline stages (repro.datalake.ingest)
    #
    # submit() is these three stages run back to back on one thread.
    # The concurrent ingestion pipeline calls them separately — poll /
    # admit / commit stay serialized on the pipeline's owner thread
    # while only the pure detection between admit and commit fans out
    # to workers.
    # ------------------------------------------------------------------
    def poll_updates(self) -> Tuple[bool, List[FailureEvent]]:
        """Land a finished background model update, if one is ready.

        Never blocks, never raises; returns ``(swapped, failures)``.
        """
        return self._poll_update_service()

    def admit_arrival(self, dataset: LabeledDataset
                      ) -> Optional[SubmissionReport]:
        """Admission control + catalog registration for one arrival.

        Returns the quarantined :class:`SubmissionReport` when the
        arrival is rejected; returns ``None`` when it was admitted and
        registered (the caller owes a matching
        :meth:`commit_detection`).  Owner-thread only — mutates the
        catalog and the submission counters.
        """
        if self.admission:
            reasons = admission_errors(dataset, self.enld.num_classes,
                                       self.catalog.arrival_names)
            if reasons:
                self.catalog.quarantine_arrival(QuarantineRecord(
                    dataset_name=dataset.name, reasons=reasons,
                    num_samples=len(dataset)))
                self.quarantined_submissions += 1
                incr("platform.quarantined")
                return SubmissionReport(
                    quarantined=True,
                    failures=[FailureEvent(attempt=0, stage="admission",
                                           error=r) for r in reasons])

        self.catalog.register_arrival(dataset)
        self.submissions += 1
        incr("platform.submissions")
        return None

    def commit_detection(self, dataset: LabeledDataset,
                         result: DetectionResult, *,
                         retries: int = 0,
                         failures: Optional[List[FailureEvent]] = None,
                         degraded: bool = False,
                         updated: bool = False) -> SubmissionReport:
        """Record one detection outcome for an admitted arrival.

        Owner-thread only: writes the :class:`DetectionRecord`,
        accumulates the clean inventory ids, and drives the update
        scheduler — exactly the post-detection half of :meth:`submit`.
        """
        failures = list(failures or [])
        record = DetectionRecord(
            dataset_name=dataset.name,
            clean_ids=dataset.ids[result.clean_mask],
            noisy_ids=dataset.ids[result.noisy_mask],
            process_seconds=result.process_seconds,
            detector=result.detector_name,
            model_version=self.catalog.active_version_id,
        )
        self.catalog.record_detection(record)
        self.catalog.add_clean_inventory_ids(
            self.enld.inventory_candidates.ids[
                result.inventory_clean_positions])

        if self.scheduler is not None:
            self.scheduler.observe(result)
            if (self.scheduler.should_update()
                    and len(self.enld.clean_inventory)):
                incr("platform.scheduler_fires")
                # A failed refresh must not fail the submission: keep
                # serving on the current general model and leave the
                # scheduler armed so the next submission retries.
                try:
                    if self.update_service.synchronous:
                        self.update_service.run_sync(reason="scheduled")
                        updated = True
                    elif self.update_service.request_update(
                            reason="scheduled"):
                        incr("platform.update_enqueued")
                        self.scheduler.notify_enqueued()
                except Exception as exc:  # noqa: BLE001
                    failures.append(describe_failure(0, exc))
                    incr("platform.update_failures")
        return SubmissionReport(result=result, record=record,
                                updated_model=updated, degraded=degraded,
                                retries=retries, failures=failures)

    def absorb_arrival(self, dataset: LabeledDataset) -> bool:
        """Grow the sharded lake archive with an arrival's rows.

        Storage-level growth only — the live ENLD state (``θ``, ``P̃``,
        inventory halves) is untouched; rows land incrementally in the
        few shards their labels hash to.  No-op (returns ``False``)
        when the platform was not built over a
        :class:`~repro.datalake.shards.ShardedInventory`.
        """
        if self.sharded_inventory is None:
            return False
        self.sharded_inventory.add(dataset)
        return True

    def journal_report(self, dataset: LabeledDataset,
                       report: SubmissionReport) -> None:
        """Append one durable journal entry for a finished submission
        (no-op without a configured ``journal_path``)."""
        self._journal(dataset, report)

    def _poll_update_service(self) -> Tuple[bool, List[FailureEvent]]:
        """Advance the async update service; never blocks, never raises."""
        swapped, failure = self.update_service.poll()
        failures: List[FailureEvent] = []
        if failure is not None:
            failures.append(failure)
            incr("platform.update_failures")
        return swapped, failures

    def _detect_resilient(
        self, dataset: LabeledDataset,
    ) -> Tuple[DetectionResult, int, List[FailureEvent], bool]:
        """Detection with retry + reseed, then the coarse fallback.

        Returns ``(result, retries, failures, degraded)``.  Faults from
        the configured plan are injected at the obs span boundaries of
        each attempt; the fallback itself runs outside the injector so
        the degradation path always terminates.
        """
        failures: List[FailureEvent] = []
        attempts = 1 + self.retry.max_retries
        for attempt in range(attempts):
            if attempt > 0:
                self.retries_total += 1
                incr("platform.retries")
                # Jitter from a derived, stateless stream: seeded (so a
                # replayed run backs off identically) yet decorrelated
                # across submissions (no synchronized retry storms).
                jitter_rng = np.random.default_rng(
                    [self.enld.config.seed, STREAM_TAGS.SUBMIT_JITTER,
                     self.submissions, attempt])
                self.retry.sleep(self.retry.backoff_seconds(
                    attempt - 1, rng=jitter_rng))
                # Re-roll the detection RNG: a failure tied to one
                # unlucky sampling draw should not repeat verbatim.
                self.enld.reseed(
                    self.enld.config.seed
                    + STREAM_TAGS.RESEED * attempt)
            try:
                with use_span_hook(self._fault_injector):
                    return (self.enld.detect(dataset), attempt,
                            failures, False)
            except Exception as exc:  # noqa: BLE001 — degrade, never die
                failures.append(describe_failure(attempt + 1, exc))
        if not self.fallback:
            raise RuntimeError(
                f"detection failed after {attempts} attempt(s) for "
                f"{dataset.name!r}: {failures[-1].error}")
        self.degraded_submissions += 1
        incr("platform.degraded")
        result = coarse_fallback_detect(self.enld.model, dataset)
        return result, attempts - 1, failures, True

    def _journal(self, dataset: LabeledDataset,
                 report: SubmissionReport) -> None:
        if self.journal_path is None:
            return
        status = ("quarantined" if report.quarantined
                  else "degraded" if report.degraded else "ok")
        entry = {
            "dataset": dataset.name,
            "status": status,
            "detector": (report.record.detector
                         if report.record is not None else None),
            "retries": report.retries,
            "failures": [f.to_dict() for f in report.failures],
            "clean": (len(report.record.clean_ids)
                      if report.record is not None else 0),
            "noisy": (len(report.record.noisy_ids)
                      if report.record is not None else 0),
            "updated_model": report.updated_model,
            # The version whose model judged this arrival (pre-v3
            # journal readers simply never see the key).
            "model_version": (report.record.model_version
                              if report.record is not None
                              else self.catalog.active_version_id),
        }
        append_journal(self.journal_path, entry)

    def update_model(self, epochs: Optional[int] = None) -> None:
        """Run the Alg. 4 model update now (forced-sync path).

        Trains and hot-swaps on the calling thread through the update
        service, superseding any pending background job, and publishes
        a new catalog model version (``reason="forced"``).
        """
        self.update_service.run_sync(epochs=epochs, reason="forced")

    # ------------------------------------------------------------------
    # Crash-safe checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str) -> str:
        """Atomically write the full platform state under ``directory``.

        Produces ``platform.json`` (catalog + ENLD state + scheduler +
        counters, every file written temp-then-rename) and
        ``model.npz`` (general-model weights via
        :mod:`repro.nn.serialize`).  Returns the state-file path.
        """
        with trace_span("checkpoint"):
            os.makedirs(directory, exist_ok=True)
            state = {
                "version": _PLATFORM_FORMAT_VERSION,
                "config": dataclasses.asdict(self.enld.config),
                "catalog": catalog_state(self.catalog),
                "enld": self.enld.state_dict(),
                "scheduler": (scheduler_to_state(self.scheduler)
                              if self.scheduler is not None else None),
                "counters": {
                    "model_updates": self.model_updates,
                    "submissions": self.submissions,
                    "degraded_submissions": self.degraded_submissions,
                    "quarantined_submissions":
                        self.quarantined_submissions,
                    "retries_total": self.retries_total,
                },
                # Pending update-job spec (not the worker): a resume
                # re-enqueues it and retrains deterministically.
                "updater": self.update_service.state_dict(),
            }
            # Weights first: if the process dies between the two
            # writes the old state file still pairs with a complete
            # weights file.
            save_checkpoint(self.enld.model,
                            os.path.join(directory, MODEL_WEIGHTS_FILE))
            path = os.path.join(directory, PLATFORM_STATE_FILE)
            atomic_write_json(path, state)
            return path

    @classmethod
    def resume(cls, directory: str, inventory: InventorySource,
               arrivals: Sequence[LabeledDataset] = (),
               trace: bool = False,
               retry: Optional[RetryPolicy] = None,
               admission: bool = True,
               fallback: bool = True,
               fault_plan: Optional[FaultPlan] = None,
               journal_path: Optional[str] = None,
               updater: Optional[UpdaterConfig] = None
               ) -> "NoisyLabelPlatform":
        """Reconstruct a platform from a :meth:`checkpoint` directory.

        ``inventory`` (and any ``arrivals`` whose detection records
        should be restored) come from the lake — payload arrays are
        never checkpointed.  The returned platform is state-identical
        to the one that wrote the checkpoint: same catalog (including
        the model-version lineage), ``P̃``, inventory split,
        clean-inventory ids, scheduler counters and model weights,
        without re-running setup training.  A checkpoint taken while
        an async update was pending re-enqueues the job from its spec;
        the retrained result is byte-identical, so the resumed platform
        converges to the same version lineage the original would have.
        """
        with trace_span("resume"):
            with open(os.path.join(directory,
                                   PLATFORM_STATE_FILE)) as fh:
                state = json.load(fh)
            if state.get("version") not in _SUPPORTED_PLATFORM_VERSIONS:
                raise ValueError(
                    f"unsupported platform checkpoint version "
                    f"{state.get('version')!r}")
            config = ENLDConfig(**state["config"])

            self = cls.__new__(cls)
            self.sharded_inventory = None
            if isinstance(inventory, ShardedInventory):
                self.sharded_inventory = inventory
                inventory = inventory.as_dataset()
            self.catalog = DataLakeCatalog(inventory)
            for arrival in arrivals:
                self.catalog.register_arrival(arrival)
            restore_catalog_state(self.catalog, state["catalog"],
                                  strict=False)
            self.enld = ENLD(config)
            self.enld.load_state(state["enld"], inventory)
            load_checkpoint(self.enld.model,
                            os.path.join(directory, MODEL_WEIGHTS_FILE))
        self.scheduler = (scheduler_from_state(state["scheduler"])
                          if state["scheduler"] is not None else None)
        self.trace_enabled = trace
        self.retry = retry or RetryPolicy()
        self.admission = admission
        self.fallback = fallback
        self.journal_path = journal_path
        self._fault_injector = (fault_plan.injector()
                                if fault_plan is not None else None)
        self.setup_trace = None
        self._submission_traces = []
        counters = state["counters"]
        self.model_updates = int(counters["model_updates"])
        self.submissions = int(counters["submissions"])
        self.degraded_submissions = int(counters["degraded_submissions"])
        self.quarantined_submissions = int(
            counters["quarantined_submissions"])
        self.retries_total = int(counters["retries_total"])
        self.update_service = self._build_update_service(updater)
        self.update_service.load_state(state.get("updater"))
        return self

    # ------------------------------------------------------------------
    def clean_subset(self, dataset_name: str) -> LabeledDataset:
        """The voted-clean rows of a processed arrival, by id."""
        dataset = self.catalog.get_arrival(dataset_name)
        record = self.catalog.get_detection(dataset_name)
        wanted = set(int(i) for i in record.clean_ids)
        mask = np.fromiter((int(i) in wanted for i in dataset.ids),
                           dtype=bool, count=len(dataset))
        return dataset.mask(mask, name=f"{dataset_name}/clean")

    def similar_clean(self, sample: np.ndarray, label: int, k: int = 1
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """``k`` accumulated-clean inventory samples most similar to
        ``sample`` among those labelled ``label``.

        Similarity is distance in the general model's feature space.
        Returns ``(distances, ids)`` where ids are inventory sample
        ids; empty arrays while no clean samples of that class exist.
        Served by the incrementally maintained ``S_c`` index — arrivals
        append to it, model refreshes rebuild it lazily.
        """
        dists, positions = self.enld.nearest_clean(sample, label, k=k)
        if positions.size == 0:
            return dists, positions
        ids = self.enld.inventory_candidates.ids[positions]
        return dists, np.asarray(ids, dtype=int)

    def noisy_subset(self, dataset_name: str) -> LabeledDataset:
        """The flagged-noisy rows of a processed arrival, by id."""
        dataset = self.catalog.get_arrival(dataset_name)
        record = self.catalog.get_detection(dataset_name)
        wanted = set(int(i) for i in record.noisy_ids)
        mask = np.fromiter((int(i) in wanted for i in dataset.ids),
                           dtype=bool, count=len(dataset))
        return dataset.mask(mask, name=f"{dataset_name}/noisy")

    def quality_report(self) -> dict:
        """Aggregate screening statistics plus platform counters.

        With tracing enabled the report carries a ``trace`` key: the
        setup trace plus the pointwise sum of every submission trace,
        giving the fleet-level Fig. 8-style stage breakdown.
        """
        report = self.catalog.quality_report()
        report["model_updates"] = self.model_updates
        report["setup_seconds"] = self.setup_seconds
        report["clean_inventory_size"] = len(self.catalog.clean_inventory_ids)
        report["degraded_submissions"] = self.degraded_submissions
        report["quarantined_submissions"] = self.quarantined_submissions
        report["retries"] = self.retries_total
        # Configuration only: live cache counters are process-local
        # (not checkpointed) and flow through the tracer instead, so a
        # resumed platform reports identically to the original.
        report["hotpath"] = {
            "index_backend": self.enld.config.effective_index_backend,
            "feature_cache_enabled": self.enld.feature_cache is not None,
            "feature_cache_entries": self.enld.config.feature_cache_entries,
        }
        # Versioning + pending-update state.  Like the hotpath block,
        # only durable facts appear here (job spec, not worker
        # liveness), so a resumed platform reports identically.
        report["model_version"] = self.catalog.active_version_id
        report["model_versions"] = len(self.catalog.versions)
        report["pending_update"] = self.update_service.status()
        if self.trace_enabled:
            traces = ([self.setup_trace] if self.setup_trace else []) \
                + self._submission_traces
            report["trace"] = merge_trace_dicts(traces)
        return report
