"""Sharded inventory storage for production-scale lakes (DESIGN.md §14).

The monolithic :class:`~repro.nn.data.LabeledDataset` inventory is fine
at paper scale but a dead end for the ROADMAP north star: millions of
samples, continuously growing through clean-pool absorption, served to
concurrent detection workers.  :class:`ShardedInventory` partitions the
inventory into **per-class feature shards** — rows are grouped by
observed label, then hash-partitioned over a fixed number of buckets
per class — so that

- inventory growth appends to the few touched shards instead of
  rebuilding a monolithic array (``add``/``merge`` are per-shard and
  incremental);
- a label-restricted view (the detector's ``I' = I_c ∩ label(D)``)
  touches only the shards of those classes;
- shard payloads can live outside the Python heap: ``memmap`` backing
  stores features in :class:`numpy.memmap` files, ``shm`` backing in
  :class:`multiprocessing.shared_memory.SharedMemory` segments that
  process-pool workers can attach to without copying.

The facade presents the exact views the rest of the system consumes
today: :meth:`ShardedInventory.as_dataset` reconstructs the insertion
order bit-for-bit, so an :class:`~repro.core.enld.ENLD` initialised
from a sharded inventory behaves identically to one initialised from
the source dataset, and :class:`~repro.index.classindex.ClassFeatureIndex`
/ the facade backends build over the same arrays.

Checkpoints are generation-versioned: :meth:`ShardedInventory.save`
writes every shard payload under a fresh generation tag (each file
itself temp + ``os.replace`` via :mod:`repro.datalake.persistence`),
atomically replaces the manifest last, and only then prunes older
generations.  A crash at any point — including mid-flush, the
``shard_flush`` chaos stage — leaves the previous manifest pointing at
the previous generation's untouched files, so
:meth:`ShardedInventory.load` round-trips bit-identically.

Thread safety: every shard owns a lock; mutating operations take the
shard lock, readers snapshot under it.  The inventory lock guards the
insertion log, shard creation and the first-add shape/dtype handshake;
it is never held while a shard lock is taken (and vice versa).  The
only nesting is the checkpoint lock serializing :meth:`save`, which
sits strictly above both — so the REP703 lock-order graph stays
acyclic.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.data import LabeledDataset
from ..obs import incr, observe, trace_span
from .persistence import atomic_write_json, atomic_write_npz

#: Supported shard payload backings.
SHARD_BACKINGS = ("memory", "memmap", "shm")

#: Manifest format version (bump on layout changes).
_MANIFEST_VERSION = 1

#: Manifest file name inside a checkpoint directory.
MANIFEST_FILE = "shards.json"

#: Fibonacci multiplier spreading sequential sample ids over buckets.
_HASH_MULTIPLIER = np.uint64(0x9E3779B1)
_HASH_MASK = np.uint64(0xFFFFFFFF)

#: Label value accepted for rows without an observed label
#: (mirrors :data:`repro.noise.injector.MISSING_LABEL`); such rows go
#: to a dedicated per-bucket group after the real classes.
_MISSING = -1


def bucket_of(ids: np.ndarray, buckets: int) -> np.ndarray:
    """Deterministic hash bucket of each sample id (vectorised)."""
    h = (np.asarray(ids, dtype=np.int64).astype(np.uint64)
         * _HASH_MULTIPLIER) & _HASH_MASK
    return (h % np.uint64(buckets)).astype(np.int64)


@dataclass(frozen=True)
class ShardKey:
    """Identity of one shard: observed class x hash bucket."""

    label: int
    bucket: int


class _Shard:
    """One growable per-class shard (rows of a single label x bucket).

    The payload (``x``) grows by capacity doubling; depending on the
    inventory backing it lives on the heap, in a ``numpy.memmap`` file
    or in a shared-memory segment.  ``y``/``true_y``/``ids`` are small
    (one int per row) and always stay on the heap.
    """

    def __init__(self, index: int, sample_shape: Tuple[int, ...],
                 dtype: np.dtype, backing: str,
                 directory: Optional[str]) -> None:
        self.index = index
        self.sample_shape = sample_shape
        self.dtype = dtype
        self.backing = backing
        self.directory = directory
        self._lock = threading.Lock()
        # Payload and bookkeeping arrays; ``_count`` rows are live.
        self._x: Optional[np.ndarray] = None      # repro: guarded-by(_lock)
        self._y: Optional[np.ndarray] = None      # repro: guarded-by(_lock)
        self._true_y: Optional[np.ndarray] = None  # repro: guarded-by(_lock)
        self._ids: Optional[np.ndarray] = None    # repro: guarded-by(_lock)
        self._count: int = 0                      # repro: guarded-by(_lock)
        self._shm: Optional[shared_memory.SharedMemory] = None  # repro: guarded-by(_lock)
        self._memmap_path: Optional[str] = None   # repro: guarded-by(_lock)
        self._memmap_gen: int = 0                 # repro: guarded-by(_lock)

    # -- storage ------------------------------------------------------
    def _allocate(self, capacity: int
                  ) -> Tuple[np.ndarray,
                             Optional[shared_memory.SharedMemory],
                             Optional[str]]:
        """A fresh payload array of ``capacity`` rows on the backing.

        Returns the array, the shared-memory segment backing it and the
        memmap file path backing it (each ``None`` on other backings)
        so the caller can swap state under its lock and release the
        previous segment/file afterwards.  Called with the shard lock
        held, after the caller advanced the memmap generation counter.
        """
        shape = (capacity, *self.sample_shape)
        if self.backing == "memmap":
            assert self.directory is not None
            os.makedirs(self.directory, exist_ok=True)
            # Every growth maps a *distinct* file: mode "w+" truncates
            # its target, and truncating the file backing the live
            # array would zero the rows the caller is about to copy
            # out of it.
            path = os.path.join(
                self.directory,
                f"live_shard_{self.index:04d}.m{self._memmap_gen}.dat")
            return (np.memmap(path, dtype=self.dtype, mode="w+",
                              shape=shape), None, path)
        if self.backing == "shm":
            nbytes = int(np.prod(shape)) * self.dtype.itemsize
            segment = shared_memory.SharedMemory(
                create=True, size=max(nbytes, 1))
            array: np.ndarray = np.ndarray(shape, dtype=self.dtype,
                                           buffer=segment.buf)
            return array, segment, None
        return np.empty(shape, dtype=self.dtype), None, None

    # -- mutation -----------------------------------------------------
    def append(self, x: np.ndarray, y: np.ndarray,
               true_y: Optional[np.ndarray],
               ids: np.ndarray) -> Tuple[int, int]:
        """Append rows; returns ``(first_slot, count_after)``."""
        stale: Optional[shared_memory.SharedMemory] = None
        stale_path: Optional[str] = None
        with self._lock:
            first = self._count
            if first and ((true_y is None) != (self._true_y is None)):
                raise ValueError(
                    f"shard {self.index}: ground-truth presence must be "
                    f"consistent across appends")
            need = first + len(x)
            have = 0 if self._x is None else len(self._x)
            if need > have:
                capacity = max(need, max(have, 8) * 2)
                self._memmap_gen += 1
                fresh, segment, path = self._allocate(capacity)
                if self._x is not None and first:
                    fresh[:first] = self._x[:first]
                self._x = fresh
                if segment is not None:
                    stale = self._shm
                    self._shm = segment
                if path is not None:
                    stale_path = self._memmap_path
                    self._memmap_path = path
                fresh_y = np.empty(capacity, dtype=np.int64)
                fresh_ids = np.empty(capacity, dtype=np.int64)
                if first:
                    assert self._y is not None and self._ids is not None
                    fresh_y[:first] = self._y[:first]
                    fresh_ids[:first] = self._ids[:first]
                self._y = fresh_y
                self._ids = fresh_ids
                if true_y is not None:
                    fresh_true = np.empty(capacity, dtype=np.int64)
                    if first and self._true_y is not None:
                        fresh_true[:first] = self._true_y[:first]
                    self._true_y = fresh_true
            assert self._x is not None
            assert self._y is not None and self._ids is not None
            self._x[first:need] = x
            self._y[first:need] = y
            self._ids[first:need] = ids
            if true_y is not None:
                assert self._true_y is not None
                self._true_y[first:need] = true_y
            self._count = need
        if stale is not None:
            stale.close()
            stale.unlink()
        if stale_path is not None:
            # The live array moved to the fresh file above; outstanding
            # snapshot views keep the old mapping readable until they
            # are dropped (POSIX unlink semantics), so the stale file
            # can go immediately.
            os.remove(stale_path)
        return first, need

    # -- read ---------------------------------------------------------
    def snapshot(self, rows: Optional[int] = None
                 ) -> Tuple[np.ndarray, np.ndarray,
                            Optional[np.ndarray], np.ndarray]:
        """Live-row views ``(x, y, true_y, ids)``, optionally truncated
        to the first ``rows`` rows (a consistent earlier prefix)."""
        with self._lock:
            n = self._count if rows is None else min(rows, self._count)
            if n == 0:
                shape = (0, *self.sample_shape)
                return (np.empty(shape, dtype=self.dtype),
                        np.empty(0, dtype=np.int64), None,
                        np.empty(0, dtype=np.int64))
            assert self._x is not None
            assert self._y is not None and self._ids is not None
            true_y = (None if self._true_y is None
                      else self._true_y[:n])
            return self._x[:n], self._y[:n], true_y, self._ids[:n]

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def close(self) -> None:
        """Release backing resources (shared-memory segments)."""
        with self._lock:
            self._x = None
            segment = self._shm
            self._shm = None
        if segment is not None:
            segment.close()
            segment.unlink()


class ShardedInventory:
    """Hash-partitioned, per-class inventory store with incremental add.

    Parameters
    ----------
    num_classes:
        Number of observed classes; rows carry labels in
        ``[0, num_classes)`` or ``MISSING_LABEL``.
    buckets_per_class:
        Hash buckets each class is spread over; total shard count is
        ``(num_classes + 1) * buckets_per_class`` (one extra group for
        missing-label rows).
    backing:
        ``"memory"`` (heap arrays), ``"memmap"`` (payloads in
        ``numpy.memmap`` files under ``directory``) or ``"shm"``
        (payloads in shared-memory segments; call :meth:`close` when
        done to unlink them).
    directory:
        Required for ``memmap`` backing; ignored otherwise.
    """

    def __init__(self, num_classes: int, buckets_per_class: int = 4,
                 backing: str = "memory",
                 directory: Optional[str] = None,
                 name: str = "sharded-inventory") -> None:
        if num_classes < 1:
            raise ValueError("num_classes must be positive")
        if buckets_per_class < 1:
            raise ValueError("buckets_per_class must be positive")
        if backing not in SHARD_BACKINGS:
            raise ValueError(f"backing must be one of {SHARD_BACKINGS}, "
                             f"got {backing!r}")
        if backing == "memmap" and directory is None:
            raise ValueError("memmap backing requires a directory")
        self.num_classes = num_classes
        self.buckets_per_class = buckets_per_class
        self.backing = backing
        self.directory = directory
        self.name = name
        self._shards: List[Optional[_Shard]] = (  # repro: guarded-by(_lock)
            [None] * ((num_classes + 1) * buckets_per_class))
        self._sample_shape: Optional[Tuple[int, ...]] = None  # repro: guarded-by(_lock)
        self._dtype: Optional[np.dtype] = None  # repro: guarded-by(_lock)
        self._lock = threading.Lock()
        # Serializes save(): held for a whole checkpoint so concurrent
        # saves cannot share a generation or prune each other's files.
        self._ckpt_lock = threading.Lock()
        # Insertion log: (shard index, slot) per appended row, in add
        # order, so as_dataset() replays the source order bit-for-bit.
        self._order_shard: List[np.ndarray] = []  # repro: guarded-by(_lock)
        self._order_slot: List[np.ndarray] = []   # repro: guarded-by(_lock)
        self._total: int = 0                      # repro: guarded-by(_lock)
        self._save_gen: int = 0                   # repro: guarded-by(_lock)

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: LabeledDataset,
                     num_classes: Optional[int] = None,
                     buckets_per_class: int = 4,
                     backing: str = "memory",
                     directory: Optional[str] = None) -> "ShardedInventory":
        """Partition an existing dataset into a sharded inventory."""
        inventory = cls(
            num_classes or dataset.num_classes,
            buckets_per_class=buckets_per_class,
            backing=backing, directory=directory,
            name=dataset.name)
        inventory.add(dataset)
        return inventory

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def __len__(self) -> int:
        with self._lock:
            return self._total

    @property
    def sample_shape(self) -> Optional[Tuple[int, ...]]:
        return self._sample_shape

    def shard_sizes(self) -> List[int]:
        """Live row count of every shard (empty shards report 0)."""
        return [0 if s is None else len(s) for s in self._shards]

    def shard_key(self, index: int) -> ShardKey:
        """``(label, bucket)`` identity of shard ``index``; the final
        label group holds missing-label rows."""
        label, bucket = divmod(index, self.buckets_per_class)
        return ShardKey(label=_MISSING if label == self.num_classes
                        else label, bucket=bucket)

    def _group_of(self, labels: np.ndarray) -> np.ndarray:
        """Class group of each row (missing labels -> the extra group)."""
        groups = np.asarray(labels, dtype=np.int64).copy()
        missing = groups == _MISSING
        bad = ~missing & ((groups < 0) | (groups >= self.num_classes))
        if bad.any():
            raise ValueError(
                f"labels outside [0, {self.num_classes}) ∪ {{{_MISSING}}}: "
                f"{sorted(set(int(v) for v in groups[bad]))[:5]}")
        groups[missing] = self.num_classes
        return groups

    def _shard_for(self, index: int) -> _Shard:
        # Check-then-create under the inventory lock: two adds racing
        # on a not-yet-created shard must agree on a single _Shard, or
        # the loser's appended rows would vanish while the insertion
        # log still references their (shard, slot) entries.
        with self._lock:
            shard = self._shards[index]
            if shard is None:
                assert (self._sample_shape is not None
                        and self._dtype is not None)
                shard = _Shard(index, self._sample_shape, self._dtype,
                               self.backing, self.directory)
                self._shards[index] = shard
        return shard

    # ------------------------------------------------------------------
    # Incremental growth
    # ------------------------------------------------------------------
    def add(self, dataset: LabeledDataset) -> None:
        """Append a dataset's rows, shard by shard (no full rebuild).

        Rows are routed to ``shard(label, hash(id))``; each touched
        shard is extended in place under its own lock, inside a
        ``shard_merge`` span so storms are debuggable from a trace.
        """
        if len(dataset) == 0:
            return
        x = np.asarray(dataset.x)
        shape = tuple(x.shape[1:])
        with self._lock:
            if self._sample_shape is None:
                self._sample_shape = shape
                self._dtype = np.dtype(x.dtype)
            elif shape != self._sample_shape:
                raise ValueError(
                    f"sample shape {shape} does not match inventory "
                    f"shape {self._sample_shape}")
        groups = self._group_of(dataset.y)
        buckets = bucket_of(dataset.ids, self.buckets_per_class)
        shard_index = groups * self.buckets_per_class + buckets
        order_shard = np.asarray(shard_index, dtype=np.int64)
        order_slot = np.empty(len(dataset), dtype=np.int64)
        for index in np.unique(shard_index):
            rows = np.nonzero(shard_index == index)[0]
            shard = self._shard_for(int(index))
            with trace_span("shard_merge"):
                first, count = shard.append(
                    x[rows], dataset.y[rows],
                    None if dataset.true_y is None
                    else dataset.true_y[rows],
                    dataset.ids[rows])
                order_slot[rows] = first + np.arange(len(rows))
                incr("shards.merges")
                observe("shards.shard_rows", count)
        with self._lock:
            self._order_shard.append(order_shard)
            self._order_slot.append(order_slot)
            self._total += len(dataset)

    def merge(self, other: "ShardedInventory") -> None:
        """Fold another sharded inventory in (its insertion order)."""
        if other.num_classes != self.num_classes:
            raise ValueError(
                f"cannot merge inventory with {other.num_classes} classes "
                f"into one with {self.num_classes}")
        self.add(other.as_dataset())

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _order_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        with self._lock:
            if not self._order_shard:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty
            return (np.concatenate(self._order_shard),
                    np.concatenate(self._order_slot))

    def as_dataset(self, name: Optional[str] = None) -> LabeledDataset:
        """The full inventory in insertion order (bit-identical to the
        concatenation of everything ever added)."""
        order_shard, order_slot = self._order_arrays()
        dataset = self.gather(order_shard, order_slot)
        return LabeledDataset(dataset.x, dataset.y, true_y=dataset.true_y,
                              ids=dataset.ids, name=name or self.name)

    def class_subset(self, classes: Sequence[int],
                     name: Optional[str] = None) -> LabeledDataset:
        """Rows of the given classes only — touches just their shards.

        Row order is the insertion order restricted to those classes,
        so the result equals ``as_dataset()`` filtered by label.
        """
        wanted = set(int(c) for c in classes)
        groups = [c for c in wanted if 0 <= c < self.num_classes]
        keep_shards: List[int] = []
        for group in sorted(groups):
            start = group * self.buckets_per_class
            keep_shards.extend(range(start, start + self.buckets_per_class))
        order_shard, order_slot = self._order_arrays()
        mask = np.isin(order_shard, keep_shards)
        dataset = self.gather(order_shard[mask], order_slot[mask])
        return LabeledDataset(dataset.x, dataset.y, true_y=dataset.true_y,
                              ids=dataset.ids,
                              name=name or f"{self.name}/classes")

    def gather(self, order_shard: np.ndarray,
               order_slot: np.ndarray) -> LabeledDataset:
        """Materialise explicit (shard, slot) rows in the given order."""
        n = len(order_shard)
        shape = self._sample_shape or ()
        dtype = self._dtype or np.dtype(float)
        x = np.empty((n, *shape), dtype=dtype)
        y = np.empty(n, dtype=np.int64)
        ids = np.empty(n, dtype=np.int64)
        true_parts: List[Tuple[np.ndarray, np.ndarray]] = []
        has_truth = True
        for index in np.unique(order_shard):
            shard = self._shards[int(index)]
            assert shard is not None
            sx, sy, st, sids = shard.snapshot()
            rows = np.nonzero(order_shard == index)[0]
            slots = order_slot[rows]
            x[rows] = sx[slots]
            y[rows] = sy[slots]
            ids[rows] = sids[slots]
            if st is None:
                has_truth = False
            else:
                true_parts.append((rows, st[slots]))
        true_y: Optional[np.ndarray] = None
        if has_truth and true_parts:
            true_y = np.empty(n, dtype=np.int64)
            for rows, values in true_parts:
                true_y[rows] = values
        return LabeledDataset(x=x, y=y, true_y=true_y, ids=ids,
                              name=self.name)

    # ------------------------------------------------------------------
    # Checkpoint / resume (generation-versioned, crash-safe)
    # ------------------------------------------------------------------
    def save(self, directory: str) -> str:
        """Write a crash-safe checkpoint; returns the manifest path.

        The insertion log is captured first (a consistent prefix under
        concurrent adds), every referenced shard prefix is written
        under a fresh generation tag, the manifest is atomically
        replaced last, and only then are older generations pruned.  A
        kill at any point — the ``shard_flush`` chaos stage fires as
        each shard starts flushing — leaves the previous
        manifest/payload pair fully intact.

        Saves are serialized on a dedicated checkpoint lock, and each
        reserves its generation number atomically before flushing, so
        concurrent callers can never collide on payload filenames or
        prune files another save's manifest is about to reference.
        """
        os.makedirs(directory, exist_ok=True)
        with self._ckpt_lock:
            return self._save_locked(directory)

    def _save_locked(self, directory: str) -> str:
        with self._lock:
            self._save_gen += 1
            generation = self._save_gen
        order_shard, order_slot = self._order_arrays()
        entries: List[dict] = []
        for index in np.unique(order_shard):
            shard = self._shards[int(index)]
            assert shard is not None
            rows = int(order_slot[order_shard == index].max()) + 1
            with trace_span("shard_flush"):
                sx, sy, st, sids = shard.snapshot(rows=rows)
                payload: Dict[str, np.ndarray] = {
                    "x": np.ascontiguousarray(sx),
                    "y": sy, "ids": sids}
                if st is not None:
                    payload["true_y"] = st
                filename = f"shard_{int(index):04d}.g{generation}.npz"
                atomic_write_npz(os.path.join(directory, filename),
                                 payload)
                incr("shards.flushes")
            entries.append({"index": int(index), "file": filename,
                            "rows": rows,
                            "has_true_y": st is not None})
        order_file = f"order.g{generation}.npz"
        atomic_write_npz(os.path.join(directory, order_file),
                         {"shard": order_shard, "slot": order_slot})
        manifest = {
            "version": _MANIFEST_VERSION,
            "generation": generation,
            "name": self.name,
            "num_classes": self.num_classes,
            "buckets_per_class": self.buckets_per_class,
            "backing": self.backing,
            "sample_shape": list(self._sample_shape or ()),
            "dtype": str(np.dtype(self._dtype or np.dtype(float))),
            "total": int(len(order_shard)),
            "order_file": order_file,
            "shards": entries,
        }
        path = os.path.join(directory, MANIFEST_FILE)
        atomic_write_json(path, manifest)
        self._prune_generations(directory, generation)
        return path

    @staticmethod
    def _prune_generations(directory: str, keep: int) -> None:
        """Drop payload files of generations older than ``keep``."""
        for entry in sorted(os.listdir(directory)):
            stem, ext = os.path.splitext(entry)
            if ext != ".npz" or ".g" not in stem:
                continue
            tag = stem.rsplit(".g", 1)[1]
            if tag.isdigit() and int(tag) < keep:
                os.remove(os.path.join(directory, entry))

    @classmethod
    def load(cls, directory: str,
             backing: str = "memory",
             live_directory: Optional[str] = None) -> "ShardedInventory":
        """Reconstruct the inventory a :meth:`save` checkpoint captured.

        ``backing`` selects the *live* backing of the loaded inventory
        (a memmap-backed store may be reloaded onto the heap and vice
        versa); payload bytes, insertion order and ids round-trip
        bit-identically either way.
        """
        import json

        with open(os.path.join(directory, MANIFEST_FILE)) as fh:
            manifest = json.load(fh)
        if manifest.get("version") != _MANIFEST_VERSION:
            raise ValueError(
                f"unsupported shard manifest version "
                f"{manifest.get('version')!r}")
        inventory = cls(
            int(manifest["num_classes"]),
            buckets_per_class=int(manifest["buckets_per_class"]),
            backing=backing, directory=live_directory,
            name=str(manifest["name"]))
        inventory._sample_shape = tuple(
            int(d) for d in manifest["sample_shape"])
        inventory._dtype = np.dtype(str(manifest["dtype"]))
        for entry in manifest["shards"]:
            with np.load(os.path.join(directory, entry["file"])) as data:
                shard = inventory._shard_for(int(entry["index"]))
                shard.append(data["x"], data["y"],
                             data["true_y"] if entry["has_true_y"] else None,
                             data["ids"])
        with np.load(os.path.join(directory,
                                  manifest["order_file"])) as data:
            order_shard = np.asarray(data["shard"], dtype=np.int64)
            order_slot = np.asarray(data["slot"], dtype=np.int64)
        with inventory._lock:
            inventory._order_shard = [order_shard]
            inventory._order_slot = [order_slot]
            inventory._total = int(manifest["total"])
            inventory._save_gen = int(manifest["generation"])
        return inventory

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release shard backings (unlink shared-memory segments)."""
        for shard in self._shards:
            if shard is not None:
                shard.close()

    def __enter__(self) -> "ShardedInventory":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
