"""Asynchronous model-update service with atomic hot-swap.

The paper's Alg. 4 model update was the platform's one remaining
stop-the-world operation: ``NoisyLabelPlatform.update_model()`` blocked
arrival processing while it retrained ``θ``.  This module splits the
update into two halves:

- **training** runs off the hot path, as a pure function of a
  crash-safe *job spec* — the clean-pool membership snapshot, the epoch
  budget and a seed derived from ``(config.seed, job.seq)``.  Because
  the spec fully determines the result, a job killed mid-train and
  re-enqueued after resume retrains to the byte-identical model, which
  is what makes the chaos gate provable;
- **installation** happens back on the platform thread, atomically:
  ``θ``, ``P̃``, the inventory halves and every piece of derived state
  (feature cache, ``S_c`` index, clean positions) swap together under
  the swap epoch (the catalog's version count), and the new
  content-addressed :class:`~repro.datalake.catalog.ModelVersion` is
  published.  Any failure between the first mutation and the publish
  rolls the platform back to exactly the pre-swap state — a swap is
  always observed fully-before or fully-after, never torn.

Workers are config-selectable (:class:`UpdaterConfig.mode`):

``inline``
    Train synchronously on the calling thread (the pre-service
    behaviour, still the default).
``thread``
    A daemon thread trains on by-reference snapshots (detection never
    mutates the model or datasets in place, so snapshotting is O(1));
    arrivals keep being served by the old model meanwhile.
``process``
    A subprocess receives the training arrays over a pipe and sends
    back the trained weights — fully isolated from the platform's
    memory, killable by the watchdog.

A watchdog (``timeout_seconds`` + a bounded
:class:`~repro.datalake.resilience.RetryPolicy`) abandons hung workers
and retries the job; once the budget is exhausted the service parks in
a ``failed`` state and the platform keeps serving the current model.

Fault injection hooks (``repro chaos``) fire at three stages:
``update_train`` as an attempt starts training, ``update_swap`` as the
hot-swap begins and ``update_publish`` as the version record is
written.  The legacy ``model_update`` stage keeps firing alongside
``update_train`` so existing fault plans stay valid.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import threading
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import (Callable, Dict, Iterable, List, Optional, Tuple,
                    Union)

import numpy as np

from ..core.enld import ENLD
from ..core.update import UpdateResult, model_update
from ..nn.data import LabeledDataset
from ..nn.models import Classifier
from ..nn.rng import STREAM_TAGS
from ..nn.serialize import clone_module, state_digest
from ..obs import (NullTracer, Stopwatch, Tracer, current_tracer,
                   trace_span, use_span_hook, use_tracer)
from .catalog import DataLakeCatalog, ModelVersion
from .resilience import FailureEvent, RetryPolicy, describe_failure

#: Update-worker modes accepted by :class:`UpdaterConfig`.
UPDATER_MODES = ("inline", "thread", "process")


def _no_sleep(_seconds: float) -> None:
    """Async retries gate on elapsed time; they never block."""


@dataclass(frozen=True)
class UpdaterConfig:
    """Configuration of the :class:`ModelUpdateService`.

    Parameters
    ----------
    mode:
        Worker placement — ``inline`` (synchronous, the default),
        ``thread`` or ``process``.
    timeout_seconds:
        Watchdog budget per training attempt for async modes; ``None``
        disables the watchdog.
    retry:
        Attempt budget + backoff for failed/aborted async jobs.  The
        backoff is a minimum delay before the respawn (checked at poll
        time), never a blocking sleep.
    """

    mode: str = "inline"
    timeout_seconds: Optional[float] = None
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_retries=1, backoff_base=0.0,
                                            sleep=_no_sleep))

    def __post_init__(self) -> None:
        if self.mode not in UPDATER_MODES:
            raise ValueError(f"mode must be one of {UPDATER_MODES}, "
                             f"got {self.mode!r}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive or None")


@dataclass
class UpdateJob:
    """Crash-safe spec of one model-update job.

    Everything needed to (re)train deterministically: the clean-pool
    snapshot (``I_c`` row positions at enqueue time), the epoch budget
    and the sequence number the produced version will take (which also
    derives the training seed).  Checkpointing the spec — never the
    worker — is what lets a resume re-enqueue a mid-train job and
    converge to the identical version.
    """

    seq: int
    positions: List[int]
    pool_digest: str
    reason: str
    epochs: Optional[int] = None
    submission: int = 0
    attempts: int = 0

    def to_dict(self) -> Dict:
        """JSON-ready representation (see :meth:`from_dict`)."""
        return {"seq": self.seq, "positions": list(self.positions),
                "pool_digest": self.pool_digest, "reason": self.reason,
                "epochs": self.epochs, "submission": self.submission,
                "attempts": self.attempts}

    @classmethod
    def from_dict(cls, item: Dict) -> "UpdateJob":
        """Rebuild a job spec serialised by :meth:`to_dict`."""
        return cls(seq=int(item["seq"]),
                   positions=[int(p) for p in item["positions"]],
                   pool_digest=str(item["pool_digest"]),
                   reason=str(item["reason"]),
                   epochs=(None if item["epochs"] is None
                           else int(item["epochs"])),
                   submission=int(item["submission"]),
                   attempts=int(item["attempts"]))


def _digest_ints(values: Iterable[int], bits: int = 128) -> str:
    """BLAKE2b digest of an integer sequence (clean-pool membership)."""
    h = hashlib.blake2b(digest_size=bits // 8)
    for v in values:
        h.update(int(v).to_bytes(8, "little", signed=True))
    return h.hexdigest()


def _digest_config(config: object) -> str:
    """BLAKE2b digest of a (frozen dataclass) config."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True,
                         default=str)
    return hashlib.blake2b(payload.encode(),
                           digest_size=16).hexdigest()


def _version_id(parent: Optional[str], weights_digest: str,
                pool_digest: str, config_digest: str) -> str:
    """Content address of a model version (short BLAKE2b)."""
    h = hashlib.blake2b(digest_size=8)
    for part in (parent or "", weights_digest, pool_digest, config_digest):
        h.update(part.encode())
        h.update(b"|")
    return h.hexdigest()


def _process_worker(conn: Connection, payload: Dict) -> None:
    """Subprocess entry point: train on the shipped arrays, send back
    the weights (module-level so it pickles under any start method)."""
    try:
        from ..core.config import ENLDConfig

        config = ENLDConfig(**payload["config"])
        rng = np.random.default_rng(payload["seed_key"])
        from ..nn.models import build_model
        model = build_model(config.model_name, payload["feature_dim"],
                            payload["num_classes"],
                            rng=np.random.default_rng(0),
                            **config.model_kwargs)
        model.load_state_dict(payload["state"])
        clean = LabeledDataset(payload["clean"][0], payload["clean"][1],
                               name="S_c")
        i_t = LabeledDataset(payload["train"][0], payload["train"][1],
                             name="I_t")
        i_c = LabeledDataset(payload["candidates"][0],
                             payload["candidates"][1], name="I_c")
        out = model_update(model, clean, i_t, i_c, config, rng,
                           epochs=payload["epochs"])
        conn.send({"state": out.model.state_dict(),
                   "cond_prob": out.cond_prob,
                   "train_samples": out.train_samples,
                   "epochs": out.epochs})
    except BaseException as exc:  # noqa: BLE001 — ship, don't die silent
        try:
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
        except OSError:
            pass
    finally:
        conn.close()


class ModelUpdateService:
    """Coalescing single-slot model-update service.

    At most one job is pending at a time — a scheduler that fires while
    a job is training coalesces into the already-pending job
    (:meth:`request_update` returns ``False``).  The service never
    blocks the caller: :meth:`poll` advances the job state machine
    (spawn → train → install) in non-blocking steps and is called by
    the platform at the start of every submission; :meth:`wait` and
    :meth:`run_sync` exist for deterministic tests and the forced
    update path.

    Parameters
    ----------
    enld:
        The detector whose model the service refreshes.  The service
        only ever mutates it on the *calling* thread, inside
        :meth:`poll`/:meth:`run_sync` — workers train on by-reference
        snapshots and hand back a pure :class:`UpdateResult`.
    catalog:
        Version registry; every successful swap publishes a
        content-addressed :class:`ModelVersion` here.
    config:
        :class:`UpdaterConfig`; ``None`` means inline mode.
    span_hook:
        Fault-injection hook (the platform's
        :class:`~repro.datalake.resilience.FaultInjector`).  Fired at
        ``model_update``/``update_train`` as an attempt starts and at
        ``update_swap``/``update_publish`` during installation — always
        on the calling thread, so injection stays deterministic even
        with thread/process workers.
    on_swap:
        Callback invoked (still inside the publish stage) after a
        version is registered; the platform uses it for counters and
        scheduler notification.  If it raises, the swap rolls back.
    progress:
        Returns the platform's submission counter; stamped into job
        specs and version records.
    """

    def __init__(self, enld: ENLD, catalog: DataLakeCatalog,
                 config: Optional[UpdaterConfig] = None,
                 span_hook: Optional[Callable[[str], None]] = None,
                 on_swap: Optional[Callable[[ModelVersion], None]] = None,
                 progress: Optional[Callable[[], int]] = None) -> None:
        self._enld = enld
        self._catalog = catalog
        self._config = config or UpdaterConfig()
        self._hook = span_hook
        self._on_swap = on_swap
        self._progress = progress or (lambda: 0)
        self._job: Optional[UpdateJob] = None
        self._failed: Optional[str] = None
        self._worker: Optional[Union[threading.Thread, BaseProcess]] = None
        self._conn: Optional[Connection] = None
        self._captured: Optional[Tuple[Classifier, LabeledDataset,
                                       LabeledDataset]] = None
        self._outcome: Optional[UpdateResult] = None  # repro: guarded-by(_lock)
        self._error: Optional[BaseException] = None  # repro: guarded-by(_lock)
        self._done: bool = False  # repro: guarded-by(_lock)
        self._gen: int = 0  # repro: guarded-by(_lock)
        self._lock = threading.Lock()
        self._watch: Optional[Stopwatch] = None
        self._backoff_watch: Optional[Stopwatch] = None
        self._backoff_needed: float = 0.0
        self.watchdog_aborts: int = 0

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def config(self) -> UpdaterConfig:
        """The service configuration (read-only)."""
        return self._config

    @property
    def synchronous(self) -> bool:
        """True when updates run inline on the calling thread."""
        return self._config.mode == "inline"

    @property
    def pending_job(self) -> Optional[UpdateJob]:
        """The single pending job slot, if occupied."""
        return self._job

    def request_update(self, reason: str = "scheduled",
                       epochs: Optional[int] = None) -> bool:
        """Enqueue an update job; coalesce if one is already pending.

        Returns ``True`` when a new job was accepted.  In async modes
        the worker is spawned immediately (a spawn-time injected fault
        propagates after attempt bookkeeping, like any failed attempt);
        in inline mode this is :meth:`run_sync`.
        """
        if self._job is not None:
            return False
        if self.synchronous:
            self.run_sync(epochs=epochs, reason=reason)
            return True
        self._failed = None
        job = self._make_job(reason=reason, epochs=epochs)
        self._job = job
        try:
            self._spawn(job)
        except Exception as exc:
            self._note_attempt(job, exc)
            raise
        return True

    def run_sync(self, epochs: Optional[int] = None,
                 reason: str = "forced") -> Optional[ModelVersion]:
        """Train and hot-swap now, on the calling thread.

        The forced-update path (``platform.update_model``): any pending
        async job is cancelled — the forced update supersedes it — and
        the version sequence advances past the cancelled job's slot, so
        a stale worker result can never install later.  Raises on
        failure (platform-scheduled calls catch and degrade).
        """
        self.cancel_pending()
        job = self._make_job(reason=reason, epochs=epochs)
        self._job = job
        try:
            with use_span_hook(self._hook):
                with trace_span("model_update"), trace_span("update_train"):
                    outcome = self._train_job(job, self._enld.model,
                                              self._enld.inventory_train,
                                              self._enld.inventory_candidates)
                return self._install(job, outcome)
        except BaseException:
            self._job = None
            raise

    def poll(self) -> Tuple[bool, Optional[FailureEvent]]:
        """Advance the job state machine without blocking.

        Called at the start of every submission.  Returns
        ``(swapped, failure)``: ``swapped`` is ``True`` when a trained
        result was installed during this poll; ``failure`` carries the
        attempt that failed (watchdog abort, worker error, injected
        fault), if any.  Never raises.
        """
        job = self._job
        if job is None:
            return False, None
        if self.synchronous:
            # A job can only be pending in inline mode when a resumed
            # checkpoint carried one from an async run: run it here.
            try:
                with use_span_hook(self._hook):
                    with trace_span("model_update"), \
                            trace_span("update_train"):
                        outcome = self._train_job(
                            job, self._enld.model,
                            self._enld.inventory_train,
                            self._enld.inventory_candidates)
                    version = self._install(job, outcome)
                return version is not None, None
            except Exception as exc:  # noqa: BLE001 — poll never raises
                return False, self._note_attempt(job, exc)

        state, value = self._collect()
        if state == "running":
            timeout = self._config.timeout_seconds
            if (timeout is not None and self._watch is not None
                    and self._watch.elapsed > timeout):
                self._abandon_worker()
                self.watchdog_aborts += 1
                exc: BaseException = TimeoutError(
                    f"update watchdog: training attempt exceeded "
                    f"{timeout}s; worker abandoned")
                return False, self._note_attempt(job, exc)
            return False, None
        if state == "error":
            assert isinstance(value, BaseException)
            return False, self._note_attempt(job, value)
        if state == "ok":
            assert isinstance(value, UpdateResult)
            try:
                with use_span_hook(self._hook):
                    version = self._install(job, value)
                return version is not None, None
            except Exception as exc:  # noqa: BLE001 — poll never raises
                return False, self._note_attempt(job, exc)
        # state == "queued": (re)spawn once the backoff delay passed.
        if self._backoff_remaining() > 0.0:
            return False, None
        try:
            self._spawn(job)
        except Exception as exc:  # noqa: BLE001 — poll never raises
            return False, self._note_attempt(job, exc)
        return False, None

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the pending job installs, fails, or ``timeout``.

        Returns ``True`` iff a swap landed.  Used by deterministic
        tests and drain points (checkpoint does *not* need it — a
        pending job checkpoints as its spec).
        """
        watch = Stopwatch().start()
        while True:
            swapped, _failure = self.poll()
            if swapped:
                return True
            if self._job is None:
                return False
            if timeout is not None and watch.elapsed >= timeout:
                return False
            worker = self._worker
            if worker is not None:
                worker.join(0.02)

    def cancel_pending(self) -> Optional[UpdateJob]:
        """Drop the pending job (if any) and abandon its worker."""
        job, self._job = self._job, None
        self._failed = None
        self._abandon_worker()
        return job

    def status(self) -> Dict[str, object]:
        """Durable pending-update state, identical live and resumed.

        Deliberately reports only what a checkpoint round-trips — a
        mid-train live platform and its resumed twin (job re-enqueued,
        worker not yet respawned) both say ``pending``.
        """
        job = self._job
        if job is not None:
            state = "pending"
        elif self._failed is not None:
            state = "failed"
        else:
            state = "idle"
        return {"mode": self._config.mode, "state": state,
                "pending": job is not None,
                "attempts": job.attempts if job is not None else 0,
                "reason": job.reason if job is not None else None,
                "error": self._failed}

    def publish_setup_version(self, train_samples: int,
                              epochs: int) -> ModelVersion:
        """Register version 0 — the setup-trained general model."""
        if self._catalog.versions:
            raise RuntimeError("setup version already registered")
        config_digest = _digest_config(self._enld.config)
        pool_digest = _digest_ints(())
        weights = state_digest(self._enld.model)
        version = ModelVersion(
            version_id=_version_id(None, weights, pool_digest,
                                   config_digest),
            seq=0, reason="setup", weights_digest=weights,
            clean_pool_digest=pool_digest, clean_pool_size=0,
            config_digest=config_digest, parent=None,
            train_samples=train_samples, train_epochs=epochs,
            created_at_submission=0)
        self._catalog.register_model_version(version)
        return version

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Durable service state: the pending job spec, if any."""
        return {"job": self._job.to_dict() if self._job is not None
                else None,
                "failed": self._failed,
                "watchdog_aborts": self.watchdog_aborts}

    def load_state(self, state: Optional[Dict]) -> None:
        """Restore :meth:`state_dict`; a pending job is re-enqueued.

        The worker itself is never serialised — the next :meth:`poll`
        respawns training from the job spec, which retrains to the
        byte-identical version (same seed, same snapshot).
        """
        if not state:
            return
        job = state.get("job")
        self._job = UpdateJob.from_dict(job) if job else None
        self._failed = state.get("failed")
        self.watchdog_aborts = int(state.get("watchdog_aborts", 0))

    # ------------------------------------------------------------------
    # Job construction & deterministic training
    # ------------------------------------------------------------------
    def _make_job(self, reason: str,
                  epochs: Optional[int]) -> UpdateJob:
        enld = self._enld
        positions = [int(p) for p in enld.clean_positions]
        if not positions:
            raise ValueError(
                "model update requires a non-empty clean set S_c")
        assert enld.inventory_candidates is not None
        ids = enld.inventory_candidates.ids[np.asarray(positions, dtype=int)]
        return UpdateJob(seq=len(self._catalog.versions),
                         positions=positions,
                         pool_digest=_digest_ints(sorted(int(i)
                                                         for i in ids)),
                         reason=reason, epochs=epochs,
                         submission=int(self._progress()))

    def _train_seed_key(self, job: UpdateJob) -> List[int]:
        # Derived, attempt-independent stream: retraining after a
        # crash or transient fault reproduces the identical weights,
        # and the detection RNG stream is never consumed — an aborted
        # update leaves detection byte-identical to no update at all.
        return [int(self._enld.config.seed), STREAM_TAGS.UPDATE_TRAIN,
                job.seq]

    def _train_job(self, job: UpdateJob, model: Optional[Classifier],
                   i_t: Optional[LabeledDataset],
                   i_c: Optional[LabeledDataset]) -> UpdateResult:
        """Deterministic Alg. 4 training from a job spec (pure)."""
        assert model is not None and i_t is not None and i_c is not None
        rng = np.random.default_rng(self._train_seed_key(job))
        clean = i_c.subset(np.asarray(job.positions, dtype=int), name="S_c")
        return model_update(model, clean, i_t, i_c, self._enld.config,
                            rng, epochs=job.epochs)

    # ------------------------------------------------------------------
    # Worker lifecycle (async modes)
    # ------------------------------------------------------------------
    def _spawn(self, job: UpdateJob) -> None:
        """Start a training attempt; fires the train-stage fault hooks.

        Hooks fire on the calling thread *before* the worker exists, so
        fault plans stay single-threaded and deterministic regardless
        of worker placement.
        """
        if self._hook is not None:
            self._hook("model_update")
            self._hook("update_train")
        enld = self._enld
        assert (enld.model is not None
                and enld.inventory_train is not None
                and enld.inventory_candidates is not None)
        model, i_t, i_c = (enld.model, enld.inventory_train,
                           enld.inventory_candidates)
        self._captured = (model, i_t, i_c)
        with self._lock:
            self._gen += 1
            gen = self._gen
            self._outcome = None
            self._error = None
            self._done = False
        self._watch = Stopwatch().start()
        self._backoff_watch = None
        self._backoff_needed = 0.0
        if self._config.mode == "thread":
            # ContextVars do not cross thread boundaries: capture the
            # ambient tracer here so worker-side spans/counters land in
            # the same trace as an inline run would produce.
            worker = threading.Thread(
                target=self._thread_main,
                args=(gen, job, model, i_t, i_c, current_tracer()),
                name=f"repro-update-{job.seq}", daemon=True)
            worker.start()
            self._worker = worker
        else:
            ctx = multiprocessing.get_context()
            parent, child = ctx.Pipe(duplex=False)
            payload = self._process_payload(job, model, i_t, i_c)
            proc = ctx.Process(target=_process_worker,
                               args=(child, payload), daemon=True)
            proc.start()
            child.close()
            self._worker = proc
            self._conn = parent

    def _thread_main(self, gen: int, job: UpdateJob, model: Classifier,
                     i_t: LabeledDataset, i_c: LabeledDataset,
                     tracer: Optional[Union[Tracer, NullTracer]] = None,
                     ) -> None:
        outcome: Optional[UpdateResult] = None
        error: Optional[BaseException] = None
        try:
            with use_tracer(tracer):
                outcome = self._train_job(job, model, i_t, i_c)
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            error = exc
        with self._lock:
            # Abandoned workers (watchdog, cancel) find a newer gen and
            # discard their result instead of racing the live job.
            if gen == self._gen:
                self._outcome = outcome
                self._error = error
                self._done = True

    def _process_payload(self, job: UpdateJob, model: Classifier,
                         i_t: LabeledDataset,
                         i_c: LabeledDataset) -> Dict:
        clean = i_c.subset(np.asarray(job.positions, dtype=int),
                           name="S_c")
        return {
            "config": dataclasses.asdict(self._enld.config),
            "state": model.state_dict(),
            "num_classes": model.num_classes,
            "feature_dim": i_t.feature_dim,
            "seed_key": self._train_seed_key(job),
            "epochs": job.epochs,
            "clean": (clean.x, clean.y),
            "train": (i_t.x, i_t.y),
            "candidates": (i_c.x, i_c.y),
        }

    def _collect(self) -> Tuple[str, Union[UpdateResult, BaseException,
                                           None]]:
        """Non-blocking worker inspection.

        Returns one of ``("queued", None)`` (no worker running),
        ``("running", None)``, ``("ok", outcome)`` or
        ``("error", exception)``; terminal states also reap the worker.
        """
        worker = self._worker
        if worker is None:
            return "queued", None
        if isinstance(worker, threading.Thread):
            with self._lock:
                if not self._done:
                    return "running", None
                outcome, error = self._outcome, self._error
                self._outcome = None
                self._error = None
            self._worker = None
            if error is not None:
                return "error", error
            assert outcome is not None
            return "ok", outcome
        assert self._conn is not None
        if self._conn.poll():
            try:
                msg = self._conn.recv()
            except EOFError:
                msg = {"error": "update worker closed the pipe "
                                "without a result"}
            worker.join()
            self._worker = None
            self._close_conn()
            if "error" in msg:
                return "error", RuntimeError(str(msg["error"]))
            return "ok", self._rebuild_outcome(msg)
        if not worker.is_alive():
            worker.join()
            self._worker = None
            self._close_conn()
            return "error", RuntimeError(
                f"update worker died (exitcode {worker.exitcode})")
        return "running", None

    def _rebuild_outcome(self, msg: Dict) -> UpdateResult:
        assert self._captured is not None
        model, i_t, i_c = self._captured
        updated = clone_module(model)
        updated.load_state_dict(msg["state"])
        return UpdateResult(
            model=updated,
            cond_prob=np.asarray(msg["cond_prob"], dtype=float),
            inventory_train=i_c, inventory_candidates=i_t,
            train_samples=int(msg["train_samples"]),
            epochs=int(msg["epochs"]))

    def _abandon_worker(self) -> None:
        """Detach from the current worker; its result is discarded."""
        worker = self._worker
        self._worker = None
        self._captured = None
        self._watch = None
        with self._lock:
            # Stale thread writers see an old gen and bail.
            self._gen += 1
            self._outcome = None
            self._error = None
            self._done = False
        if isinstance(worker, BaseProcess):
            worker.terminate()
            worker.join(1.0)
        self._close_conn()

    def _close_conn(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # ------------------------------------------------------------------
    # Attempt bookkeeping
    # ------------------------------------------------------------------
    def _note_attempt(self, job: UpdateJob,
                      exc: BaseException) -> FailureEvent:
        """Record a failed attempt; drop the job once out of budget."""
        job.attempts += 1
        event = describe_failure(job.attempts, exc)
        if job.attempts > self._config.retry.max_retries:
            self._job = None
            self._failed = event.error
            self._abandon_worker()
        else:
            rng = np.random.default_rng(
                [int(self._enld.config.seed),
                 STREAM_TAGS.UPDATE_BACKOFF, job.seq, job.attempts])
            self._backoff_needed = self._config.retry.backoff_seconds(
                job.attempts - 1, rng=rng)
            self._backoff_watch = (Stopwatch().start()
                                   if self._backoff_needed > 0.0 else None)
        return event

    def _backoff_remaining(self) -> float:
        if self._backoff_watch is None:
            return 0.0
        return max(self._backoff_needed - self._backoff_watch.elapsed, 0.0)

    # ------------------------------------------------------------------
    # Atomic installation (hot-swap + publish)
    # ------------------------------------------------------------------
    def _install(self, job: UpdateJob,
                 outcome: UpdateResult) -> Optional[ModelVersion]:
        """Hot-swap ``θ``/``P̃``/indexes and publish the version.

        Runs on the calling thread only.  The swap epoch is the
        catalog's version count: a job whose ``seq`` no longer matches
        (a forced update superseded it) is discarded, never installed.
        Any failure inside the swap or publish stage rolls every
        reference back to the pre-swap snapshot — the platform is
        always fully-before or fully-after, and the version lineage
        matches the installed model exactly.
        """
        if job.seq != len(self._catalog.versions):
            self._job = None
            return None
        enld = self._enld
        snapshot = enld.snapshot_swap_state()
        version: Optional[ModelVersion] = None
        registered = False
        try:
            with trace_span("update_swap"):
                enld.install_update(outcome)
            with trace_span("update_publish"):
                version = self._make_version(job, outcome)
                self._catalog.register_model_version(version)
                registered = True
                if self._on_swap is not None:
                    self._on_swap(version)
        except BaseException:
            if registered and version is not None:
                self._catalog.retract_model_version(version.version_id)
            enld.restore_swap_state(snapshot)
            raise
        self._job = None
        self._failed = None
        self._watch = None
        return version

    def _make_version(self, job: UpdateJob,
                      outcome: UpdateResult) -> ModelVersion:
        parent = self._catalog.active_version_id
        weights = state_digest(outcome.model)
        config_digest = _digest_config(self._enld.config)
        return ModelVersion(
            version_id=_version_id(parent, weights, job.pool_digest,
                                   config_digest),
            seq=job.seq, reason=job.reason, weights_digest=weights,
            clean_pool_digest=job.pool_digest,
            clean_pool_size=len(job.positions),
            config_digest=config_digest, parent=parent,
            train_samples=outcome.train_samples,
            train_epochs=outcome.epochs,
            created_at_submission=job.submission)
