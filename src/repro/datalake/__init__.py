"""``repro.datalake`` — platform-side catalog, arrival simulation and
resilience (admission control, graceful degradation, checkpoint/resume,
deterministic fault injection, async model updates with versioning)."""

from .catalog import (DataLakeCatalog, DetectionRecord, ModelVersion,
                      QuarantineRecord)
from .ingest import (INGEST_MODES, IngestConfig, IngestPipeline,
                     StormReport, arrival_rng)
from .persistence import (append_journal, atomic_write_json, catalog_state,
                          load_catalog_state, read_journal,
                          restore_catalog_state, save_catalog)
from .platform import NoisyLabelPlatform, SubmissionReport
from .shards import SHARD_BACKINGS, ShardedInventory, ShardKey, bucket_of
from .resilience import (INJECTABLE_STAGES, NO_WAIT_RETRY, FailureEvent,
                         FaultInjector, FaultPlan, FaultRule, InjectedFault,
                         RetryPolicy, admission_errors,
                         coarse_fallback_detect)
from .stream import ArrivalStream
from .updater import (UPDATER_MODES, ModelUpdateService, UpdateJob,
                      UpdaterConfig)

__all__ = ["DataLakeCatalog", "DetectionRecord", "QuarantineRecord",
           "ModelVersion",
           "ArrivalStream", "NoisyLabelPlatform", "SubmissionReport",
           "save_catalog", "load_catalog_state", "restore_catalog_state",
           "catalog_state", "append_journal", "read_journal",
           "atomic_write_json",
           "FaultPlan", "FaultRule", "FaultInjector", "InjectedFault",
           "RetryPolicy", "NO_WAIT_RETRY", "FailureEvent",
           "admission_errors", "coarse_fallback_detect",
           "INJECTABLE_STAGES",
           "ModelUpdateService", "UpdaterConfig", "UpdateJob",
           "UPDATER_MODES",
           "ShardedInventory", "ShardKey", "SHARD_BACKINGS", "bucket_of",
           "IngestPipeline", "IngestConfig", "StormReport",
           "INGEST_MODES", "arrival_rng"]
