"""``repro.datalake`` — platform-side catalog and arrival simulation."""

from .catalog import DataLakeCatalog, DetectionRecord
from .persistence import catalog_state, load_catalog_state, save_catalog
from .platform import NoisyLabelPlatform, SubmissionReport
from .stream import ArrivalStream

__all__ = ["DataLakeCatalog", "DetectionRecord", "ArrivalStream",
           "NoisyLabelPlatform", "SubmissionReport",
           "save_catalog", "load_catalog_state", "catalog_state"]
