"""Baseline file support: grandfather known findings, never new ones.

The baseline is a checked-in JSON map of finding fingerprints (see
:attr:`repro.analysis.findings.Finding.fingerprint`) to a short
human-readable record.  A finding whose fingerprint appears in the
baseline is reported as *baselined* and does not fail the run; a
baseline entry no match produces goes **stale** and is listed so it
can be pruned.  ``repro lint --write-baseline`` regenerates the file
from the current findings — the policy is that the baseline only ever
shrinks after the initial sweep.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from .findings import Finding

BASELINE_VERSION = 1

#: Default location, relative to the invocation directory.
DEFAULT_BASELINE_PATH = "analysis-baseline.json"


def load_baseline(path: str) -> Dict[str, Dict[str, object]]:
    """Fingerprint -> record map; a missing file reads as empty."""
    if not os.path.exists(path):
        return {}
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path}")
    findings = payload.get("findings", {})
    if not isinstance(findings, dict):
        raise ValueError(f"malformed baseline file {path}")
    return findings


def write_baseline(path: str, findings: List[Finding]) -> int:
    """Write every (active or baselined) finding as the new baseline.

    noqa-suppressed findings are excluded — they are already silenced
    in-source.  A ``reason`` recorded on an existing entry (the
    documented justification for keeping a grandfather) is carried
    forward when the same fingerprint is rewritten.  Returns the
    number of entries written.
    """
    try:
        previous = load_baseline(path)
    except ValueError:
        previous = {}
    entries: Dict[str, Dict[str, object]] = {
        f.fingerprint: {
            "rule": f.rule,
            "path": f.key,
            "line": f.line,
            "message": f.message,
        }
        for f in findings if f.suppressed in (None, "baseline")
    }
    for fingerprint, entry in entries.items():
        old = previous.get(fingerprint)
        if isinstance(old, dict) and "reason" in old:
            entry["reason"] = old["reason"]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)
