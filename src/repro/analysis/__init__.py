"""``repro.analysis`` — the repo's own static invariant checker.

PR 2 made *byte-identical checkpoint/resume with identical verdicts*
the platform's headline guarantee.  That guarantee only holds while
every module keeps three disciplines: seeded Generators threaded as
parameters (never global RNG state), state files written through the
atomic persistence helpers, and stage boundaries visible to the
tracer.  This package encodes those disciplines — plus wall-clock and
API hygiene — as AST rules (:mod:`repro.analysis.rules`), scoped by
the invariant manifest in :mod:`repro.analysis.config`, and runs them
via ``repro lint`` / :func:`analyze_paths`.

Suppression channels, in order of preference: fix the finding; silence
one line with ``# repro: noqa[REP101]``; or grandfather it in the
checked-in baseline (:mod:`repro.analysis.baseline`), which only ever
shrinks after the initial sweep.
"""

from .baseline import (DEFAULT_BASELINE_PATH, load_baseline,
                       write_baseline)
from .cache import DEFAULT_CACHE_DIR, AnalysisCache
from .concurrency import (ConcurrencyIndex, ModuleConcurrency,
                          concurrency_index, extract_concurrency,
                          render_locks_dot, render_locks_text)
from .config import DEFAULT_CONFIG, AnalysisConfig
from .determinism import (DeterminismIndex, ModuleDeterminism,
                          determinism_index, extract_determinism)
from .engine import analyze_paths, analyze_source, module_key
from .findings import AnalysisResult, Finding, Severity
from .graph import ModuleSummary, ProjectGraph
from .report import render_json, render_sarif, render_text
from .rules import (GRAPH_RULES, RULES, GraphRule, Rule,
                    all_graph_rules, all_rules)

__all__ = [
    "AnalysisConfig", "DEFAULT_CONFIG",
    "AnalysisResult", "Finding", "Severity",
    "analyze_paths", "analyze_source", "module_key",
    "RULES", "Rule", "all_rules",
    "GRAPH_RULES", "GraphRule", "all_graph_rules",
    "ModuleSummary", "ProjectGraph",
    "ConcurrencyIndex", "ModuleConcurrency",
    "concurrency_index", "extract_concurrency",
    "render_locks_dot", "render_locks_text",
    "DeterminismIndex", "ModuleDeterminism",
    "determinism_index", "extract_determinism",
    "AnalysisCache", "DEFAULT_CACHE_DIR",
    "load_baseline", "write_baseline", "DEFAULT_BASELINE_PATH",
    "render_text", "render_json", "render_sarif",
]
